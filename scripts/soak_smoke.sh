#!/usr/bin/env bash
# Kill/resume soak smoke: run a supervised fault campaign to completion,
# run it again stalled and SIGKILL it mid-flight, resume from the surviving
# checkpoint, and require the resumed report to be byte-identical to the
# uninterrupted one. Exercises the real crash path — a hard kill between
# checkpoint writes — not a simulated truncation.
#
# Usage: scripts/soak_smoke.sh [--features parallel]
set -euo pipefail
cd "$(dirname "$0")/.."

FEATURES=()
if [[ "${1:-}" == "--features" && "${2:-}" == "parallel" ]]; then
    FEATURES=(--features parallel)
fi

cargo build --release -p agemul-harness --bin soak "${FEATURES[@]}" >/dev/null
SOAK=target/release/soak

WORK=$(mktemp -d "${TMPDIR:-/tmp}/agemul-soak.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Reference: uninterrupted run (poison case included, so quarantine is
# also part of the compared surface).
"$SOAK" --ckpt "$WORK/ref.ckpt" --out "$WORK/ref.json" --poison >/dev/null

# Victim: same campaign with a 150 ms stall before every case, killed
# hard mid-run. `--stall-ms` only slows the run down; it does not change
# any computed value.
"$SOAK" --ckpt "$WORK/victim.ckpt" --out "$WORK/victim.json" --poison --stall-ms 150 \
    >/dev/null 2>&1 &
VICTIM=$!
sleep 0.6
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

if [[ ! -f "$WORK/victim.ckpt" ]]; then
    echo "soak-smoke: FAIL — no checkpoint survived the kill (window too narrow?)" >&2
    exit 1
fi
if [[ -f "$WORK/victim.json" ]]; then
    echo "soak-smoke: FAIL — victim finished before the kill; raise --stall-ms" >&2
    exit 1
fi

DONE_BEFORE=$(grep -o '"index"' "$WORK/victim.ckpt" | wc -l)
echo "soak-smoke: killed mid-run with $DONE_BEFORE case(s) checkpointed"

# Resume from the survivor and demand byte identity with the reference.
"$SOAK" --ckpt "$WORK/victim.ckpt" --out "$WORK/victim.json" --poison --require >/dev/null

if ! cmp -s "$WORK/ref.json" "$WORK/victim.json"; then
    echo "soak-smoke: FAIL — resumed report differs from uninterrupted run" >&2
    diff "$WORK/ref.json" "$WORK/victim.json" >&2 || true
    exit 1
fi
echo "soak-smoke: PASS — resumed report byte-identical to uninterrupted run"
