#!/usr/bin/env bash
# Pre-merge gate, mirroring `just verify`: format check, clippy with all
# features and fatal warnings, then the tier-1 build + test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --all-features -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
# Fault-campaign smoke: a reduced-scale end-to-end injection run.
cargo run --release -p agemul-repro -- --quick faults >/dev/null
# Timing-kernel equivalence smoke: LevelSim vs EventSim on an 8×8
# column-bypass workload (bit-identical profiles).
cargo test -q -p agemul --test level_equiv timing_equiv_smoke_cb8
# Incremental-vs-full equivalence: AgingSweep byte-identity, quantized
# cache-key coherence, and repro sweep-driver table agreement.
cargo test -q -p agemul aging_sweep
cargo test -q -p agemul sub_threshold_aging_step_hits_coherently
cargo test -q -p agemul-repro incremental_and_baseline_drivers_agree
# Conformance smoke: 200 fixed-seed cases through the cross-engine
# differential oracle + the metamorphic invariants; divergences shrink to
# minimal JSON repros and fail the gate.
cargo run --release -p agemul-repro -- --quick conformance >/dev/null
# Incremental sweep smoke: the experiment asserts its own sweep counters
# and re-derives the final year from scratch, failing on divergence.
cargo run --release -p agemul-repro -- --quick --incremental sweep >/dev/null
# Supervised kill/resume soak: SIGKILL a checkpointed campaign mid-run,
# resume, and require byte-identical results — serial and parallel.
scripts/soak_smoke.sh
scripts/soak_smoke.sh --features parallel
# Resident-service smoke: loadgen against an in-process agemul-serve;
# fails on any error response, zero hit rate, or unclean shutdown.
cargo run --release -p agemul-serve --bin loadgen -- --smoke
# Monte Carlo campaign smoke: supervised checkpoint/resume byte-identity,
# retimed-vs-from-scratch cell identity, and the reduced-scale seeded `mc`
# experiment (asserts AHL yield ≥ baseline at every lifetime point).
cargo test -q -p agemul-harness truncated_checkpoint_resumes_identically
cargo test -q -p agemul campaign_matches_from_scratch_per_cell
cargo run --release -p agemul-repro -- --quick mc >/dev/null
# Fleet replay/policy smoke: golden-pinned event-log replay identity
# (serial and parallel), supervised fleet checkpoint/resume identity, and
# the reduced-scale seeded `fleet` experiment (asserts aging-aware
# lifetime strictly exceeds round-robin).
cargo test -q -p agemul-fleet --test replay_equiv
cargo test -q -p agemul-fleet --test replay_equiv --features parallel
cargo test -q -p agemul-harness fleet
cargo run --release -p agemul-repro -- --quick fleet >/dev/null
# Chaos/overload smoke: the fault-schedule engine's unit suite plus the
# reduced-scale `chaos` experiment (seeded fault schedules over the
# checkpoint, transport, and cache/single-flight seams and the
# overload-shedding probe; fails on any invariant violation).
cargo test -q -p agemul-chaos
cargo run --release -p agemul-repro -- --quick chaos >/dev/null
