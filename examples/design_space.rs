//! Design-space exploration: pick the best (kind, skip, period) deployment
//! for a latency target under an area budget.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use agemul_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16;
    let patterns = PatternSet::uniform(width, 4_000, 2024);

    println!("16×16 design-space sweep (year 0 and year 7), uniform workload\n");
    println!("kind  skip  period   latency@0   latency@7   errors@7   area (T)");

    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let mut best: Option<(String, f64)> = None;

    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let design = MultiplierDesign::new(kind, width)?;
        let stats = design.workload_stats(patterns.pairs())?;
        let factors = aging_factors(design.circuit().netlist(), &stats, &bti, 7.0);
        let fresh = design.profile(patterns.pairs(), None)?;
        let aged = design.profile(patterns.pairs(), Some(&factors))?;

        for skip in [7u32, 8, 9] {
            let area = area_report(&design, Architecture::AdaptiveVariableLatency, skip)?;
            // Best period for the *aged* circuit — lifetime-aware tuning.
            let mut chosen: Option<(f64, RunMetrics, RunMetrics)> = None;
            for step in 0..=14 {
                let period = 0.60 + 0.05 * f64::from(step);
                let m7 = run_engine(&aged, &EngineConfig::adaptive(period, skip));
                let m0 = run_engine(&fresh, &EngineConfig::adaptive(period, skip));
                let better = chosen
                    .as_ref()
                    .is_none_or(|(_, _, old7)| m7.avg_latency_ns() < old7.avg_latency_ns());
                if better {
                    chosen = Some((period, m0, m7));
                }
            }
            let (period, m0, m7) = chosen.expect("sweep is non-empty");
            println!(
                "{:4}  {skip:4}  {period:.2} ns   {:7.3} ns   {:7.3} ns   {:7.0}   {:8}",
                kind.label(),
                m0.avg_latency_ns(),
                m7.avg_latency_ns(),
                m7.errors_per_10k_cycles(),
                area.total_transistors(),
            );
            let label = format!("{} Skip-{skip} @ {period:.2} ns", kind.label());
            if best.as_ref().is_none_or(|(_, l)| m7.avg_latency_ns() < *l) {
                best = Some((label, m7.avg_latency_ns()));
            }
        }
    }

    let (label, latency) = best.expect("at least one configuration");
    println!("\nlifetime-optimal configuration: {label} ({latency:.3} ns average at year 7)");
    Ok(())
}
