//! Quickstart: build an aging-aware variable-latency multiplier and watch
//! it beat its fixed-latency twin.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use agemul_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 16×16 column-bypassing multiplier with the workspace-calibrated
    //    delay model (16×16 array multiplier critical path = 1.32 ns).
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
    println!(
        "column-bypassing 16×16: {} gates, critical path {:.3} ns",
        design.circuit().netlist().gate_count(),
        design.critical_delay_ns(None)?
    );

    // 2. Profile a workload: one event-driven timing simulation records
    //    every operation's sensitized delay and judged zero count.
    let patterns = PatternSet::uniform(16, 5_000, 42);
    let profile = design.profile(patterns.pairs(), None)?;
    println!(
        "workload: {} ops, avg sensitized delay {:.3} ns, max {:.3} ns",
        profile.len(),
        profile.avg_delay_ns(),
        profile.max_delay_ns()
    );

    // 3. Deploy fixed-latency (clocked at the critical path) vs the
    //    proposed adaptive variable-latency architecture (Skip-7, a short
    //    0.95 ns clock, Razor recovery on mispredictions).
    let fixed = run_fixed_latency(profile.len() as u64, design.critical_delay_ns(None)?);
    let adaptive = run_engine(&profile, &EngineConfig::adaptive(0.95, 7));

    println!("\n               avg latency   cycles/op   razor errors");
    println!(
        "fixed-latency    {:7.3} ns     {:5.2}          {:>5}",
        fixed.avg_latency_ns(),
        fixed.avg_cycles(),
        fixed.errors
    );
    println!(
        "adaptive VL      {:7.3} ns     {:5.2}          {:>5}",
        adaptive.avg_latency_ns(),
        adaptive.avg_cycles(),
        adaptive.errors
    );
    println!(
        "\nthe adaptive design is {:.1}% faster on average",
        100.0 * (1.0 - adaptive.avg_latency_ns() / fixed.avg_latency_ns())
    );

    // 4. The same machinery after seven years of NBTI/PBTI stress: compute
    //    per-gate aging factors from the workload's signal probabilities
    //    and re-profile.
    let stats = design.workload_stats(patterns.pairs())?;
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let factors = aging_factors(design.circuit().netlist(), &stats, &bti, 7.0);
    let aged_profile = design.profile(patterns.pairs(), Some(&factors))?;
    let aged_fixed = run_fixed_latency(
        aged_profile.len() as u64,
        design.critical_delay_ns(Some(&factors))?,
    );
    let aged_adaptive = run_engine(&aged_profile, &EngineConfig::adaptive(0.95, 7));
    println!(
        "\nafter 7 years: fixed {:.3} ns (+{:.1}%), adaptive {:.3} ns (+{:.1}%), \
         aged-mode engaged: {}",
        aged_fixed.avg_latency_ns(),
        100.0 * (aged_fixed.avg_latency_ns() / fixed.avg_latency_ns() - 1.0),
        aged_adaptive.avg_latency_ns(),
        100.0 * (aged_adaptive.avg_latency_ns() / adaptive.avg_latency_ns() - 1.0),
        aged_adaptive.aged_mode_entered
    );
    Ok(())
}
