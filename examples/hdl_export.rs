//! Export a generated multiplier to structural Verilog and dump a VCD
//! waveform of a few operations — the bridge out of the Rust substrate
//! into standard HDL tooling.
//!
//! ```sh
//! cargo run --release --example hdl_export
//! ```

use std::fs;

use agemul_netlist::{write_vcd, write_verilog, NetlistReport};
use agemul_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8)?;
    let topo = m.netlist().topology()?;

    // Structural summary.
    println!("{}", NetlistReport::new(m.netlist(), &topo));

    // 1. Verilog: feed the exact gate network we simulate into an HDL
    //    simulator or synthesis flow for independent cross-checking.
    let mut verilog = Vec::new();
    write_verilog(m.netlist(), "cb_mult_8x8", &mut verilog)?;
    let verilog_path = std::env::temp_dir().join("cb_mult_8x8.v");
    fs::write(&verilog_path, &verilog)?;
    println!(
        "wrote {} ({} lines of structural Verilog)",
        verilog_path.display(),
        verilog.iter().filter(|&&b| b == b'\n').count()
    );

    // 2. VCD: trace a few multiplications through the event-driven timing
    //    simulator and dump a waveform viewable in GTKWave & friends.
    let delays = DelayAssignment::uniform(m.netlist(), calibrated_delay_model());
    let mut sim = EventSim::new(m.netlist(), &topo, delays);
    sim.enable_tracing(2_000_000); // 2 ns between operations
    sim.settle(&m.encode_inputs(0, 0)?)?;
    for (a, b) in [(15u64, 15u64), (255, 1), (0xAA, 0x55), (7, 200), (255, 255)] {
        let t = sim.step(&m.encode_inputs(a, b)?)?;
        println!("{a:3} × {b:3}: sensitized delay {:.3} ns", t.delay_ns);
    }
    let mut vcd = Vec::new();
    write_vcd(m.netlist(), sim.trace(), &mut vcd)?;
    let vcd_path = std::env::temp_dir().join("cb_mult_8x8.vcd");
    fs::write(&vcd_path, &vcd)?;
    println!(
        "wrote {} ({} value changes)",
        vcd_path.display(),
        sim.trace().len()
    );
    Ok(())
}
