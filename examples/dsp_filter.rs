//! FIR-filter workload study: how much a real DSP kernel gains from the
//! variable-latency multiplier compared with uniform-random traffic.
//!
//! The paper motivates multipliers with Fourier transforms, DCTs, and
//! digital filtering. Those workloads are *not* uniform random: filter
//! coefficients are small fixed values full of leading zeros, and audio
//! samples cluster around silence. Both push the judged operand's zero
//! count up — exactly what the AHL's judging block rewards with one-cycle
//! execution.
//!
//! ```sh
//! cargo run --release --example dsp_filter
//! ```

use agemul_suite::prelude::*;

/// A 9-tap low-pass FIR (Q15-flavoured small coefficients).
const TAPS: [u64; 9] = [21, 98, 367, 905, 1300, 905, 367, 98, 21];

/// Synthesizes a decaying multi-tone "audio" sample stream (deterministic,
/// no RNG): mid-scale sine-ish values with quiet passages.
fn samples(count: usize) -> Vec<u64> {
    (0..count)
        .map(|i| {
            let t = i as f64;
            let loud = ((t / 40.0).sin() * 0.5 + 0.5) * ((t / 251.0).cos().powi(2));
            let tone = (t / 3.1).sin() * 0.45 + (t / 7.7).sin() * 0.25;
            let v = (loud * tone * 32767.0).abs();
            v as u64 & 0xFFFF
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
    let critical = design.critical_delay_ns(None)?;

    // The FIR inner loop: every multiply is coefficient × sample. The
    // column-bypassing multiplier judges the multiplicand, so feed the
    // coefficient (zero-rich) as operand `a`.
    let signal = samples(2_000);
    let mut fir_pairs = Vec::new();
    for window in signal.windows(TAPS.len()) {
        for (tap, &x) in TAPS.iter().zip(window) {
            fir_pairs.push((*tap, x));
        }
    }
    fir_pairs.truncate(10_000);
    let fir = PatternSet::explicit(16, fir_pairs);
    let uniform = PatternSet::uniform(16, fir.len(), 7);

    println!("workload comparison on the 16×16 A-VLCB (Skip-7)\n");
    println!(
        "workload   period   avg latency   one-cycle   errors/10k   vs fixed ({critical:.3} ns)"
    );
    for (name, patterns) in [("FIR", &fir), ("uniform", &uniform)] {
        let profile = design.profile(patterns.pairs(), None)?;
        // Pick the best period per workload, as a deployment would.
        let mut best: Option<(f64, RunMetrics)> = None;
        for step in 0..=14 {
            let period = 0.60 + 0.05 * f64::from(step);
            let m = run_engine(&profile, &EngineConfig::adaptive(period, 7));
            if best.is_none() || m.avg_latency_ns() < best.as_ref().unwrap().1.avg_latency_ns() {
                best = Some((period, m));
            }
        }
        let (period, m) = best.expect("sweep is non-empty");
        println!(
            "{name:8}   {period:.2} ns    {:7.3} ns     {:5.1}%       {:6.0}      {:+.1}%",
            m.avg_latency_ns(),
            100.0 * m.one_cycle_ratio(),
            m.errors_per_10k_cycles(),
            100.0 * (m.avg_latency_ns() / critical - 1.0),
        );
    }

    println!(
        "\nzero-rich FIR coefficients make almost every multiply a one-cycle\n\
         pattern, so the DSP kernel gains far more than random traffic —\n\
         the workload-dependence the paper's Fig. 6 hints at."
    );
    Ok(())
}
