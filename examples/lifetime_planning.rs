//! Lifetime planning: what happens to each deployment style as the silicon
//! ages year by year — including what the paper's §V warns about when
//! electromigration is stacked on top of BTI.
//!
//! ```sh
//! cargo run --release --example lifetime_planning
//! ```

use agemul_aging::electromigration::{compose_factors, EmModel};
use agemul_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
    let patterns = PatternSet::uniform(16, 3_000, 99);
    let stats = design.workload_stats(patterns.pairs())?;
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let em = EmModel::nominal();

    // A fixed-latency deployment signs off at year-0 timing plus a 5 %
    // guard band (the "overdesign" the paper calls pessimistic).
    let signoff = design.critical_delay_ns(None)? * 1.05;
    // The adaptive deployment clocks aggressively and lets Razor + AHL
    // absorb the drift.
    let vl_period = 1.00;

    println!("fixed-latency sign-off: {signoff:.3} ns (year-0 critical + 5% guard band)");
    println!("adaptive VL clock:      {vl_period:.3} ns (Skip-7)\n");
    println!("year   crit path   fixed OK?   A-VL latency   errors/10k   aged mode");

    for year in 0..=10 {
        let y = f64::from(year);
        let bti_factors = aging_factors(design.circuit().netlist(), &stats, &bti, y);
        let em_factors = em.wire_factors(design.circuit().netlist(), &stats, y);
        let factors = compose_factors(&bti_factors, &em_factors);

        let crit = design.critical_delay_ns(Some(&factors))?;
        let fixed_ok = crit <= signoff;

        let profile = design.profile(patterns.pairs(), Some(&factors))?;
        let m = run_engine(&profile, &EngineConfig::adaptive(vl_period, 7));

        println!(
            "{year:4}   {crit:7.3} ns   {}   {:9.3} ns   {:9.0}    {}",
            if fixed_ok { "  yes    " } else { " *FAIL*  " },
            m.avg_latency_ns(),
            m.errors_per_10k_cycles(),
            if m.aged_mode_entered {
                "engaged"
            } else {
                "—"
            },
        );
    }

    println!(
        "\nthe guard-banded fixed design eventually violates its own sign-off\n\
         (silent timing failure in the field), while the adaptive design\n\
         keeps meeting its latency budget by demoting borderline patterns —\n\
         the paper's reliability argument, with electromigration included."
    );
    Ok(())
}
