//! Property-based tests over the whole stack (proptest).

use agemul_suite::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every architecture computes a × b for arbitrary operands at an
    /// arbitrary (small) width.
    #[test]
    fn multipliers_are_correct(
        width in 2usize..=9,
        a in any::<u64>(),
        b in any::<u64>(),
        kind_idx in 0usize..MultiplierKind::ALL.len(),
    ) {
        let kind = MultiplierKind::ALL[kind_idx];
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let m = MultiplierCircuit::generate(kind, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
        prop_assert_eq!(
            m.product().decode(sim.values()),
            Some(u128::from(a) * u128::from(b))
        );
    }

    /// The event-driven simulator agrees with the functional simulator on
    /// settled output values, for any consecutive pattern pair.
    #[test]
    fn event_and_functional_sims_agree(
        a1 in any::<u64>(), b1 in any::<u64>(),
        a2 in any::<u64>(), b2 in any::<u64>(),
        kind_idx in 0usize..MultiplierKind::ALL.len(),
    ) {
        let kind = MultiplierKind::ALL[kind_idx];
        let width = 6usize;
        let mask = (1u64 << width) - 1;
        let m = MultiplierCircuit::generate(kind, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let mut esim = EventSim::new(m.netlist(), &topo, delays);
        esim.settle(&m.encode_inputs(a1 & mask, b1 & mask).unwrap()).unwrap();
        esim.step(&m.encode_inputs(a2 & mask, b2 & mask).unwrap()).unwrap();

        let mut fsim = FuncSim::new(m.netlist(), &topo);
        fsim.eval(&m.encode_inputs(a2 & mask, b2 & mask).unwrap()).unwrap();

        for &out in m.netlist().outputs() {
            prop_assert_eq!(esim.value(out), fsim.value(out), "net {}", out);
        }
    }

    /// No sensitized delay ever exceeds the static critical-path bound,
    /// fresh or aged.
    #[test]
    fn static_bound_dominates_dynamic_delays(
        seed in any::<u64>(),
        aged in proptest::bool::ANY,
    ) {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let factors = if aged {
            Some(vec![1.1; design.circuit().netlist().gate_count()])
        } else {
            None
        };
        let bound = design.critical_delay_ns(factors.as_deref()).unwrap();
        let patterns = PatternSet::uniform(8, 64, seed);
        let profile = design.profile(patterns.pairs(), factors.as_deref()).unwrap();
        prop_assert!(profile.max_delay_ns() <= bound + 1e-9);
    }

    /// Engine cycle accounting is internally consistent for any config.
    #[test]
    fn engine_accounting_invariants(
        period in 0.3f64..2.0,
        skip in 0u32..=16,
        adaptive in proptest::bool::ANY,
        seed in any::<u64>(),
    ) {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
        let profile = design
            .profile(PatternSet::uniform(16, 200, seed).pairs(), None)
            .unwrap();
        let cfg = if adaptive {
            EngineConfig::adaptive(period, skip)
        } else {
            EngineConfig::traditional(period, skip)
        };
        let m = run_engine(&profile, &cfg);
        prop_assert_eq!(m.operations, 200);
        prop_assert_eq!(m.one_cycle_ops + m.two_cycle_ops, m.operations);
        prop_assert!(m.errors <= m.one_cycle_ops);
        // cycles = one_cycle + 2·two_cycle + penalty·errors.
        prop_assert_eq!(
            m.cycles,
            m.one_cycle_ops
                + 2 * m.two_cycle_ops
                + u64::from(cfg.error_penalty_cycles) * m.errors
        );
        prop_assert!(m.avg_latency_ns() >= 0.0);
    }

    /// A longer cycle period never increases the Razor error count.
    #[test]
    fn errors_monotone_in_period(seed in any::<u64>()) {
        let design = MultiplierDesign::new(MultiplierKind::RowBypass, 16).unwrap();
        let profile = design
            .profile(PatternSet::uniform(16, 300, seed).pairs(), None)
            .unwrap();
        let mut last = u64::MAX;
        for step in 0..8 {
            let period = 0.6 + 0.1 * f64::from(step);
            let m = run_engine(&profile, &EngineConfig::traditional(period, 7));
            prop_assert!(m.errors <= last, "errors rose at period {period}");
            last = m.errors;
        }
    }

    /// The gate-level judging block agrees with the software zero counter
    /// for every operand.
    #[test]
    fn gate_level_judging_matches_software(value in any::<u64>(), skip in 0u64..=10) {
        let width = 8usize;
        let value = value & 0xFF;
        let mut n = Netlist::new();
        let bus: Bus = (0..width).map(|i| n.add_input(format!("x{i}"))).collect();
        let pred = agemul_circuits::zeros_at_least(&mut n, &bus, skip).unwrap();
        n.mark_output(pred, "p");
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        sim.eval(&bus.encode(value.into()).unwrap()).unwrap();
        let expected = u64::from(count_zeros(value, width)) >= skip;
        prop_assert_eq!(sim.value(pred).to_bool(), Some(expected));
    }

    /// Aging factors are ≥ 1, finite, and monotone in years.
    #[test]
    fn aging_factors_are_sane(years in 0.0f64..20.0, p in 0.0f64..=1.0) {
        let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
        let f = bti.delay_factor(years, p);
        prop_assert!(f >= 1.0 && f.is_finite());
        let later = bti.delay_factor(years + 1.0, p);
        prop_assert!(later >= f);
    }

    /// Bus encode/decode round-trips through a netlist value map.
    #[test]
    fn bus_round_trip(value in any::<u64>(), width in 1usize..=16) {
        let value = u128::from(value) & ((1u128 << width) - 1);
        let mut n = Netlist::new();
        let bus: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let word = bus.encode(value).unwrap();
        let mut values = vec![Logic::X; n.net_count()];
        for (i, &net) in bus.nets().iter().enumerate() {
            values[net.index()] = word[i];
        }
        prop_assert_eq!(bus.decode(&values), Some(value));
    }
}
