//! Cross-crate integration: the full paper pipeline, end to end.

use agemul_suite::prelude::*;

/// The complete proposed-architecture flow: generate → profile → deploy →
/// age → re-profile → adapt. Exercises every crate in the workspace.
#[test]
fn full_aging_aware_pipeline() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
    let patterns = PatternSet::uniform(16, 1_500, 7);

    // Year 0: variable latency beats the fixed-latency deployment.
    let profile = design.profile(patterns.pairs(), None).unwrap();
    let critical = design.critical_delay_ns(None).unwrap();
    let fixed = run_fixed_latency(profile.len() as u64, critical);
    let fresh = run_engine(&profile, &EngineConfig::adaptive(1.0, 7));
    assert!(
        fresh.avg_latency_ns() < fixed.avg_latency_ns(),
        "VL {} ≥ FL {}",
        fresh.avg_latency_ns(),
        fixed.avg_latency_ns()
    );

    // Age the silicon seven years under the observed workload.
    let stats = design.workload_stats(patterns.pairs()).unwrap();
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let factors = aging_factors(design.circuit().netlist(), &stats, &bti, 7.0);
    assert!(factors.iter().all(|&f| f >= 1.0));

    let aged_profile = design.profile(patterns.pairs(), Some(&factors)).unwrap();
    assert!(aged_profile.avg_delay_ns() > profile.avg_delay_ns());

    // The aged adaptive design still beats the aged fixed-latency one.
    let aged_critical = design.critical_delay_ns(Some(&factors)).unwrap();
    assert!(aged_critical > critical);
    let aged_fixed = run_fixed_latency(aged_profile.len() as u64, aged_critical);
    let aged_vl = run_engine(&aged_profile, &EngineConfig::adaptive(1.0, 7));
    assert!(aged_vl.avg_latency_ns() < aged_fixed.avg_latency_ns());

    // And the adaptive hold logic outperforms the traditional one when the
    // circuit is aged and the clock is aggressive.
    let aggressive = 0.85;
    let adaptive = run_engine(&aged_profile, &EngineConfig::adaptive(aggressive, 7));
    let traditional = run_engine(&aged_profile, &EngineConfig::traditional(aggressive, 7));
    assert!(adaptive.errors <= traditional.errors);
    assert!(adaptive.avg_latency_ns() <= traditional.avg_latency_ns() * 1.001);
}

/// Functional equivalence of all three architectures through the whole
/// stack, including stale bypass state between consecutive operations.
#[test]
fn architectures_agree_with_integer_multiplication() {
    let patterns = PatternSet::uniform(8, 300, 3);
    for kind in MultiplierKind::ALL {
        let design = MultiplierDesign::new(kind, 8).unwrap();
        let netlist = design.circuit().netlist();
        let topo = design.topology();
        let delays = DelayAssignment::uniform(netlist, calibrated_delay_model());
        let mut sim = EventSim::new(netlist, topo, delays);
        sim.settle(&design.circuit().encode_inputs(0, 0).unwrap())
            .unwrap();
        for &(a, b) in patterns.pairs() {
            sim.step(&design.circuit().encode_inputs(a, b).unwrap())
                .unwrap();
            let got = design.circuit().product().decode_with(|net| sim.value(net));
            assert_eq!(got, Some(u128::from(a) * u128::from(b)), "{kind:?} {a}×{b}");
        }
    }
}

/// The energy model composes with the architecture: area and energy
/// orderings the paper relies on.
#[test]
fn area_and_energy_orderings() {
    let power = PowerModel::ptm_32nm_hk();
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
    let patterns = PatternSet::uniform(16, 400, 9);
    let stats = design.workload_stats(patterns.pairs()).unwrap();

    let fl = area_report(&design, Architecture::FixedLatency, 7).unwrap();
    let avl = area_report(&design, Architecture::AdaptiveVariableLatency, 7).unwrap();
    assert!(avl.total_transistors() > fl.total_transistors());

    let mk = |area: &AreaReport, dvth: f64| {
        energy_report(
            &design,
            EnergyInputs {
                power: &power,
                stats: &stats,
                area,
                avg_cycles_per_op: 1.3,
                avg_latency_ns: 1.2,
                delta_vth_v: dvth,
            },
        )
    };
    // Razor outputs cost more than plain flops; aging shrinks leakage.
    assert!(mk(&avl, 0.0).sequential_fj > mk(&fl, 0.0).sequential_fj);
    assert!(mk(&avl, 0.05).total_fj() < mk(&avl, 0.0).total_fj());
}

/// The Fig. 4 variable-latency adder story holds on our gate level: the
/// hold function's two-cycle population is ~25 % and hold-0 patterns are
/// faster than the worst case.
#[test]
fn vl_rca_hold_logic_statistics() {
    let vl = VariableLatencyRca::generate(8).unwrap();
    let topo = vl.netlist().topology().unwrap();
    let mut sim = FuncSim::new(vl.netlist(), &topo);
    let mut holds = 0u32;
    let mut total = 0u32;
    for a in (0..=255u64).step_by(5) {
        for b in (0..=255u64).step_by(3) {
            sim.eval(&vl.encode_inputs(a, b).unwrap()).unwrap();
            total += 1;
            if sim.value(vl.hold()) == Logic::One {
                holds += 1;
            }
        }
    }
    let ratio = f64::from(holds) / f64::from(total);
    // (A4⊕B4)(A5⊕B5) is 1 with probability 1/4 under uniform inputs.
    assert!((ratio - 0.25).abs() < 0.03, "hold ratio {ratio}");
}

/// Deterministic reproduction: same seed, same profile, same metrics.
#[test]
fn experiments_are_deterministic() {
    let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let p1 = design
        .profile(PatternSet::uniform(8, 200, 11).pairs(), None)
        .unwrap();
    let p2 = design
        .profile(PatternSet::uniform(8, 200, 11).pairs(), None)
        .unwrap();
    for (a, b) in p1.records().iter().zip(p2.records()) {
        assert_eq!(a, b);
    }
    let m1 = run_engine(&p1, &EngineConfig::adaptive(0.8, 4));
    let m2 = run_engine(&p2, &EngineConfig::adaptive(0.8, 4));
    assert_eq!(m1, m2);
}
