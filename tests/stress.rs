//! Long-run stress: thousands of back-to-back operations through the
//! event-driven simulator with continuous invariant checking.

use agemul_suite::prelude::*;

/// 2 000 consecutive random multiplications on the 8×8 column-bypassing
/// multiplier: every product correct, every sensitized delay inside the
/// static bound, toggle accounting consistent.
#[test]
fn long_event_sequence_holds_all_invariants() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let bound = design.critical_delay_ns(None).unwrap();
    let netlist = design.circuit().netlist();
    let delays = DelayAssignment::uniform(netlist, calibrated_delay_model());
    let mut sim = EventSim::new(netlist, design.topology(), delays);
    sim.settle(&design.circuit().encode_inputs(0, 0).unwrap())
        .unwrap();

    let patterns = PatternSet::uniform(8, 2_000, 0x57AE55);
    let mut reported_toggles = 0u64;
    for (i, &(a, b)) in patterns.pairs().iter().enumerate() {
        let t = sim
            .step(&design.circuit().encode_inputs(a, b).unwrap())
            .unwrap();
        reported_toggles += t.gate_toggles;
        assert!(
            t.delay_ns <= bound + 1e-9,
            "op {i}: {} > {bound}",
            t.delay_ns
        );
        let got = design.circuit().product().decode_with(|net| sim.value(net));
        assert_eq!(got, Some(u128::from(a) * u128::from(b)), "op {i}: {a}×{b}");
    }
    let counted: u64 = sim.gate_toggle_counts().iter().sum();
    assert_eq!(reported_toggles, counted);
}

/// The same stream interleaved with re-executions (repeat patterns) and
/// correlated bursts: the simulator state never corrupts.
#[test]
fn mixed_replay_and_burst_traffic() {
    let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let netlist = design.circuit().netlist();
    let delays = DelayAssignment::uniform(netlist, calibrated_delay_model());
    let mut sim = EventSim::new(netlist, design.topology(), delays);
    sim.settle(&design.circuit().encode_inputs(0, 0).unwrap())
        .unwrap();

    let bursts = PatternSet::correlated(8, 500, 0.1, 0xB00);
    for &(a, b) in bursts.pairs() {
        sim.step(&design.circuit().encode_inputs(a, b).unwrap())
            .unwrap();
        // Razor-style re-execution: the repeat must be quiescent.
        let redo = sim
            .step(&design.circuit().encode_inputs(a, b).unwrap())
            .unwrap();
        assert_eq!(redo.events, 0, "{a}×{b} re-execution not quiescent");
        let got = design.circuit().product().decode_with(|net| sim.value(net));
        assert_eq!(got, Some(u128::from(a) * u128::from(b)));
    }
}
