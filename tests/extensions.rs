//! Integration tests for the beyond-the-paper extensions.

use agemul_suite::prelude::*;

/// Correlated (low-activity) workloads: fewer bit flips per operation must
/// mean shorter sensitized delays and less switching than uniform traffic.
#[test]
fn correlated_workloads_are_calmer() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
    let uniform = design
        .profile(PatternSet::uniform(16, 400, 4).pairs(), None)
        .unwrap();
    let calm = design
        .profile(PatternSet::correlated(16, 400, 0.05, 4).pairs(), None)
        .unwrap();
    assert!(calm.avg_delay_ns() < uniform.avg_delay_ns());
    assert!(calm.avg_gate_toggles() < 0.5 * uniform.avg_gate_toggles());
}

/// The sweep helper, the replay engine, and the cycle-accurate co-simulator
/// must all agree on the chosen deployment point.
#[test]
fn sweep_choice_validates_cycle_accurately() {
    let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 250, 6);
    let profile = design.profile(patterns.pairs(), None).unwrap();
    let periods: Vec<f64> = (5..=12).map(|i| 0.1 * f64::from(i)).collect();
    let sweep = agemul::PeriodSweep::run(&profile, &EngineConfig::adaptive(1.0, 4), &periods);
    let (best_period, best) = sweep.best_latency();

    let live = cycle_accurate_run(
        &design,
        &patterns,
        None,
        &EngineConfig::adaptive(best_period, 4),
    )
    .unwrap();
    assert_eq!(live, best);
}

/// Signed Booth through the event-driven simulator with stale state.
#[test]
fn signed_booth_event_sequences() {
    let m = MultiplierCircuit::generate_signed_booth(8).unwrap();
    let topo = m.netlist().topology().unwrap();
    let delays = DelayAssignment::uniform(m.netlist(), calibrated_delay_model());
    let mut sim = EventSim::new(m.netlist(), &topo, delays);
    sim.settle(&m.encode_inputs(0, 0).unwrap()).unwrap();
    let to_signed = |v: u64, w: u32| -> i64 {
        let shift = 64 - w;
        ((v << shift) as i64) >> shift
    };
    let mut state = 0xABCD_EF01u64;
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (state >> 9) & 0xFF;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (state >> 9) & 0xFF;
        sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
        let got = m.product().decode_with(|net| sim.value(net)).unwrap() as u64;
        let expect = to_signed(a, 8).wrapping_mul(to_signed(b, 8));
        assert_eq!(to_signed(got, 16), expect, "{a:#x} × {b:#x}");
    }
}

/// The gate-level AHL and the behavioural AHL drive the same decisions on
/// a live workload stream, including across the aged-mode switch.
#[test]
fn gate_level_ahl_tracks_behavioural_model_through_aging() {
    let width = 16;
    let skip = 7;
    let hw = GateLevelAhl::generate(width, skip).unwrap();
    let mut sw = Ahl::adaptive(skip, AhlConfig::paper());
    let patterns = PatternSet::uniform(width, 600, 8);
    for (i, &(a, _)) in patterns.pairs().iter().enumerate() {
        let zeros = count_zeros(a, width);
        let hw_decision = hw.decide(a, sw.is_aged_mode()).unwrap();
        assert_eq!(hw_decision, sw.decide(zeros), "op {i}");
        // Error pressure in the middle third of the stream trips the
        // indicator; the hardware must follow the mode input.
        let error = (200..400).contains(&i) && hw_decision == CycleDecision::OneCycle;
        sw.record(error);
    }
    assert!(sw.is_aged_mode());
}

/// Variation, BTI, and electromigration compose into a single coherent
/// delay view the architecture still masters.
#[test]
fn triple_aging_stack_is_absorbed() {
    use agemul_aging::electromigration::{compose_factors, EmModel};

    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
    let patterns = PatternSet::uniform(16, 500, 10);
    let stats = design.workload_stats(patterns.pairs()).unwrap();
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);

    let f_bti = aging_factors(design.circuit().netlist(), &stats, &bti, 7.0);
    let f_em = EmModel::nominal().wire_factors(design.circuit().netlist(), &stats, 7.0);
    let f_var = VariationModel::new(0.05).factors(design.circuit().netlist(), 77);
    let combined = compose_factors(&compose_factors(&f_bti, &f_em), &f_var);

    let profile = design.profile(patterns.pairs(), Some(&combined)).unwrap();
    let aged_crit = design.critical_delay_ns(Some(&combined)).unwrap();
    let fixed = run_fixed_latency(profile.len() as u64, aged_crit);
    let adaptive = run_engine(&profile, &EngineConfig::adaptive(1.05, 7));
    assert!(
        adaptive.avg_latency_ns() < fixed.avg_latency_ns(),
        "adaptive {} vs fixed {}",
        adaptive.avg_latency_ns(),
        fixed.avg_latency_ns()
    );
}
