# Developer entry points. `just verify` is the pre-merge gate; it is also
# available as `scripts/verify.sh` for environments without `just`.

# Format check + clippy (all features, warnings fatal) + full test suite +
# a quick fault-injection campaign smoke run + the timing-kernel
# equivalence smoke + the incremental-vs-full re-profiling equivalence +
# the seeded cross-engine conformance smoke + the incremental sweep smoke
# + the supervised kill/resume soak smoke + the resident-service smoke
# + the seeded Monte Carlo campaign smoke + the fleet replay/policy smoke
# + the deterministic chaos/overload smoke.
verify: fmt-check clippy test fault-smoke timing-equiv incremental-equiv conformance sweep-smoke soak-smoke serve-smoke mc-smoke fleet-smoke chaos-smoke

fmt-check:
	cargo fmt --all -- --check

clippy:
	cargo clippy --workspace --all-targets --all-features -- -D warnings

# Tier-1 gate: release build + full test suite.
test:
	cargo build --release --workspace
	cargo test -q --workspace

# Tests again with the parallel fan-out compiled in.
test-parallel:
	cargo test -q -p agemul -p agemul-faults -p agemul-repro -p agemul-harness -p agemul-fleet --features parallel

# Crash-safety soak: run a supervised fault campaign, SIGKILL it mid-run,
# resume from the surviving checkpoint, and require the resumed report to
# be byte-identical to an uninterrupted run — serial and parallel.
soak-smoke:
	scripts/soak_smoke.sh
	scripts/soak_smoke.sh --features parallel

# Quick fault-campaign smoke: regenerates the `faults` experiment at reduced
# scale so a broken overlay or classifier fails the gate, not the archive.
fault-smoke:
	cargo run --release -p agemul-repro -- --quick faults

# Timing-kernel equivalence smoke: the levelized kernel must reproduce the
# event-driven reference bit-for-bit on an 8×8 column-bypass workload.
timing-equiv:
	cargo test -q -p agemul --test level_equiv timing_equiv_smoke_cb8

# Incremental-vs-full equivalence: the AgingSweep year stepper must be
# byte-identical to from-scratch profiling, the quantized cache key must
# agree with the sweep's diff threshold, and the repro sweep drivers must
# emit identical tables.
incremental-equiv:
	cargo test -q -p agemul aging_sweep
	cargo test -q -p agemul sub_threshold_aging_step_hits_coherently
	cargo test -q -p agemul-repro incremental_and_baseline_drivers_agree

# Incremental sweep smoke: the 7-year × 17-period driver study at reduced
# scale. The experiment itself asserts the sweep counters (exactly one
# full profile per design, dirty-cone re-simulations present, the period
# axis answered by factor identity) and re-derives its final year from
# scratch, failing on any divergence.
sweep-smoke:
	cargo run --release -p agemul-repro -- --quick --incremental sweep

# Conformance smoke: 200 fixed-seed cases through the differential oracle
# (func/batch/event/level, with fault overlays and traced replays) plus
# the metamorphic invariants on the paper architectures. Divergent cases
# are shrunk to minimal JSON repros and fail the gate.
conformance:
	cargo run --release -p agemul-repro -- --quick conformance

# Monte Carlo campaign smoke: the supervised driver must resume
# byte-identically from a truncated checkpoint (harness property), the
# retimed path must match from-scratch kernels bit for bit (campaign
# property), and the reduced-scale seeded `mc` experiment must run end to
# end (it asserts AHL yield ≥ baseline yield at every lifetime point).
mc-smoke:
	cargo test -q -p agemul-harness truncated_checkpoint_resumes_identically
	cargo test -q -p agemul campaign_matches_from_scratch_per_cell
	cargo run --release -p agemul-repro -- --quick mc

# Resident-service smoke: loadgen spawns an in-process agemul-serve,
# drives a brief concurrent run, and exits nonzero unless there were zero
# error responses, a nonzero cache hit rate, and a clean shutdown.
serve-smoke:
	cargo run --release -p agemul-serve --bin loadgen -- --smoke

# Full service load test: ≥100k ops over 300 design/workload combos;
# appends serve/warm_p50|warm_p99|cold_p50 to BENCH_sim.json and writes
# results/serve__loadgen.csv.
serve-loadgen:
	cargo run --release -p agemul-serve --bin loadgen

# Scalar-vs-batch simulator benches; see BENCH_sim.json for the record.
bench-sim:
	cargo bench -p agemul-bench --bench batch_sim

# Profiling-path benches: event-driven vs levelized vs memoized, plus the
# wide-lane verification rows.
bench-profile:
	cargo bench -p agemul-bench --bench profile

# Aging-sweep driver benches: incremental vs from-scratch over the
# 7-year × 17-period grid; see BENCH_sim.json for the record.
bench-sweep:
	cargo bench -p agemul-bench --bench sweep

# Monte Carlo corner-switch benches: plan-reuse re-timing vs from-scratch
# kernel construction (the ≥10× marginal-cost target) plus end-to-end
# campaign rows; see the `mc/*` rows in BENCH_sim.json for the record.
bench-mc:
	cargo bench -p agemul-bench --bench mc

# Fleet replay/policy smoke: the discrete-event log must replay
# byte-identically (golden FNV-1a digests, serial and with the parallel
# fan-out compiled in), a truncated fleet checkpoint must resume to the
# identical study, and the reduced-scale `fleet` experiment must run end
# to end (it asserts aging-aware lifetime strictly exceeds round-robin).
fleet-smoke:
	cargo test -q -p agemul-fleet --test replay_equiv
	cargo test -q -p agemul-fleet --test replay_equiv --features parallel
	cargo test -q -p agemul-harness fleet
	cargo run --release -p agemul-repro -- --quick fleet

# Chaos/overload smoke: the fault-schedule engine's unit suite plus the
# reduced-scale `chaos` experiment — seeded fault schedules over the
# checkpoint, transport, and cache/single-flight seams and the
# overload-shedding probe. The experiment fails on any invariant
# violation (corrupt checkpoint load, non-identical resume, cached error,
# wedged server, or an untyped/slow shed answer).
chaos-smoke:
	cargo test -q -p agemul-chaos
	cargo run --release -p agemul-repro -- --quick chaos

# Full chaos soak: ≥1000 seeded schedules across all seams; writes
# results/chaos__soak.csv and exits nonzero on any violation.
chaos-soak:
	cargo run --release -p agemul-serve --bin chaos_soak -- --schedules 1000 --csv results/chaos__soak.csv

# Fleet campaign throughput benches: ops/sec scaling with node count plus
# the routing-policy overhead pair; see the `fleet/*` rows in
# BENCH_sim.json for the record.
bench-fleet:
	cargo bench -p agemul-bench --bench fleet
