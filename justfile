# Developer entry points. `just verify` is the pre-merge gate; it is also
# available as `scripts/verify.sh` for environments without `just`.

# Format check + clippy (all features, warnings fatal) + full test suite +
# a quick fault-injection campaign smoke run.
verify: fmt-check clippy test fault-smoke

fmt-check:
	cargo fmt --all -- --check

clippy:
	cargo clippy --workspace --all-targets --all-features -- -D warnings

# Tier-1 gate: release build + full test suite.
test:
	cargo build --release --workspace
	cargo test -q --workspace

# Tests again with the parallel fan-out compiled in.
test-parallel:
	cargo test -q -p agemul -p agemul-faults -p agemul-repro --features parallel

# Quick fault-campaign smoke: regenerates the `faults` experiment at reduced
# scale so a broken overlay or classifier fails the gate, not the archive.
fault-smoke:
	cargo run --release -p agemul-repro -- --quick faults

# Scalar-vs-batch simulator benches; see BENCH_sim.json for the record.
bench-sim:
	cargo bench -p agemul-bench --bench batch_sim
