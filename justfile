# Developer entry points. `just verify` is the pre-merge gate; it is also
# available as `scripts/verify.sh` for environments without `just`.

# Format check + clippy (all features, warnings fatal) + full test suite +
# a quick fault-injection campaign smoke run + the timing-kernel
# equivalence smoke + the seeded cross-engine conformance smoke + the
# supervised kill/resume soak smoke.
verify: fmt-check clippy test fault-smoke timing-equiv conformance soak-smoke

fmt-check:
	cargo fmt --all -- --check

clippy:
	cargo clippy --workspace --all-targets --all-features -- -D warnings

# Tier-1 gate: release build + full test suite.
test:
	cargo build --release --workspace
	cargo test -q --workspace

# Tests again with the parallel fan-out compiled in.
test-parallel:
	cargo test -q -p agemul -p agemul-faults -p agemul-repro -p agemul-harness --features parallel

# Crash-safety soak: run a supervised fault campaign, SIGKILL it mid-run,
# resume from the surviving checkpoint, and require the resumed report to
# be byte-identical to an uninterrupted run — serial and parallel.
soak-smoke:
	scripts/soak_smoke.sh
	scripts/soak_smoke.sh --features parallel

# Quick fault-campaign smoke: regenerates the `faults` experiment at reduced
# scale so a broken overlay or classifier fails the gate, not the archive.
fault-smoke:
	cargo run --release -p agemul-repro -- --quick faults

# Timing-kernel equivalence smoke: the levelized kernel must reproduce the
# event-driven reference bit-for-bit on an 8×8 column-bypass workload.
timing-equiv:
	cargo test -q -p agemul --test level_equiv timing_equiv_smoke_cb8

# Conformance smoke: 200 fixed-seed cases through the differential oracle
# (func/batch/event/level, with fault overlays and traced replays) plus
# the metamorphic invariants on the paper architectures. Divergent cases
# are shrunk to minimal JSON repros and fail the gate.
conformance:
	cargo run --release -p agemul-repro -- --quick conformance

# Scalar-vs-batch simulator benches; see BENCH_sim.json for the record.
bench-sim:
	cargo bench -p agemul-bench --bench batch_sim

# Profiling-path benches: event-driven vs levelized vs memoized.
bench-profile:
	cargo bench -p agemul-bench --bench profile
