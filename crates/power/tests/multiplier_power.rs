//! Integration: the power model over real multiplier workloads.

use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::{DelayModel, FlopKind};
use agemul_netlist::{DelayAssignment, EventSim, WorkloadStats};
use agemul_power::{EnergyBreakdown, PowerModel};

fn stats_with_toggles(m: &MultiplierCircuit, count: usize, seed: u64) -> WorkloadStats {
    let topo = m.netlist().topology().unwrap();
    let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
    let mut sim = EventSim::new(m.netlist(), &topo, delays);
    sim.settle(&m.encode_inputs(0, 0).unwrap()).unwrap();
    let width = m.width();
    let mask = (1u64 << width) - 1;
    let mut state = seed;
    for _ in 0..count {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (state >> 9) & mask;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (state >> 9) & mask;
        sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
    }
    let mut stats = WorkloadStats::new(m.netlist());
    stats
        .record_toggles(sim.gate_toggle_counts(), count as u64)
        .unwrap();
    stats
}

#[test]
fn dynamic_energy_scales_with_operand_width() {
    let pm = PowerModel::ptm_32nm_hk();
    let energy = |width: usize| {
        let m = MultiplierCircuit::generate(MultiplierKind::Array, width).unwrap();
        let stats = stats_with_toggles(&m, 150, 3);
        pm.dynamic_energy_per_op_fj(m.netlist(), &stats)
    };
    let e8 = energy(8);
    let e16 = energy(16);
    // An n² array should burn roughly 4× the switching energy at 2× width.
    assert!(e16 > 2.5 * e8, "e8 {e8} vs e16 {e16}");
}

#[test]
fn idle_workload_burns_no_dynamic_energy() {
    let pm = PowerModel::ptm_32nm_hk();
    let m = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
    let topo = m.netlist().topology().unwrap();
    let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
    let mut sim = EventSim::new(m.netlist(), &topo, delays);
    sim.settle(&m.encode_inputs(123, 45).unwrap()).unwrap();
    for _ in 0..50 {
        sim.step(&m.encode_inputs(123, 45).unwrap()).unwrap();
    }
    let mut stats = WorkloadStats::new(m.netlist());
    stats.record_toggles(sim.gate_toggle_counts(), 50).unwrap();
    assert_eq!(pm.dynamic_energy_per_op_fj(m.netlist(), &stats), 0.0);
}

#[test]
fn leakage_tracks_area_and_aging_across_designs() {
    let pm = PowerModel::ptm_32nm_hk();
    let area = pm.area_model().clone();
    let transistors = |kind| {
        MultiplierCircuit::generate(kind, 16)
            .unwrap()
            .netlist()
            .transistor_count(&area)
    };
    let am = transistors(MultiplierKind::Array);
    let rb = transistors(MultiplierKind::RowBypass);
    assert!(rb > am);
    // Bigger circuit leaks more; aging reduces both by the same ratio.
    let fresh_ratio = pm.leakage_power_uw(rb, 0.0) / pm.leakage_power_uw(am, 0.0);
    let aged_ratio = pm.leakage_power_uw(rb, 0.04) / pm.leakage_power_uw(am, 0.04);
    assert!((fresh_ratio - aged_ratio).abs() < 1e-9);
    assert!(fresh_ratio > 1.0);
}

#[test]
fn breakdown_composes_into_sane_power() {
    let pm = PowerModel::ptm_32nm_hk();
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 16).unwrap();
    let stats = stats_with_toggles(&m, 200, 7);
    let e = EnergyBreakdown {
        dynamic_fj: pm.dynamic_energy_per_op_fj(m.netlist(), &stats),
        sequential_fj: pm.flop_energy_fj(FlopKind::Dff, 32)
            + pm.flop_energy_fj(FlopKind::RazorFf, 32),
        leakage_fj: pm.leakage_energy_fj(m.netlist().transistor_count(pm.area_model()), 0.0, 1.2),
    };
    let power_uw = e.average_power_uw(1.2);
    // Sixteen-bit multiplier at ~GHz rates: order 100 µW–10 mW. Sanity
    // band, not a calibration claim.
    assert!(
        (50.0..20_000.0).contains(&power_uw),
        "implausible power {power_uw} µW"
    );
    assert!(e.edp_fj_ns(1.2) > 0.0);
}

#[test]
fn bypassing_reduces_per_gate_switching_under_sparse_selects() {
    // With a sparse multiplicand most CB diagonals freeze: per-gate
    // activity must drop well below the dense case.
    let pm = PowerModel::ptm_32nm_hk();
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 16).unwrap();
    let topo = m.netlist().topology().unwrap();

    let energy_for = |a_mask: u64, seed: u64| {
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let mut sim = EventSim::new(m.netlist(), &topo, delays);
        sim.settle(&m.encode_inputs(0, 0).unwrap()).unwrap();
        let mut state = seed;
        for _ in 0..150 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 9) & a_mask;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 9) & 0xFFFF;
            sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
        }
        let mut stats = WorkloadStats::new(m.netlist());
        stats.record_toggles(sim.gate_toggle_counts(), 150).unwrap();
        pm.dynamic_energy_per_op_fj(m.netlist(), &stats)
    };

    let sparse = energy_for(0x0003, 21); // multiplicand uses 2 bits
    let dense = energy_for(0xFFFF, 21);
    assert!(
        sparse < 0.5 * dense,
        "sparse {sparse} fJ vs dense {dense} fJ"
    );
}
