//! Switching-activity power and energy models.
//!
//! Stands in for the paper's Nanosim power analysis. The model splits
//! multiplier power the same way the paper's Figs. 26(b)/27(b) discussion
//! does:
//!
//! * **Dynamic (combinational)** — every gate-output toggle (glitches
//!   included, as recorded by the event-driven simulator) charges an
//!   effective capacitance proportional to the gate's transistor count:
//!   `E = N_toggle · c_t · V_DD²`. Bypassing wins here because frozen
//!   adders do not toggle.
//! * **Sequential** — input flip-flops, output flip-flops (plain D for the
//!   fixed-latency designs, Razor for the variable-latency ones) burn a
//!   per-clock-edge energy proportional to their transistor count.
//! * **Leakage** — subthreshold leakage proportional to total transistor
//!   count, decaying exponentially as BTI raises `V_th`
//!   (`10^(−ΔV_th / ss)`); this is why every design's power *drops* over
//!   the seven-year horizon in the paper's plots.
//!
//! Absolute numbers are technology-flavoured estimates; every figure that
//! consumes them is normalized, exactly as in the paper.
//!
//! # Example
//!
//! ```
//! use agemul_power::PowerModel;
//!
//! let pm = PowerModel::ptm_32nm_hk();
//! let fresh = pm.leakage_power_uw(10_000, 0.0);
//! let aged = pm.leakage_power_uw(10_000, 0.05); // ΔVth = 50 mV
//! assert!(aged < fresh);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agemul_logic::{AreaModel, FlopKind, Technology};
use agemul_netlist::{GateId, Netlist, WorkloadStats};

/// Per-operation energy breakdown of a multiplier architecture.
///
/// Produced by the architecture-level accounting in the `agemul` core
/// crate; kept here so the power math lives next to its coefficients.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Combinational switching energy per operation, femtojoules.
    pub dynamic_fj: f64,
    /// Sequential (flip-flop clocking) energy per operation, femtojoules.
    pub sequential_fj: f64,
    /// Leakage energy per operation, femtojoules.
    pub leakage_fj: f64,
}

impl EnergyBreakdown {
    /// Total energy per operation, femtojoules.
    #[inline]
    pub fn total_fj(&self) -> f64 {
        self.dynamic_fj + self.sequential_fj + self.leakage_fj
    }

    /// Average power in microwatts given the operation latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency_ns` is not finite and positive.
    pub fn average_power_uw(&self, latency_ns: f64) -> f64 {
        assert!(
            latency_ns.is_finite() && latency_ns > 0.0,
            "latency must be finite and positive, got {latency_ns}"
        );
        // fJ / ns = µW.
        self.total_fj() / latency_ns
    }

    /// Energy-delay product in fJ·ns (the paper's EDP metric up to
    /// normalization: `P · D² = E · D`).
    pub fn edp_fj_ns(&self, latency_ns: f64) -> f64 {
        assert!(
            latency_ns.is_finite() && latency_ns > 0.0,
            "latency must be finite and positive, got {latency_ns}"
        );
        self.total_fj() * latency_ns
    }
}

/// Technology-level power coefficients.
///
/// See the crate docs for the model structure. All methods are pure; the
/// architecture simulation in `agemul` assembles them into
/// [`EnergyBreakdown`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    tech: Technology,
    area: AreaModel,
    /// Effective switched capacitance per transistor, femtofarads.
    cap_per_transistor_ff: f64,
    /// Zero-time leakage per transistor at the operating point, nanowatts.
    leak_per_transistor_nw: f64,
    /// Subthreshold swing, volts per decade of leakage.
    subthreshold_swing_v: f64,
    /// Clock-tree + internal energy per flip-flop transistor per clock
    /// edge, femtojoules.
    flop_energy_per_transistor_fj: f64,
}

impl PowerModel {
    /// Coefficients flavoured for the 32 nm high-k/metal-gate node at
    /// 125 °C (the paper's operating point).
    pub fn ptm_32nm_hk() -> Self {
        PowerModel {
            tech: Technology::ptm_32nm_hk(),
            area: AreaModel::standard_cell(),
            cap_per_transistor_ff: 0.05,
            leak_per_transistor_nw: 2.0,
            subthreshold_swing_v: 0.1,
            flop_energy_per_transistor_fj: 0.03,
        }
    }

    /// The technology operating point.
    #[inline]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The area model used for capacitance/leakage proxies.
    #[inline]
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// Energy of a single output toggle of a gate with `transistors`
    /// devices, femtojoules: `c_t · N · V_DD²`.
    #[inline]
    pub fn toggle_energy_fj(&self, transistors: u32) -> f64 {
        self.cap_per_transistor_ff * f64::from(transistors) * self.tech.vdd_v * self.tech.vdd_v
    }

    /// Average combinational switching energy per applied pattern,
    /// femtojoules, from recorded workload activity.
    pub fn dynamic_energy_per_op_fj(&self, netlist: &Netlist, stats: &WorkloadStats) -> f64 {
        netlist
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let t = self.area.gate_transistors(g.kind(), g.inputs().len());
                stats.gate_activity(GateId::from_index(i)) * self.toggle_energy_fj(t)
            })
            .sum()
    }

    /// Per-clock-edge energy of `count` flip-flops of the given kind,
    /// femtojoules.
    pub fn flop_energy_fj(&self, kind: FlopKind, count: usize) -> f64 {
        self.flop_energy_per_transistor_fj
            * f64::from(self.area.flop_transistors(kind))
            * count as f64
    }

    /// Leakage power of `transistors` devices after BTI has raised the
    /// threshold by `delta_vth_v` volts, microwatts.
    ///
    /// Subthreshold leakage falls one decade per
    /// `subthreshold_swing_v` of threshold increase — this is the
    /// mechanism behind the paper's downward-sloping power curves.
    ///
    /// # Panics
    ///
    /// Panics if `delta_vth_v` is negative or not finite.
    pub fn leakage_power_uw(&self, transistors: u64, delta_vth_v: f64) -> f64 {
        assert!(
            delta_vth_v.is_finite() && delta_vth_v >= 0.0,
            "threshold drift must be finite and non-negative, got {delta_vth_v}"
        );
        let fresh_nw = self.leak_per_transistor_nw * transistors as f64;
        fresh_nw * 10f64.powf(-delta_vth_v / self.subthreshold_swing_v) / 1000.0
    }

    /// Leakage energy accrued over one operation of `latency_ns`,
    /// femtojoules.
    pub fn leakage_energy_fj(&self, transistors: u64, delta_vth_v: f64, latency_ns: f64) -> f64 {
        // µW · ns = fJ.
        self.leakage_power_uw(transistors, delta_vth_v) * latency_ns
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::ptm_32nm_hk()
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, GateKind, Logic};
    use agemul_netlist::{DelayAssignment, EventSim};

    use super::*;

    #[test]
    fn toggle_energy_scales_with_size() {
        let pm = PowerModel::ptm_32nm_hk();
        assert!(pm.toggle_energy_fj(8) > pm.toggle_energy_fj(2));
        assert!((pm.toggle_energy_fj(4) - 2.0 * pm.toggle_energy_fj(2)).abs() < 1e-12);
    }

    #[test]
    fn leakage_decays_with_aging() {
        let pm = PowerModel::ptm_32nm_hk();
        let fresh = pm.leakage_power_uw(1000, 0.0);
        let aged = pm.leakage_power_uw(1000, 0.05);
        assert!(aged < fresh);
        // 50 mV at 100 mV/decade → one half decade ≈ 0.316×.
        assert!((aged / fresh - 10f64.powf(-0.5)).abs() < 1e-9);
    }

    #[test]
    fn razor_flops_cost_more_than_plain() {
        let pm = PowerModel::ptm_32nm_hk();
        assert!(pm.flop_energy_fj(FlopKind::RazorFf, 32) > pm.flop_energy_fj(FlopKind::Dff, 32));
    }

    #[test]
    fn dynamic_energy_tracks_recorded_activity() {
        // One inverter toggling every pattern vs every other pattern.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(y, "y");
        let topo = n.topology().unwrap();
        let pm = PowerModel::ptm_32nm_hk();

        let run = |pats: &[Logic]| {
            let mut sim = EventSim::new(
                &n,
                &topo,
                DelayAssignment::uniform(&n, &DelayModel::nominal()),
            );
            sim.settle(&[Logic::Zero]).unwrap();
            for &p in pats {
                sim.step(&[p]).unwrap();
            }
            let mut stats = WorkloadStats::new(&n);
            stats
                .record_toggles(sim.gate_toggle_counts(), pats.len() as u64)
                .unwrap();
            pm.dynamic_energy_per_op_fj(&n, &stats)
        };

        let busy = run(&[Logic::One, Logic::Zero, Logic::One, Logic::Zero]);
        let calm = run(&[Logic::Zero, Logic::Zero, Logic::One, Logic::One]);
        assert!(busy > calm, "busy {busy} vs calm {calm}");
    }

    #[test]
    fn breakdown_arithmetic() {
        let e = EnergyBreakdown {
            dynamic_fj: 10.0,
            sequential_fj: 5.0,
            leakage_fj: 1.0,
        };
        assert_eq!(e.total_fj(), 16.0);
        assert!((e.average_power_uw(2.0) - 8.0).abs() < 1e-12);
        assert!((e.edp_fj_ns(2.0) - 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn power_rejects_zero_latency() {
        let e = EnergyBreakdown::default();
        let _ = e.average_power_uw(0.0);
    }

    #[test]
    fn leakage_energy_is_power_times_time() {
        let pm = PowerModel::ptm_32nm_hk();
        let e = pm.leakage_energy_fj(500, 0.0, 3.0);
        let p = pm.leakage_power_uw(500, 0.0);
        assert!((e - 3.0 * p).abs() < 1e-12);
    }
}
