//! `mc` — Monte Carlo yield-vs-lifetime study over process corners.
//!
//! The paper's figures evaluate one nominal die per architecture; real
//! silicon spreads. This experiment samples lognormal per-gate time-zero
//! variation ([`VariationModel`](agemul_aging::VariationModel)) on top of
//! the calibrated BTI aging trajectory and asks, at every lifetime point:
//! what fraction of dies still meets the short cycle
//!
//! * **AHL off** (fixed-latency baseline): a die passes iff its workload's
//!   longest sensitized path fits the single short cycle;
//! * **AHL on** (adaptive): a die passes iff the two-cycle fallback
//!   catches every slow operation (no undetected errors) — the
//!   aging-aware design's whole value proposition, read as a yield curve.
//!
//! Each corner reuses one compiled levelized kernel across the lifetime
//! axis ([`CornerProfiler`](agemul::CornerProfiler) re-timing; see
//! `agemul::montecarlo`), and the whole campaign runs under the
//! supervised harness — quarantined corners are excluded from the curve
//! and reported in a note instead of aborting the experiment.
//!
//! Conventions (also recorded in `EXPERIMENTS.md`): σ = 0.05 lognormal,
//! base seed `0x0A6E_0002`, corner seeds derived by a SplitMix64
//! finalizer over `(base, corner)`, lifetime points 0–7 years. The cycle
//! is anchored to each design's fresh nominal *observed* workload max
//! delay times a [`GUARDBAND`] of 10 % — deliberately inside the ~13 %
//! seven-year aging margin, so the fixed-latency baseline passes young
//! dies and decays as aging (plus unlucky variation) eats the guardband,
//! while the AHL's checked two-cycle fallback keeps passing. Anchoring to
//! the topological critical path instead would pin both curves at 1.0
//! (critical paths are rarely sensitized — the paper's own Fig. 5 point)
//! and measure nothing.

use std::time::Instant;

use agemul::{McConfig, MonteCarloCampaign};
use agemul_circuits::MultiplierKind;
use agemul_harness::{run_mc_supervised, Resume, SupervisorConfig};

use super::{f3, skips};
use crate::{Context, Report, Result, Table};

/// Lognormal σ of the per-gate time-zero variation.
const MC_SIGMA: f64 = 0.05;

/// Campaign base seed (the workspace seed family; `0x0A6E_0001` is the
/// shared uniform-workload seed).
const MC_SEED: u64 = 0x0A6E_0002;

/// Cycle guardband over the fresh nominal observed max delay (see the
/// module docs for why it sits inside the seven-year aging margin).
const GUARDBAND: f64 = 1.10;

fn mc_study(ctx: &mut Context, width: usize, corners: usize, id: &str) -> Result<Report> {
    let patterns = ctx.scale().mc_patterns(width);
    let skip = skips(width)[0];

    let mut report = Report::new(
        id,
        format!(
            "{width}×{width} yield vs lifetime: {corners} corners/arch at lognormal σ {MC_SIGMA}, \
             {patterns} patterns per corner-year, Skip-{skip}, cycle anchored {:.0} % over the \
             fresh nominal observed max delay",
            (GUARDBAND - 1.0) * 100.0
        ),
    );

    for (name, kind) in [
        ("AM", MultiplierKind::Array),
        ("A-VLCB", MultiplierKind::ColumnBypass),
        ("A-VLRB", MultiplierKind::RowBypass),
    ] {
        let design = ctx.design(kind, width)?;
        let workload = ctx.uniform_workload(width, patterns);

        let mut config = McConfig::new(corners, MC_SIGMA, MC_SEED);
        config.skip = skip;
        config.cycle_ns = ctx.profile(kind, width, 0.0, patterns)?.max_delay_ns() * GUARDBAND;
        let campaign = MonteCarloCampaign::new(&design, workload.pairs(), ctx.bti(), config)?;

        let t0 = Instant::now();
        let run = run_mc_supervised(&campaign, &SupervisorConfig::default(), None, Resume::Fresh)?;
        let elapsed = t0.elapsed().as_secs_f64();

        let baseline = run.report.yield_curve(false);
        let adaptive = run.report.yield_curve(true);
        let usable = run.report.corners.len();

        let mut t = Table::new(
            format!("{name} yield vs lifetime"),
            &["year", "baseline_yield", "ahl_yield", "mean_max_delay_ns"],
        );
        for (yi, ((year, base), (_, ahl))) in baseline.iter().zip(&adaptive).enumerate() {
            // The AHL never un-passes a die the baseline passes (its
            // one-cycle guesses are checked, not trusted); a crossing
            // curve means the engine semantics regressed.
            if ahl + 1e-12 < *base {
                return Err(format!(
                    "{name}: AHL yield {ahl:.4} below baseline {base:.4} at year {year}"
                )
                .into());
            }
            let mean_max = run
                .report
                .corners
                .iter()
                .map(|c| c.outcomes[yi].max_delay_ns)
                .sum::<f64>()
                / usable as f64;
            t.row(&[format!("{year:.0}"), f3(*base), f3(*ahl), f3(mean_max)]);
        }
        t.note(format!(
            "{usable}/{corners} corners usable ({} quarantined), evaluated in {elapsed:.1}s",
            run.quarantined_corners.len()
        ));
        t.note(format!(
            "cycle {} ns (fresh nominal observed max × {GUARDBAND}), base seed {MC_SEED:#010x}, \
             σ {MC_SIGMA}",
            f3(campaign.config().cycle_ns)
        ));
        report.push(t);
    }
    Ok(report)
}

/// `mc` — Monte Carlo yield-vs-lifetime curves for the 16×16 array,
/// column-bypassing, and row-bypassing multipliers, with the AHL on and
/// off (see the module docs for conventions).
///
/// # Errors
///
/// Propagates campaign/harness failures, and fails if the AHL yield drops
/// below the fixed-latency baseline at any lifetime point (the adaptive
/// engine must dominate).
pub fn mc(ctx: &mut Context) -> Result<Report> {
    mc_study(ctx, 16, ctx.scale().mc_corners(), "mc")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The campaign is a pure function of its seeds: two studies at the
    /// same configuration render cell-identical tables.
    #[test]
    fn study_is_reproducible() {
        let mut ctx_a = Context::new(Scale::Quick);
        let a = mc_study(&mut ctx_a, 8, 4, "mc-test").unwrap();
        let mut ctx_b = Context::new(Scale::Quick);
        let b = mc_study(&mut ctx_b, 8, 4, "mc-test").unwrap();

        assert_eq!(a.tables.len(), 3);
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.row_count(), 8, "one row per lifetime point");
            assert_eq!(ta.row_count(), tb.row_count());
            for r in 0..ta.row_count() {
                for c in 0..4 {
                    assert_eq!(ta.cell(r, c), tb.cell(r, c), "row {r} col {c}");
                }
            }
        }
    }
}
