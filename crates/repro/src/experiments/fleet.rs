//! `fleet` — datacenter-scale routing-policy study over aging multipliers.
//!
//! The paper evaluates one multiplier aging in isolation; deployed
//! silicon ages in fleets, where a scheduler chooses which instance
//! serves each operation. This experiment runs the `agemul-fleet`
//! discrete-event simulator over a datacenter of divergently aged
//! instances (per-node process corners, utilization-proportional BTI
//! aging, per-node AHL + Razor, retirement/down-clock policies) and
//! compares routing policies on the same seeded workload:
//!
//! * **round-robin** — the oblivious baseline; spreads load evenly, so
//!   the oldest instances hit the retirement cliff first and the fleet
//!   loses quorum;
//! * **least-loaded** — balances queue depth, not health;
//! * **aging-aware** — routes to the least-degraded half of the fleet
//!   (by each node's profiled workload max delay), offloading marginal
//!   instances before they start throwing Razor errors;
//! * **aging-aware + rotation** — stacks a rejuvenation rotation on top
//!   (periodic rest epochs with partial BTI recovery).
//!
//! The experiment *asserts* the headline claim — aging-aware routing
//! reaches a strictly later quorum-loss epoch than round-robin — and
//! fails loudly if the separation ever regresses.
//!
//! Conventions (also in `EXPERIMENTS.md`): base seed `0x0A6E_0005`; node
//! corner seeds are SplitMix64-derived from the base XOR a corner salt
//! (decorrelating corners from trace streams); epoch traces are derived
//! per `(trace, seed, epoch)`; the cycle is anchored at the fresh
//! one-cycle-eligible workload max (zeros ≥ skip) times a 5 % guardband,
//! per the AHL contract — two-cycle operations need not fit. Scenarios
//! run under the supervised harness; the event log's FNV-1a fingerprint
//! per scenario is recorded as the replay witness.

use std::time::Instant;

use agemul_circuits::MultiplierKind;
use agemul_fleet::{FleetConfig, FleetPolicy, FleetSummary, RoutingPolicy};
use agemul_harness::{run_fleet_supervised, FleetScenario, Resume, SupervisorConfig};

use super::skips;
use crate::{Context, Report, Result, Table};

/// Fleet campaign base seed (the workspace seed family: `0x0A6E_0001`
/// uniform workloads, `0x0A6E_0002` Monte Carlo corners).
const FLEET_SEED: u64 = 0x0A6E_0005;

/// Multiplier instances in the fleet. Sized so the majority quorum (3/4)
/// breaks after two retirements — small enough to profile quickly, large
/// enough that routing decisions matter.
const FLEET_NODES: usize = 4;

/// Simulated years of utilization-proportional aging per epoch at fair
/// share.
const YEARS_PER_EPOCH: f64 = 0.5;

/// Rejuvenation rotation for the stacked scenario: every third epoch one
/// node rests and recovers a quarter-year of BTI stress.
const ROTATION_EPOCHS: u32 = 3;
const ROTATION_RECOVERY_YEARS: f64 = 0.25;

fn scenarios(epochs: usize, ops: usize) -> Vec<FleetScenario> {
    let policies = [
        FleetPolicy::baseline(RoutingPolicy::RoundRobin),
        FleetPolicy::baseline(RoutingPolicy::LeastLoaded),
        FleetPolicy::baseline(RoutingPolicy::AgingAware),
        FleetPolicy::with_rotation(
            RoutingPolicy::AgingAware,
            ROTATION_EPOCHS,
            ROTATION_RECOVERY_YEARS,
        ),
    ];
    policies
        .into_iter()
        .map(|policy| {
            let mut config = FleetConfig::new(FLEET_NODES, epochs, ops, FLEET_SEED);
            config.skip = skips(16)[0];
            config.years_per_epoch = YEARS_PER_EPOCH;
            config.policy = policy;
            FleetScenario::new(config.policy.label(), config)
        })
        .collect()
}

fn lifetime_cell(s: &FleetSummary) -> String {
    match s.lifetime_epochs {
        Some(e) => e.to_string(),
        None => format!(">{}", s.epochs),
    }
}

fn fleet_study(
    ctx: &mut Context,
    epochs: usize,
    ops: usize,
    demand_separation: bool,
    id: &str,
) -> Result<Report> {
    let skip = skips(16)[0];
    let design = ctx.design(MultiplierKind::ColumnBypass, 16)?;
    let scenarios = scenarios(epochs, ops);

    let t0 = Instant::now();
    let run = run_fleet_supervised(
        &design,
        ctx.bti(),
        &scenarios,
        &SupervisorConfig::default(),
        None,
        Resume::Fresh,
    )?;
    let elapsed = t0.elapsed().as_secs_f64();
    if !run.quarantined_scenarios.is_empty() {
        return Err(format!(
            "fleet: scenario(s) {:?} quarantined; the policy comparison is invalid",
            run.quarantined_scenarios
        )
        .into());
    }

    let mut report = Report::new(
        id,
        format!(
            "16×16 A-VLCB fleet of {FLEET_NODES} instances, {epochs} epochs × {ops} ops, \
             Skip-{skip}, {YEARS_PER_EPOCH} years/epoch at fair share: quorum-loss lifetime \
             by routing policy"
        ),
    );
    let mut t = Table::new(
        "fleet lifetime by routing policy",
        &[
            "policy",
            "lifetime_epochs",
            "retired_nodes",
            "completed_ops",
            "dropped_ops",
            "errors",
            "undetected",
            "two_cycle_ops",
            "throughput_ops_per_us",
            "log_hash",
        ],
    );
    for (_, s) in &run.summaries {
        t.row(&[
            s.policy.clone(),
            lifetime_cell(s),
            s.retired_nodes.to_string(),
            s.completed_ops.to_string(),
            s.dropped_ops.to_string(),
            s.errors.to_string(),
            s.undetected.to_string(),
            s.two_cycle_ops.to_string(),
            format!("{:.3}", s.throughput_ops_per_us),
            format!("{:#018x}", s.log_hash),
        ]);
    }

    let round_robin = &run.summaries[0].1;
    let aging_aware = &run.summaries[2].1;
    if demand_separation {
        // The headline claim, enforced: aging-aware routing must keep the
        // fleet above quorum strictly longer than oblivious round-robin.
        // `lifetime_or_censored` maps a censored run (no quorum loss
        // within the horizon) to the horizon itself, so censored
        // aging-aware beats any in-horizon round-robin loss.
        if aging_aware.lifetime_or_censored() <= round_robin.lifetime_or_censored() {
            return Err(format!(
                "fleet: aging-aware routing did not extend fleet lifetime over round-robin \
                 ({} vs {} epochs)",
                lifetime_cell(aging_aware),
                lifetime_cell(round_robin),
            )
            .into());
        }
    }

    t.note(format!(
        "base seed {FLEET_SEED:#010x}; corner seeds SplitMix64(base ^ salt, node); epoch \
         traces derived per (trace, seed, epoch); uniform trace; cycle anchored at the fresh \
         one-cycle-eligible max × 1.05"
    ));
    t.note(format!(
        "quorum {} of {FLEET_NODES} (majority); retirement at 600 errors/10k ops or any \
         undetected error; down-clock 5% at 250 errors/10k (max 2); rotation rests one node \
         every {ROTATION_EPOCHS} epochs recovering {ROTATION_RECOVERY_YEARS} years",
        FLEET_NODES / 2 + 1
    ));
    t.note(format!(
        "log_hash is the event log's FNV-1a replay witness (byte-identical across \
         serial/parallel sweeps and Level/Event engines); evaluated in {elapsed:.1}s"
    ));
    report.push(t);
    Ok(report)
}

/// `fleet` — quorum-loss lifetime of a 16×16 A-VLCB fleet under four
/// routing/rejuvenation policies on the same seeded workload (see the
/// module docs for conventions).
///
/// # Errors
///
/// Propagates campaign/harness failures, fails if any scenario was
/// quarantined, and fails if aging-aware routing does not reach a
/// strictly later quorum-loss epoch than round-robin.
pub fn fleet(ctx: &mut Context) -> Result<Report> {
    let epochs = ctx.scale().fleet_epochs();
    let ops = ctx.scale().fleet_ops_per_epoch();
    fleet_study(ctx, epochs, ops, true, "fleet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The study is a pure function of its seeds: two runs at the same
    /// configuration render cell-identical tables. (A miniature horizon —
    /// the lifetime-separation assertion is exercised by the full-scale
    /// `repro fleet` run, not here.)
    #[test]
    fn study_is_reproducible() {
        let mut ctx_a = Context::new(Scale::Quick);
        let a = fleet_study(&mut ctx_a, 2, 48, false, "fleet-test").unwrap();
        let mut ctx_b = Context::new(Scale::Quick);
        let b = fleet_study(&mut ctx_b, 2, 48, false, "fleet-test").unwrap();

        assert_eq!(a.tables.len(), 1);
        let (ta, tb) = (&a.tables[0], &b.tables[0]);
        assert_eq!(ta.row_count(), 4, "one row per policy scenario");
        assert_eq!(ta.row_count(), tb.row_count());
        for r in 0..ta.row_count() {
            for c in 0..10 {
                assert_eq!(ta.cell(r, c), tb.cell(r, c), "row {r} col {c}");
            }
        }
    }
}
