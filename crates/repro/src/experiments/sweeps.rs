//! Cycle-period sweep experiments at year 0: Figs. 13–18.

use agemul::{run_engine, EngineConfig};
use agemul_circuits::MultiplierKind;

use super::{f3, period_grid, skips};
use crate::{Context, Report, Result, Table};

/// Figs. 13 (16×16) / 14 (32×32) — average latency of the adaptive
/// variable-latency column-/row-bypassing multipliers versus cycle period,
/// one table per skip scenario, against the AM/FLCB/FLRB fixed-latency
/// constants.
fn latency_vs_period(ctx: &mut Context, width: usize, id: &str) -> Result<Report> {
    let count = ctx.scale().latency_patterns(width);
    let am = ctx.critical(MultiplierKind::Array, width, 0.0)?;
    let flcb = ctx.critical(MultiplierKind::ColumnBypass, width, 0.0)?;
    let flrb = ctx.critical(MultiplierKind::RowBypass, width, 0.0)?;
    let cb = ctx.profile(MultiplierKind::ColumnBypass, width, 0.0, count)?;
    let rb = ctx.profile(MultiplierKind::RowBypass, width, 0.0, count)?;

    let mut report = Report::new(
        id,
        format!("average latency vs cycle period, {width}×{width}, year 0 ({count} patterns)"),
    );
    for skip in skips(width) {
        let mut table = Table::new(
            format!("Skip-{skip}: average latency (ns)"),
            &["period", "A-VLCB", "A-VLRB"],
        );
        let mut best = (f64::INFINITY, f64::INFINITY, 0.0f64, 0.0f64);
        for period in period_grid(width) {
            let mcb = run_engine(&cb, &EngineConfig::adaptive(period, skip));
            let mrb = run_engine(&rb, &EngineConfig::adaptive(period, skip));
            if mcb.avg_latency_ns() < best.0 {
                best.0 = mcb.avg_latency_ns();
                best.2 = period;
            }
            if mrb.avg_latency_ns() < best.1 {
                best.1 = mrb.avg_latency_ns();
                best.3 = period;
            }
            table.row(&[
                f3(period),
                f3(mcb.avg_latency_ns()),
                f3(mrb.avg_latency_ns()),
            ]);
        }
        table.note(format!(
            "fixed-latency constants: AM {} / FLCB {} / FLRB {} ns",
            f3(am),
            f3(flcb),
            f3(flrb)
        ));
        table.note(format!(
            "best A-VLCB {} ns @ {} ns: {:.1}% below FLCB, {:+.1}% vs AM",
            f3(best.0),
            f3(best.2),
            100.0 * (1.0 - best.0 / flcb),
            100.0 * (best.0 / am - 1.0)
        ));
        table.note(format!(
            "best A-VLRB {} ns @ {} ns: {:.1}% below FLRB, {:+.1}% vs AM",
            f3(best.1),
            f3(best.3),
            100.0 * (1.0 - best.1 / flrb),
            100.0 * (best.1 / am - 1.0)
        ));
        report.push(table);
    }
    Ok(report)
}

/// What a skip-comparison sweep reports per period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepMetric {
    LatencyNs,
    ErrorsPer10kCycles,
}

/// Figs. 15/17 (latency) and 16/18 (error counts) — one table per
/// multiplier kind with the three skip scenarios side by side.
fn skip_comparison(
    ctx: &mut Context,
    width: usize,
    metric: SweepMetric,
    id: &str,
    title: &str,
) -> Result<Report> {
    let count = ctx.scale().latency_patterns(width);
    let mut report = Report::new(id, format!("{title}, {width}×{width} ({count} patterns)"));
    let am = ctx.critical(MultiplierKind::Array, width, 0.0)?;
    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let profile = ctx.profile(kind, width, 0.0, count)?;
        let fl = ctx.critical(kind, width, 0.0)?;
        let [s0, s1, s2] = skips(width);
        let mut table = Table::new(
            format!("A-VL{} ({})", kind.label(), title),
            &[
                "period",
                &format!("Skip-{s0}"),
                &format!("Skip-{s1}"),
                &format!("Skip-{s2}"),
            ],
        );
        for period in period_grid(width) {
            let cells: Vec<String> = skips(width)
                .iter()
                .map(|&skip| {
                    let m = run_engine(&profile, &EngineConfig::adaptive(period, skip));
                    match metric {
                        SweepMetric::LatencyNs => f3(m.avg_latency_ns()),
                        SweepMetric::ErrorsPer10kCycles => {
                            format!("{:.0}", m.errors_per_10k_cycles())
                        }
                    }
                })
                .collect();
            table.row(&[
                f3(period),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
        if metric == SweepMetric::LatencyNs {
            table.note(format!(
                "fixed-latency constants: AM {} / FL{} {} ns",
                f3(am),
                kind.label(),
                f3(fl)
            ));
        }
        report.push(table);
    }
    Ok(report)
}

/// Fig. 13 — average latency vs cycle period, 16×16, Skip-7/8/9.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig13(ctx: &mut Context) -> Result<Report> {
    latency_vs_period(ctx, 16, "fig13")
}

/// Fig. 14 — average latency vs cycle period, 32×32, Skip-15/16/17.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig14(ctx: &mut Context) -> Result<Report> {
    latency_vs_period(ctx, 32, "fig14")
}

/// Fig. 15 — 16×16 average latency across skip numbers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig15(ctx: &mut Context) -> Result<Report> {
    skip_comparison(
        ctx,
        16,
        SweepMetric::LatencyNs,
        "fig15",
        "average latency (ns)",
    )
}

/// Fig. 16 — 16×16 Razor error count (per 10 000 cycles) across skips.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig16(ctx: &mut Context) -> Result<Report> {
    skip_comparison(
        ctx,
        16,
        SweepMetric::ErrorsPer10kCycles,
        "fig16",
        "errors per 10k cycles",
    )
}

/// Fig. 17 — 32×32 average latency across skip numbers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig17(ctx: &mut Context) -> Result<Report> {
    skip_comparison(
        ctx,
        32,
        SweepMetric::LatencyNs,
        "fig17",
        "average latency (ns)",
    )
}

/// Fig. 18 — 32×32 Razor error count (per 10 000 cycles) across skips.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig18(ctx: &mut Context) -> Result<Report> {
    skip_comparison(
        ctx,
        32,
        SweepMetric::ErrorsPer10kCycles,
        "fig18",
        "errors per 10k cycles",
    )
}
