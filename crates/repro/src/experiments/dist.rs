//! Distribution experiments: Figs. 5, 6, 9, 10.

use agemul::{count_zeros, PatternSet};
use agemul_circuits::{MultiplierKind, Operand};

use super::{f3, pct, percentile};
use crate::{Context, Report, Result, Table};

/// Fig. 5 — path-delay distribution of the 16×16 AM, column-, and
/// row-bypassing multipliers under random input patterns.
///
/// The paper reports maximum delays of 1.32 / 1.88 / 1.82 ns and notes
/// that >98 % of AM paths are below 0.7 ns while >93 % (CB) and >98 % (RB)
/// are below 0.9 ns.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig5(ctx: &mut Context) -> Result<Report> {
    let count = ctx.scale().distribution_patterns();
    let mut report = Report::new(
        "fig5",
        format!("path delay distribution, 16×16, {count} random patterns"),
    );

    let mut summary = Table::new(
        "delay summary (ns)",
        &[
            "multiplier",
            "max",
            "avg",
            "p50",
            "p90",
            "p99",
            "<0.7ns",
            "<0.9ns",
        ],
    );
    let mut histograms: Vec<(MultiplierKind, Vec<f64>)> = Vec::new();
    for kind in MultiplierKind::PAPER {
        let profile = ctx.profile(kind, 16, 0.0, count)?;
        let mut delays: Vec<f64> = profile.records().iter().map(|r| r.delay_ns).collect();
        delays.sort_by(f64::total_cmp);
        let below = |t: f64| delays.iter().filter(|&&d| d < t).count() as f64 / delays.len() as f64;
        summary.row(&[
            kind.label().to_string(),
            f3(profile.max_delay_ns()),
            f3(profile.avg_delay_ns()),
            f3(percentile(&delays, 50.0)),
            f3(percentile(&delays, 90.0)),
            f3(percentile(&delays, 99.0)),
            pct(below(0.7)),
            pct(below(0.9)),
        ]);
        histograms.push((kind, delays));
    }
    summary.note("paper maxima: AM 1.32, CB 1.88, RB 1.82 ns (SPICE; shapes comparable)");
    report.push(summary);

    // Shared-bin histogram, 0.1 ns bins.
    let hi = histograms
        .iter()
        .flat_map(|(_, d)| d.last().copied())
        .fold(0.0f64, f64::max);
    let bins = (hi / 0.1).ceil() as usize + 1;
    let mut hist = Table::new(
        "pattern counts per 0.1 ns delay bin",
        &["bin (ns)", "AM", "CB", "RB"],
    );
    for b in 0..bins {
        let lo = 0.1 * b as f64;
        let up = lo + 0.1;
        let cells: Vec<String> = histograms
            .iter()
            .map(|(_, d)| d.iter().filter(|&&x| x >= lo && x < up).count().to_string())
            .collect();
        hist.row(&[
            format!("{lo:.1}–{up:.1}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    report.push(hist);
    Ok(report)
}

/// Fig. 6 — delay distribution of the 16×16 column-bypassing multiplier
/// when the multiplicand has exactly 6, 8, or 10 zeros: more zeros shift
/// the distribution left (smaller delays).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig6(ctx: &mut Context) -> Result<Report> {
    let count = ctx.scale().fig6_patterns();
    let mut report = Report::new(
        "fig6",
        format!("16×16 CB delay vs zeros in multiplicand ({count} patterns/group)"),
    );
    let design = ctx.design(MultiplierKind::ColumnBypass, 16)?;
    let mut table = Table::new(
        "delay by multiplicand zero count (ns)",
        &["zeros", "avg", "p50", "p90", "max"],
    );
    let mut averages = Vec::new();
    for (i, zeros) in [6u32, 8, 10].into_iter().enumerate() {
        let patterns = PatternSet::with_exact_zeros(
            16,
            count,
            zeros,
            Operand::Multiplicand,
            0x0A6E_0600 + i as u64,
        );
        let profile = design.profile(patterns.pairs(), None)?;
        let mut delays: Vec<f64> = profile.records().iter().map(|r| r.delay_ns).collect();
        delays.sort_by(f64::total_cmp);
        averages.push(profile.avg_delay_ns());
        table.row(&[
            zeros.to_string(),
            f3(profile.avg_delay_ns()),
            f3(percentile(&delays, 50.0)),
            f3(percentile(&delays, 90.0)),
            f3(profile.max_delay_ns()),
        ]);
    }
    let left_shift = averages.windows(2).all(|w| w[1] < w[0]);
    table.note(format!(
        "distribution left-shifts as zeros increase: {}",
        if left_shift {
            "yes (matches paper)"
        } else {
            "NO"
        }
    ));
    report.push(table);
    Ok(report)
}

/// Figs. 9 & 10 — the number of zeros/ones in random multiplicators and
/// multiplicands follows a binomial (the paper calls it normal)
/// distribution centred at width/2.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig9_10(ctx: &mut Context) -> Result<Report> {
    let count = ctx.scale().distribution_patterns();
    let workload = ctx.uniform_workload(16, count);
    let mut report = Report::new(
        "fig9-10",
        format!("zero/one counts in {count} random 16-bit operands"),
    );
    let mut table = Table::new(
        "pattern counts by number of zeros",
        &["zeros", "multiplicator (fig9)", "multiplicand (fig10)"],
    );
    let mut hist_a = [0u64; 17];
    let mut hist_b = [0u64; 17];
    for &(a, b) in workload.pairs() {
        hist_a[count_zeros(a, 16) as usize] += 1;
        hist_b[count_zeros(b, 16) as usize] += 1;
    }
    for z in 0..=16 {
        table.row(&[z.to_string(), hist_b[z].to_string(), hist_a[z].to_string()]);
    }
    table.note("binomial(16, ½): mode at 8 zeros");
    report.push(table);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use crate::Scale;

    use super::*;

    #[test]
    fn fig9_10_histogram_sums_to_pattern_count() {
        let mut ctx = Context::new(Scale::Quick);
        let r = fig9_10(&mut ctx).unwrap();
        let t = &r.tables[0];
        let total: u64 = (0..t.row_count())
            .map(|i| t.cell(i, 1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total as usize, Scale::Quick.distribution_patterns());
    }
}
