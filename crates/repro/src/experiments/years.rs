//! Figs. 26/27 — latency, power, and EDP over a seven-year horizon.

use agemul::{area_report, energy_report, run_engine, Architecture, EnergyInputs, EngineConfig};
use agemul_circuits::MultiplierKind;
use agemul_power::PowerModel;

use crate::{Context, Report, Result, Table};

/// One design's trajectory across the years.
struct Series {
    name: &'static str,
    latency_ns: Vec<f64>,
    power_uw: Vec<f64>,
    edp: Vec<f64>,
    errors: u64,
}

fn seven_year_study(
    ctx: &mut Context,
    width: usize,
    cycle_ns: f64,
    skip: u32,
    id: &str,
) -> Result<Report> {
    let power_model = PowerModel::ptm_32nm_hk();
    let count = ctx.scale().year_patterns(width);
    let years: Vec<f64> = (0..=7).map(f64::from).collect();

    let mut series: Vec<Series> = Vec::new();

    // Fixed-latency designs: latency is the aged critical path.
    for (name, kind) in [
        ("AM", MultiplierKind::Array),
        ("FLCB", MultiplierKind::ColumnBypass),
        ("FLRB", MultiplierKind::RowBypass),
    ] {
        let design = ctx.design(kind, width)?;
        let stats = ctx.stats(kind, width)?;
        let area = area_report(&design, Architecture::FixedLatency, skip)?;
        let mut s = Series {
            name,
            latency_ns: Vec::new(),
            power_uw: Vec::new(),
            edp: Vec::new(),
            errors: 0,
        };
        for &y in &years {
            let latency = ctx.critical(kind, width, y)?;
            let dvth = ctx.bti().delta_vth_v(y, 0.5);
            let e = energy_report(
                &design,
                EnergyInputs {
                    power: &power_model,
                    stats: &stats,
                    area: &area,
                    avg_cycles_per_op: 1.0,
                    avg_latency_ns: latency,
                    delta_vth_v: dvth,
                },
            );
            s.latency_ns.push(latency);
            s.power_uw.push(e.average_power_uw(latency));
            s.edp.push(e.edp_fj_ns(latency));
        }
        series.push(s);
    }

    // Adaptive variable-latency designs at the fixed cycle period.
    for (name, kind) in [
        ("A-VLCB", MultiplierKind::ColumnBypass),
        ("A-VLRB", MultiplierKind::RowBypass),
    ] {
        let design = ctx.design(kind, width)?;
        let stats = ctx.stats(kind, width)?;
        let area = area_report(&design, Architecture::AdaptiveVariableLatency, skip)?;
        let mut s = Series {
            name,
            latency_ns: Vec::new(),
            power_uw: Vec::new(),
            edp: Vec::new(),
            errors: 0,
        };
        for &y in &years {
            let profile = ctx.profile(kind, width, y, count)?;
            let metrics = run_engine(&profile, &EngineConfig::adaptive(cycle_ns, skip));
            s.errors += metrics.errors;
            let latency = metrics.avg_latency_ns();
            let dvth = ctx.bti().delta_vth_v(y, 0.5);
            let e = energy_report(
                &design,
                EnergyInputs {
                    power: &power_model,
                    stats: &stats,
                    area: &area,
                    avg_cycles_per_op: metrics.avg_cycles(),
                    avg_latency_ns: latency,
                    delta_vth_v: dvth,
                },
            );
            s.latency_ns.push(latency);
            s.power_uw.push(e.average_power_uw(latency));
            s.edp.push(e.edp_fj_ns(latency));
        }
        series.push(s);
    }

    let mut report = Report::new(
        id,
        format!(
            "{width}×{width}, cycle {cycle_ns} ns, Skip-{skip}, years 0–7 ({count} patterns/yr)"
        ),
    );
    let am0_latency = series[0].latency_ns[0];
    let am0_power = series[0].power_uw[0];
    let am0_edp = series[0].edp[0];

    let headers: Vec<&str> = std::iter::once("year")
        .chain(series.iter().map(|s| s.name))
        .collect();
    let build = |title: &str, pick: &dyn Fn(&Series, usize) -> f64, base: f64| -> Table {
        let mut t = Table::new(title, &headers);
        for (yi, y) in years.iter().enumerate() {
            let mut row: Vec<String> = vec![format!("{y:.0}")];
            for s in &series {
                row.push(format!("{:.3}", pick(s, yi) / base));
            }
            t.row(&row);
        }
        t
    };

    let mut latency = build(
        "normalized average latency (AM year 0 = 1)",
        &|s, i| s.latency_ns[i],
        am0_latency,
    );
    for s in &series {
        let growth = s.latency_ns[7] / s.latency_ns[0] - 1.0;
        latency.note(format!(
            "{} latency growth over 7y: {:+.2}%",
            s.name,
            100.0 * growth
        ));
    }
    let vl_errors: u64 = series[3].errors + series[4].errors;
    latency.note(format!(
        "razor errors across all A-VL runs: {vl_errors} (paper: none at this period)"
    ));
    report.push(latency);

    report.push(build(
        "normalized average power (AM year 0 = 1)",
        &|s, i| s.power_uw[i],
        am0_power,
    ));
    let mut edp = build("normalized EDP (AM year 0 = 1)", &|s, i| s.edp[i], am0_edp);
    let avg = |s: &Series| s.edp.iter().sum::<f64>() / s.edp.len() as f64;
    let am_avg = avg(&series[0]);
    edp.note(format!(
        "average EDP vs AM: A-VLCB {:+.1}%, A-VLRB {:+.1}%",
        100.0 * (avg(&series[3]) / am_avg - 1.0),
        100.0 * (avg(&series[4]) / am_avg - 1.0)
    ));
    report.push(edp);
    Ok(report)
}

/// Fig. 26 — 16×16 normalized latency/power/EDP across seven years at a
/// 1.2 ns cycle with Skip-7 (the paper's setting, chosen so no timing
/// violations occur).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig26(ctx: &mut Context) -> Result<Report> {
    seven_year_study(ctx, 16, 1.2, 7, "fig26")
}

/// Fig. 27 — 32×32 normalized latency/power/EDP across seven years at a
/// 2.3 ns cycle with Skip-15 (the paper's §IV-E says "skip number is 7",
/// which we read as a typo for the 32-bit skip used everywhere else).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig27(ctx: &mut Context) -> Result<Report> {
    seven_year_study(ctx, 32, 2.3, 15, "fig27")
}
