//! `sweep` — the 7-year × multi-period aging sweep as a *driver* study.
//!
//! Every other experiment asks "what does the paper's figure look like";
//! this one asks "how fast can we regenerate the whole aged design space".
//! The sweep walks the full configuration grid — every (year, cycle
//! period) pair on the 32×32 column- and row-bypassing multipliers — and
//! needs a timing profile per configuration before it can replay the
//! variable-latency engine.
//!
//! Two drivers are compared (selected by `repro --incremental` /
//! [`Context::set_incremental`]):
//!
//! * **from-scratch** (default): the cache-less grid driver every sweep
//!   harness starts as — each configuration re-profiles the workload in
//!   full, because without delta awareness the driver cannot know which
//!   configuration parameters the profile actually depends on.
//! * **incremental**: one [`AgingSweep`] per design. Configurations whose
//!   quantized factor vector matches the previous call are answered from
//!   the held profile (`identical_years`); a year boundary diffs the
//!   quantized per-gate factors and re-simulates only patterns whose
//!   recorded sensitized cone touched a changed gate (`cone_resims`, plus
//!   `cascade_resims` while the settled trajectory is out of sync).
//!
//! Both drivers quantize factors onto the shared
//! [`AGING_FACTOR_GRID`](agemul::AGING_FACTOR_GRID), so their latency
//! tables are byte-identical — the incremental run re-derives its final
//! year from scratch and fails the experiment on any divergence, and the
//! sweep counters are asserted (`full profiles == 1` per design,
//! `cone resims > 0`) so the verify gate catches a silently degraded
//! incremental path.

use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use agemul::{quantize_factors, run_engine, AgingSweep, EngineConfig, PatternProfile};
use agemul_circuits::MultiplierKind;

use super::{f3, period_grid, skips};
use crate::{Context, Report, Result, Table};

fn sweep_study(
    ctx: &mut Context,
    width: usize,
    skip: u32,
    periods: &[f64],
    id: &str,
) -> Result<Report> {
    let count = ctx.scale().year_patterns(width);
    let years: Vec<f64> = (0..=7).map(f64::from).collect();
    let incremental = ctx.incremental();
    let configs = years.len() * periods.len();

    let mut report = Report::new(
        id,
        format!(
            "{width}×{width}, Skip-{skip}, years 0–7 × {} periods ({count} patterns/yr), \
             {} driver, {}-lane batches",
            periods.len(),
            if incremental {
                "incremental"
            } else {
                "from-scratch"
            },
            ctx.lanes().lanes(),
        ),
    );

    for (name, kind) in [
        ("A-VLCB", MultiplierKind::ColumnBypass),
        ("A-VLRB", MultiplierKind::RowBypass),
    ] {
        let design = ctx.design(kind, width)?;
        let workload = ctx.uniform_workload(width, count);
        let pairs = workload.pairs();

        // Factor vectors per year, outside the profiling clock: the BTI
        // pipeline (workload statistics + aging model) is shared by both
        // drivers and is not what this experiment measures.
        let mut factors: Vec<Option<Rc<Vec<f64>>>> = Vec::with_capacity(years.len());
        for &y in &years {
            factors.push(if y > 0.0 {
                Some(ctx.factors(kind, width, y)?)
            } else {
                None
            });
        }
        // The from-scratch driver profiles under pre-quantized factors so
        // both drivers sit on the same delay grid (and thus agree exactly).
        let quant: Vec<Option<Vec<f64>>> = factors
            .iter()
            .map(|f| f.as_ref().map(|v| quantize_factors(v)))
            .collect();

        let mut sweep = if incremental {
            Some(AgingSweep::with_lanes(&design, pairs, ctx.lanes())?)
        } else {
            None
        };

        let mut rows: Vec<Vec<String>> = periods.iter().map(|p| vec![f3(*p)]).collect();
        let mut last_profile: Option<Arc<PatternProfile>> = None;
        let mut profiling = 0.0_f64;
        let mut replaying = 0.0_f64;

        // The grid walk is year-major, but the driver is still asked for a
        // profile once per configuration — the incremental driver's
        // factor-identity check is what collapses the period axis, not the
        // loop structure.
        for (yi, _) in years.iter().enumerate() {
            for (pi, &period) in periods.iter().enumerate() {
                let t0 = Instant::now();
                let profile: Arc<PatternProfile> = match &mut sweep {
                    Some(s) => s.profile_year(factors[yi].as_ref().map(|f| f.as_slice()))?,
                    None => Arc::new(design.profile_supervised(
                        pairs,
                        quant[yi].as_deref(),
                        ctx.engine(),
                        ctx.cancel(),
                    )?),
                };
                profiling += t0.elapsed().as_secs_f64();

                let t1 = Instant::now();
                let metrics = run_engine(&profile, &EngineConfig::adaptive(period, skip));
                replaying += t1.elapsed().as_secs_f64();
                rows[pi].push(f3(metrics.avg_latency_ns()));
                last_profile = Some(profile);
            }
        }

        let year_headers: Vec<String> = std::iter::once("period_ns".to_string())
            .chain(years.iter().map(|y| format!("year {y:.0}")))
            .collect();
        let headers: Vec<&str> = year_headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("{name} average latency ns by period and year"),
            &headers,
        );
        for row in &rows {
            t.row(row);
        }
        t.note(format!(
            "{configs} configurations profiled in {profiling:.1}s, replayed in {replaying:.1}s"
        ));

        if let Some(s) = &sweep {
            let c = s.counters();
            t.note(format!(
                "sweep counters: full profiles {}, identical-year reuses {}, cone resims {}, \
                 cascade resims {}, patterns reused {}",
                c.full_profiles,
                c.identical_years,
                c.cone_resims,
                c.cascade_resims,
                c.patterns_reused
            ));
            // Smoke contract for the verify gate: the incremental driver
            // must actually be incremental.
            if c.full_profiles != 1 {
                return Err(format!(
                    "{name}: incremental driver recomputed {} full profiles (want 1)",
                    c.full_profiles
                )
                .into());
            }
            if c.cone_resims == 0 {
                return Err(
                    format!("{name}: no dirty-cone re-simulations across 7 aging steps").into(),
                );
            }
            let min_reuses = ((periods.len() - 1) * years.len()) as u64;
            if c.identical_years < min_reuses {
                return Err(format!(
                    "{name}: only {} identical-year reuses (want >= {min_reuses})",
                    c.identical_years
                )
                .into());
            }

            // End-to-end exactness anchor: the final incremental year must
            // match a from-scratch profile of the same quantized factors.
            let last = last_profile.expect("grid is non-empty");
            let reference = design.profile_supervised(
                pairs,
                quant[years.len() - 1].as_deref(),
                ctx.engine(),
                ctx.cancel(),
            )?;
            if reference.records() != last.records()
                || reference.avg_gate_toggles().to_bits() != last.avg_gate_toggles().to_bits()
            {
                return Err(format!(
                    "{name}: incremental year 7 diverged from from-scratch profile"
                )
                .into());
            }
            t.note("year-7 profile verified byte-identical to a from-scratch run".to_string());
        }

        report.push(t);
    }
    Ok(report)
}

/// `sweep` — 7-year × 17-period profiling-driver study on the 32×32
/// column- and row-bypassing multipliers (Skip-15, the paper's 32-bit
/// setting). See the module docs for the from-scratch vs incremental
/// driver contract.
///
/// # Errors
///
/// Propagates simulation failures; in incremental mode, also fails if the
/// [`AgingSweep`] counters show the driver was not actually incremental or
/// if its final year diverges from a from-scratch profile.
pub fn sweep(ctx: &mut Context) -> Result<Report> {
    sweep_study(ctx, 32, skips(32)[0], &period_grid(32), "sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use agemul::LaneWidth;

    /// The two drivers must produce byte-identical latency tables — the
    /// incremental path is an optimization, never an approximation.
    #[test]
    fn incremental_and_baseline_drivers_agree() {
        let periods = [0.5, 0.8, 1.1];

        let mut base_ctx = Context::new(Scale::Quick);
        let base = sweep_study(&mut base_ctx, 8, 3, &periods, "sweep-test").unwrap();

        let mut inc_ctx = Context::new(Scale::Quick);
        inc_ctx.set_incremental(true);
        inc_ctx.set_lanes(LaneWidth::W256);
        let inc = sweep_study(&mut inc_ctx, 8, 3, &periods, "sweep-test").unwrap();

        assert_eq!(base.tables.len(), inc.tables.len());
        for (tb, ti) in base.tables.iter().zip(&inc.tables) {
            assert_eq!(tb.row_count(), ti.row_count());
            for r in 0..tb.row_count() {
                for c in 0..=8 {
                    assert_eq!(tb.cell(r, c), ti.cell(r, c), "row {r} col {c}");
                }
            }
        }
    }
}
