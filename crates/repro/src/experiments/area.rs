//! Fig. 25 — area comparison in transistors.

use agemul::{area_report, Architecture};
use agemul_circuits::MultiplierKind;

use super::skips;
use crate::{Context, Report, Result, Table};

/// Fig. 25 — transistor counts of AM, FLCB, A-VLCB, FLRB, and A-VLRB at
/// 16×16 and 32×32, normalized to the AM. The paper reports A-VLCB/A-VLRB
/// overheads of 22.9 %/23.5 % over FLCB/FLRB at 16×16 shrinking to
/// 12.3 %/5.7 % at 32×32 (AHL + Razor amortize in bigger arrays).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig25(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new("fig25", "area in transistors, normalized to AM");
    for width in [16usize, 32] {
        let skip = skips(width)[0];
        let am = ctx.design(MultiplierKind::Array, width)?;
        let cb = ctx.design(MultiplierKind::ColumnBypass, width)?;
        let rb = ctx.design(MultiplierKind::RowBypass, width)?;

        let am_fl = area_report(&am, Architecture::FixedLatency, skip)?;
        let cb_fl = area_report(&cb, Architecture::FixedLatency, skip)?;
        let cb_avl = area_report(&cb, Architecture::AdaptiveVariableLatency, skip)?;
        let rb_fl = area_report(&rb, Architecture::FixedLatency, skip)?;
        let rb_avl = area_report(&rb, Architecture::AdaptiveVariableLatency, skip)?;

        let base = am_fl.total_transistors() as f64;
        let mut table = Table::new(
            format!("{width}×{width} (Skip-{skip})"),
            &["design", "transistors", "vs AM", "overhead vs FL"],
        );
        let rows: [(&str, &agemul::AreaReport, Option<&agemul::AreaReport>); 5] = [
            ("AM", &am_fl, None),
            ("FLCB", &cb_fl, None),
            ("A-VLCB", &cb_avl, Some(&cb_fl)),
            ("FLRB", &rb_fl, None),
            ("A-VLRB", &rb_avl, Some(&rb_fl)),
        ];
        for (name, r, fl) in rows {
            let total = r.total_transistors();
            let overhead = fl
                .map(|f| {
                    format!(
                        "{:+.1}%",
                        100.0 * (total as f64 / f.total_transistors() as f64 - 1.0)
                    )
                })
                .unwrap_or_else(|| "—".to_string());
            table.row(&[
                name.to_string(),
                total.to_string(),
                format!("{:.3}×", total as f64 / base),
                overhead,
            ]);
        }
        table.note("paper overheads: 16×16 A-VLCB +22.9%, A-VLRB +23.5%; 32×32 +12.3%, +5.7%");
        report.push(table);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use crate::Scale;

    use super::*;

    #[test]
    fn overhead_shrinks_at_32_bits() {
        let mut ctx = Context::new(Scale::Quick);
        let r = fig25(&mut ctx).unwrap();
        let parse = |t: &crate::Table, row: usize| -> f64 {
            t.cell(row, 3)
                .unwrap()
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        // Row 2 = A-VLCB overhead; table 0 = 16×16, table 1 = 32×32.
        let o16 = parse(&r.tables[0], 2);
        let o32 = parse(&r.tables[1], 2);
        assert!(o32 < o16, "16-bit {o16}% vs 32-bit {o32}%");
    }
}
