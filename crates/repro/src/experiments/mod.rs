//! One function per paper table/figure.
//!
//! | id | function | paper artifact |
//! |----|----------|----------------|
//! | `fig5` | [`fig5`] | path-delay distribution, 16×16 AM/CB/RB |
//! | `fig6` | [`fig6`] | CB delay distribution vs zeros in multiplicand |
//! | `fig7` | [`fig7`] | critical-path growth over 7 years |
//! | `fig9-10` | [`fig9_10`] | zero/one count distributions |
//! | `table1` | [`table1`] | one-cycle ratios, 16×16 |
//! | `table2` | [`table2`] | one-cycle ratios, 32×32 |
//! | `fig13` | [`fig13`] | latency vs period, 16×16, per skip |
//! | `fig14` | [`fig14`] | latency vs period, 32×32, per skip |
//! | `fig15` | [`fig15`] | latency vs period across skips, 16×16 |
//! | `fig16` | [`fig16`] | error counts, 16×16 |
//! | `fig17` | [`fig17`] | latency across skips, 32×32 |
//! | `fig18` | [`fig18`] | error counts, 32×32 |
//! | `fig19-22` | [`fig19_22`] | T-VL vs A-VL error counts, aged |
//! | `fig23` | [`fig23`] | FL/T-VL/A-VL latency, aged, 16×16 |
//! | `fig24` | [`fig24`] | FL/T-VL/A-VL latency, aged, 32×32 |
//! | `fig25` | [`fig25`] | area in transistors |
//! | `fig26` | [`fig26`] | latency/power/EDP over 7 years, 16×16 |
//! | `fig27` | [`fig27`] | latency/power/EDP over 7 years, 32×32 |
//! | `sweep` | [`sweep`] | 7-year × multi-period profiling-driver study, 32×32 |
//! | `mc` | [`mc`] | Monte Carlo yield vs lifetime over process corners, 16×16 |
//! | `fleet` | [`fleet`] | fleet quorum-loss lifetime by routing policy, 16×16 |
//! | `chaos` | [`chaos`] | deterministic fault-injection soak over the IO seams |

mod aged;
mod aging_trend;
mod area;
mod chaos;
mod conformance;
mod dist;
mod extras;
mod fault_campaigns;
mod fleet;
mod montecarlo;
mod ratios;
mod sweep_aging;
mod sweeps;
mod years;

pub use aged::{fig19_22, fig23, fig24};
pub use aging_trend::fig7;
pub use area::fig25;
pub use chaos::chaos;
pub use conformance::conformance;
pub use dist::{fig5, fig6, fig9_10};
pub use extras::{ablations, extensions};
pub use fault_campaigns::faults;
pub use fleet::fleet;
pub use montecarlo::mc;
pub use ratios::{table1, table2};
pub use sweep_aging::sweep;
pub use sweeps::{fig13, fig14, fig15, fig16, fig17, fig18};
pub use years::{fig26, fig27};

use crate::{Context, Report, Result};

/// All experiment ids: the paper's artifacts in paper order, then the
/// repository's own ablation and extension studies.
pub const ALL_IDS: [&str; 26] = [
    "fig5",
    "fig6",
    "fig7",
    "fig9-10",
    "table1",
    "table2",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19-22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "ablations",
    "extensions",
    "faults",
    "conformance",
    "sweep",
    "mc",
    "fleet",
    "chaos",
];

/// Runs an experiment by id (see [`ALL_IDS`]).
///
/// # Errors
///
/// Returns an error for unknown ids or failed simulations.
pub fn run_by_id(ctx: &mut Context, id: &str) -> Result<Report> {
    match id {
        "fig5" => fig5(ctx),
        "fig6" => fig6(ctx),
        "fig7" => fig7(ctx),
        "fig9-10" | "fig9" | "fig10" => fig9_10(ctx),
        "table1" => table1(ctx),
        "table2" => table2(ctx),
        "fig13" => fig13(ctx),
        "fig14" => fig14(ctx),
        "fig15" => fig15(ctx),
        "fig16" => fig16(ctx),
        "fig17" => fig17(ctx),
        "fig18" => fig18(ctx),
        "fig19-22" | "fig19" | "fig20" | "fig21" | "fig22" => fig19_22(ctx),
        "fig23" => fig23(ctx),
        "fig24" => fig24(ctx),
        "fig25" => fig25(ctx),
        "fig26" => fig26(ctx),
        "fig27" => fig27(ctx),
        "ablations" => ablations(ctx),
        "extensions" => extensions(ctx),
        "faults" => faults(ctx),
        "conformance" => conformance(ctx),
        "sweep" => sweep(ctx),
        "mc" => mc(ctx),
        "fleet" => fleet(ctx),
        "chaos" => chaos(ctx),
        other => Err(format!("unknown experiment id: {other}").into()),
    }
}

/// The paper's skip-number scenarios per operand width.
pub(crate) fn skips(width: usize) -> [u32; 3] {
    if width <= 16 {
        [7, 8, 9]
    } else {
        [15, 16, 17]
    }
}

/// Cycle-period grids for the sweep figures, nanoseconds.
pub(crate) fn period_grid(width: usize) -> Vec<f64> {
    if width <= 16 {
        // 0.60 .. 1.30 in 0.05 steps.
        (0..=14).map(|i| 0.60 + 0.05 * i as f64).collect()
    } else {
        // 1.00 .. 2.60 in 0.10 steps.
        (0..=16).map(|i| 1.00 + 0.10 * i as f64).collect()
    }
}

/// Percentile (0..=100) of a pre-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Formats a float with 3 decimals (the table cell convention).
pub(crate) fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with 2 decimals.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_ascending() {
        for width in [16, 32] {
            let g = period_grid(width);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            assert!(g.len() > 10);
        }
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn skip_scenarios_match_paper() {
        assert_eq!(skips(16), [7, 8, 9]);
        assert_eq!(skips(32), [15, 16, 17]);
    }
}
