//! Beyond the paper: design-choice ablations and extension architectures.

use agemul::{run_engine, AhlConfig, EngineConfig, MultiplierDesign, PatternSet, RazorConfig};
use agemul_circuits::MultiplierKind;

use super::{f3, pct, period_grid, skips};
use crate::{Context, Report, Result, Table};

/// Design-choice ablations (`DESIGN.md` §"Design choices to ablate"):
/// skip number, aging-indicator threshold and stickiness, Razor penalty
/// and detection window, and the static-vs-observed timing margin.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ablations(ctx: &mut Context) -> Result<Report> {
    let width = 16usize;
    let count = ctx.scale().latency_patterns(width);
    let mut report = Report::new("ablations", format!("design ablations, {width}×{width}"));

    let fresh = ctx.profile(MultiplierKind::ColumnBypass, width, 0.0, count)?;
    let aged = ctx.profile(MultiplierKind::ColumnBypass, width, 7.0, count)?;

    // 1. Skip number at a fixed aggressive period.
    let mut skip_table = Table::new(
        "skip threshold (A-VLCB, period 0.95 ns, year 0)",
        &["skip", "one-cycle", "errors/10k", "avg latency (ns)"],
    );
    for skip in 5..=11u32 {
        let m = run_engine(&fresh, &EngineConfig::adaptive(0.95, skip));
        skip_table.row(&[
            format!("Skip-{skip}"),
            pct(m.one_cycle_ratio()),
            format!("{:.0}", m.errors_per_10k_cycles()),
            f3(m.avg_latency_ns()),
        ]);
    }
    skip_table.note("the paper's Skip-7/8/9 window brackets the latency minimum");
    report.push(skip_table);

    // 2. Aging-indicator threshold and stickiness on the aged circuit.
    let mut ahl_table = Table::new(
        "aging indicator (A-VLCB, period 1.00 ns, 7-year aged)",
        &["config", "errors/10k", "avg latency (ns)", "aged mode"],
    );
    let configs: [(&str, AhlConfig); 5] = [
        (
            "threshold 5%",
            AhlConfig {
                error_threshold: 5,
                ..AhlConfig::paper()
            },
        ),
        ("threshold 10% (paper)", AhlConfig::paper()),
        (
            "threshold 20%",
            AhlConfig {
                error_threshold: 20,
                ..AhlConfig::paper()
            },
        ),
        (
            "threshold 40%",
            AhlConfig {
                error_threshold: 40,
                ..AhlConfig::paper()
            },
        ),
        (
            "10%, non-latching",
            AhlConfig {
                sticky: false,
                ..AhlConfig::paper()
            },
        ),
    ];
    for (label, ahl) in configs {
        let cfg = EngineConfig {
            ahl,
            ..EngineConfig::adaptive(1.00, 7)
        };
        let m = run_engine(&aged, &cfg);
        ahl_table.row(&[
            label.to_string(),
            format!("{:.0}", m.errors_per_10k_cycles()),
            f3(m.avg_latency_ns()),
            if m.aged_mode_entered { "yes" } else { "no" }.to_string(),
        ]);
    }
    ahl_table.note("a lazier threshold tolerates more re-execution; non-latching oscillates");
    report.push(ahl_table);

    // 3. Razor re-execution penalty sensitivity.
    let mut razor_table = Table::new(
        "razor penalty & window (A-VLCB, period 0.85 ns, year 0)",
        &["config", "errors/10k", "undetected", "avg latency (ns)"],
    );
    for penalty in [1u32, 2, 3, 5] {
        let cfg = EngineConfig {
            error_penalty_cycles: penalty,
            ..EngineConfig::adaptive(0.85, 7)
        };
        let m = run_engine(&fresh, &cfg);
        razor_table.row(&[
            format!(
                "penalty {penalty} cycles{}",
                if penalty == 3 { " (paper)" } else { "" }
            ),
            format!("{:.0}", m.errors_per_10k_cycles()),
            m.undetected.to_string(),
            f3(m.avg_latency_ns()),
        ]);
    }
    for window in [1.0f64, 0.5, 0.1] {
        let cfg = EngineConfig {
            razor: RazorConfig {
                window_factor: window,
            },
            ..EngineConfig::adaptive(0.70, 7)
        };
        let m = run_engine(&fresh, &cfg);
        razor_table.row(&[
            format!("window {window}× @0.70 ns"),
            format!("{:.0}", m.errors_per_10k_cycles()),
            m.undetected.to_string(),
            f3(m.avg_latency_ns()),
        ]);
    }
    razor_table.note("a shrunken shadow window trades detected errors for silent corruption");
    report.push(razor_table);

    // 4. Static sign-off bound vs worst observed sensitized delay.
    let mut timing_table = Table::new(
        "static sign-off vs observed dynamic worst case (year 0)",
        &["multiplier", "static (ns)", "observed max (ns)", "margin"],
    );
    for kind in MultiplierKind::PAPER {
        let stat = ctx.critical(kind, width, 0.0)?;
        let profile = ctx.profile(kind, width, 0.0, count)?;
        let dynamic = profile.max_delay_ns();
        timing_table.row(&[
            kind.label().to_string(),
            f3(stat),
            f3(dynamic),
            format!("{:+.1}%", 100.0 * (stat / dynamic - 1.0)),
        ]);
    }
    timing_table
        .note("clocking at the observed max instead of the bound risks unsensitized-path escapes");
    report.push(timing_table);

    Ok(report)
}

/// Extension architectures (Wallace tree, radix-4 Booth): how the paper's
/// variable-latency recipe fares on multipliers it was not designed for.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn extensions(ctx: &mut Context) -> Result<Report> {
    let width = 16usize;
    let count = ctx.scale().latency_patterns(width).min(5_000);
    let mut report = Report::new(
        "extensions",
        format!("Wallace/Booth extension study, {width}×{width} ({count} patterns)"),
    );
    let patterns = PatternSet::uniform(width, count, 0x0A6E_0001);

    let mut table = Table::new(
        "variable-latency fit by architecture",
        &[
            "kind",
            "gates",
            "critical (ns)",
            "avg delay (ns)",
            "delay/zeros corr",
            "best A-VL (ns)",
            "vs fixed",
        ],
    );
    for kind in MultiplierKind::ALL {
        let design = MultiplierDesign::new(kind, width)?;
        let critical = design.critical_delay_ns(None)?;
        let profile = design.profile(patterns.pairs(), None)?;

        // Pearson correlation between judged zero count and delay.
        let n = profile.len() as f64;
        let (mut sz, mut sd, mut szz, mut sdd, mut szd) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for r in profile.records() {
            let z = f64::from(r.zeros);
            sz += z;
            sd += r.delay_ns;
            szz += z * z;
            sdd += r.delay_ns * r.delay_ns;
            szd += z * r.delay_ns;
        }
        let cov = szd / n - (sz / n) * (sd / n);
        let var_z = szz / n - (sz / n) * (sz / n);
        let var_d = sdd / n - (sd / n) * (sd / n);
        let corr = if var_z > 0.0 && var_d > 0.0 {
            cov / (var_z * var_d).sqrt()
        } else {
            0.0
        };

        // Best adaptive deployment over the standard grid and skips.
        let mut best = f64::INFINITY;
        for period in period_grid(width) {
            for skip in skips(width) {
                let m = run_engine(&profile, &EngineConfig::adaptive(period, skip));
                best = best.min(m.avg_latency_ns());
            }
        }

        table.row(&[
            kind.label().to_string(),
            design.circuit().netlist().gate_count().to_string(),
            f3(critical),
            f3(profile.avg_delay_ns()),
            format!("{corr:+.2}"),
            f3(best),
            format!("{:+.1}%", 100.0 * (best / critical - 1.0)),
        ]);
    }
    table.note("bypassing multipliers: strong negative correlation → VL pays; Wallace/Booth: weak correlation and short critical paths → VL pays less, as expected");
    report.push(table);

    // Process variation (related work [19]): the same elastic machinery
    // that absorbs aging absorbs time-zero variation.
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, width)?;
    let mut var_table = Table::new(
        "process-variation tolerance (A-VLCB, Skip-7, period 0.95 ns)",
        &[
            "sigma",
            "static critical (ns)",
            "avg latency (ns)",
            "errors/10k",
        ],
    );
    for sigma in [0.0f64, 0.05, 0.10] {
        let factors =
            agemul_aging::VariationModel::new(sigma).factors(design.circuit().netlist(), 0x5EED);
        let crit = design.critical_delay_ns(Some(&factors))?;
        let profile = design.profile(patterns.pairs(), Some(&factors))?;
        let m = run_engine(&profile, &EngineConfig::adaptive(0.95, 7));
        var_table.row(&[
            format!("{:.0}%", 100.0 * sigma),
            f3(crit),
            f3(m.avg_latency_ns()),
            format!("{:.0}", m.errors_per_10k_cycles()),
        ]);
    }
    var_table.note(
        "a fixed-latency design must guard-band the grown critical path; \
         the adaptive design absorbs variation through Razor + AHL at a \
         small latency cost",
    );
    report.push(var_table);
    Ok(report)
}
