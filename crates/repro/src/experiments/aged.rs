//! Seven-year-aged comparisons: Figs. 19–24.

use agemul::{run_engine, EngineConfig};
use agemul_circuits::MultiplierKind;

use super::{f3, period_grid, skips};
use crate::{Context, Report, Result, Table};

const AGED_YEARS: f64 = 7.0;

/// Figs. 19–22 — Razor error counts of the traditional (single judging
/// block) vs adaptive (proposed) variable-latency multipliers on a
/// seven-year-aged circuit, per cycle period:
/// Fig. 19 = 16×16 CB, Fig. 20 = 32×32 CB, Fig. 21 = 16×16 RB,
/// Fig. 22 = 32×32 RB. The adaptive design's error count is bounded
/// because the aging indicator demotes borderline patterns to two cycles.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig19_22(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new(
        "fig19-22",
        format!("errors per 10k cycles, T-VL vs A-VL, {AGED_YEARS:.0}-year aged"),
    );
    let cases = [
        ("fig19", MultiplierKind::ColumnBypass, 16usize),
        ("fig20", MultiplierKind::ColumnBypass, 32),
        ("fig21", MultiplierKind::RowBypass, 16),
        ("fig22", MultiplierKind::RowBypass, 32),
    ];
    for (fig, kind, width) in cases {
        let count = ctx.scale().latency_patterns(width);
        let profile = ctx.profile(kind, width, AGED_YEARS, count)?;
        let skip = skips(width)[0];
        let mut table = Table::new(
            format!("{fig}: {width}×{width} {} (Skip-{skip})", kind.label()),
            &["period", "T-VL errors/10k", "A-VL errors/10k"],
        );
        let mut adaptive_never_worse = true;
        for period in period_grid(width) {
            let t = run_engine(&profile, &EngineConfig::traditional(period, skip));
            let a = run_engine(&profile, &EngineConfig::adaptive(period, skip));
            adaptive_never_worse &= a.errors_per_10k_cycles() <= t.errors_per_10k_cycles() + 1e-9;
            table.row(&[
                f3(period),
                format!("{:.0}", t.errors_per_10k_cycles()),
                format!("{:.0}", a.errors_per_10k_cycles()),
            ]);
        }
        table.note(format!(
            "adaptive ≤ traditional at every period: {}",
            if adaptive_never_worse {
                "yes (matches paper)"
            } else {
                "NO"
            }
        ));
        report.push(table);
    }
    Ok(report)
}

/// Figs. 23 (16×16) / 24 (32×32) — average latency of fixed-latency,
/// traditional variable-latency, and adaptive variable-latency multipliers
/// on the seven-year-aged circuit, one table per skip scenario.
fn aged_latency(ctx: &mut Context, width: usize, id: &str) -> Result<Report> {
    let count = ctx.scale().latency_patterns(width);
    let flcb = ctx.critical(MultiplierKind::ColumnBypass, width, AGED_YEARS)?;
    let flrb = ctx.critical(MultiplierKind::RowBypass, width, AGED_YEARS)?;
    let cb = ctx.profile(MultiplierKind::ColumnBypass, width, AGED_YEARS, count)?;
    let rb = ctx.profile(MultiplierKind::RowBypass, width, AGED_YEARS, count)?;

    let mut report = Report::new(
        id,
        format!("average latency, {AGED_YEARS:.0}-year aged, {width}×{width} ({count} patterns)"),
    );
    for skip in skips(width) {
        let mut table = Table::new(
            format!("Skip-{skip}: average latency (ns)"),
            &["period", "T-VLCB", "A-VLCB", "T-VLRB", "A-VLRB"],
        );
        let mut worse_points = 0usize;
        let mut worst_regression = 0.0f64;
        let mut best_gain = 0.0f64;
        for period in period_grid(width) {
            let tcb = run_engine(&cb, &EngineConfig::traditional(period, skip));
            let acb = run_engine(&cb, &EngineConfig::adaptive(period, skip));
            let trb = run_engine(&rb, &EngineConfig::traditional(period, skip));
            let arb = run_engine(&rb, &EngineConfig::adaptive(period, skip));
            for (t, a) in [(&tcb, &acb), (&trb, &arb)] {
                let delta = a.avg_latency_ns() / t.avg_latency_ns() - 1.0;
                if delta > 1e-9 {
                    worse_points += 1;
                    worst_regression = worst_regression.max(delta);
                } else {
                    best_gain = best_gain.max(-delta);
                }
            }
            table.row(&[
                f3(period),
                f3(tcb.avg_latency_ns()),
                f3(acb.avg_latency_ns()),
                f3(trb.avg_latency_ns()),
                f3(arb.avg_latency_ns()),
            ]);
        }
        table.note(format!(
            "aged fixed-latency constants: FLCB {} / FLRB {} ns",
            f3(flcb),
            f3(flrb)
        ));
        table.note(format!(
            "adaptive vs traditional: best gain {:.1}%, worse at {worse_points} point(s) \
             (max regression {:.1}%) — the paper reports equal-or-better; borderline \
             periods where the sticky indicator demotes safe patterns account for the rest",
            100.0 * best_gain,
            100.0 * worst_regression
        ));
        report.push(table);
    }
    Ok(report)
}

/// Fig. 23 — aged average latency, 16×16.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig23(ctx: &mut Context) -> Result<Report> {
    aged_latency(ctx, 16, "fig23")
}

/// Fig. 24 — aged average latency, 32×32.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig24(ctx: &mut Context) -> Result<Report> {
    aged_latency(ctx, 32, "fig24")
}
