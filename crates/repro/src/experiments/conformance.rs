//! Beyond the paper: the seeded conformance gate, wired into the repro
//! harness so `repro conformance` fails loudly when any two engines
//! disagree or a paper invariant breaks.

use agemul_circuits::MultiplierKind;
use agemul_conformance::{check_multiplier_conformance, run_gate};

use crate::{Context, Report, Result, Scale, Table};

/// Base seed of the committed gate run — fixed so the conformance
/// manifest replays the exact same coverage run-to-run (the integration
/// suite in `agemul-conformance` pins the same seed).
const GATE_SEED: u64 = 0xC04F_0421;

/// Seeded differential-oracle cases per scale.
fn gate_cases(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Standard => 500,
        Scale::Paper => 1_000,
    }
}

/// Workload pairs per architecture for the metamorphic-invariant sweep.
fn invariant_pairs(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 120,
        Scale::Standard => 240,
        Scale::Paper => 400,
    }
}

/// Cross-engine conformance: the seeded differential oracle (FuncSim /
/// BatchSim / EventSim / LevelSim, with and without fault overlays, traced
/// and untraced) plus the metamorphic invariants on the paper's multiplier
/// architectures (judging-block monotonicity, stress-delay monotonicity,
/// cycle accounting, cache coherence).
///
/// # Errors
///
/// Fails when any seeded case diverges between engines (the error carries
/// the minimized repro artifact) or any invariant is violated.
pub fn conformance(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new(
        "conformance",
        "cross-engine differential oracle + metamorphic invariants",
    );

    let cases = gate_cases(ctx.scale());
    let outcome = run_gate(GATE_SEED, cases)?;
    let mut oracle = Table::new(
        format!("seeded differential oracle (base seed {GATE_SEED:#010x})"),
        &["cases", "engines", "overlay axes", "divergent"],
    );
    oracle.row(&[
        outcome.cases.to_string(),
        "reference/func/batch/event/level".to_string(),
        "clean + fault, cold + detached trace".to_string(),
        outcome.divergent.len().to_string(),
    ]);
    oracle.note(
        "every case runs all four engines against an independent reference \
         interpreter, diffs settled values, femtosecond waveforms and toggle \
         counts; divergent cases are ddmin-shrunk to replayable JSON repros",
    );
    report.push(oracle);
    if !outcome.is_clean() {
        let first = &outcome.divergent[0];
        return Err(format!(
            "conformance gate: {} of {} cases diverged; first repro (seed {:#x}): {}",
            outcome.divergent.len(),
            outcome.cases,
            first.seed,
            first.artifact,
        )
        .into());
    }

    let pairs = invariant_pairs(ctx.scale());
    let mut invariants = Table::new(
        format!("metamorphic invariants ({pairs} pairs per architecture)"),
        &["arch", "width", "violations", "status"],
    );
    let mut broken = Vec::new();
    for kind in [
        MultiplierKind::Array,
        MultiplierKind::ColumnBypass,
        MultiplierKind::RowBypass,
    ] {
        let width = 8;
        let workload = ctx.uniform_workload(width, pairs);
        let violations = check_multiplier_conformance(kind, width, workload.pairs())?;
        invariants.row(&[
            kind.label().to_string(),
            format!("{width}x{width}"),
            violations.len().to_string(),
            if violations.is_empty() {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
        broken.extend(
            violations
                .into_iter()
                .map(|v| format!("{} {width}x{width}: {v}", kind.label())),
        );
    }
    invariants.note(
        "laws checked per architecture: stricter judging blocks only demote, \
         one-cycle ops fall monotonically with skip, cycles = one_cycle + \
         2*two_cycle + penalty*errors, event/level profiles identical, aged \
         delays dominate fresh, cache hit replays the miss verbatim",
    );
    report.push(invariants);
    if !broken.is_empty() {
        return Err(format!(
            "conformance invariants: {} violation(s); first: {}",
            broken.len(),
            broken[0]
        )
        .into());
    }

    Ok(report)
}
