//! `chaos` — the deterministic fault-injection soak as an experiment.
//!
//! Runs the `agemul-serve` chaos engine (seeded fault schedules over the
//! checkpoint, transport, and cache/single-flight seams, plus the
//! overload-shedding probe) at a scale-dependent schedule count and
//! renders one row per seam. The experiment *fails* on any invariant
//! violation — a corrupt checkpoint that loaded, a resume that was not
//! byte-identical, a cached injected error, a wedged server, or a shed
//! request without a typed sub-10 ms `overloaded` answer — so a
//! robustness regression breaks `repro chaos` (and `just chaos-smoke`)
//! loudly.
//!
//! Every schedule is a pure function of `(seed, site, invocation)`: the
//! base seed below replays the identical fault sequence on every run, so
//! the table's injected-fault counts are deterministic.

use std::time::Instant;

use agemul_serve::chaos::{run_soak, silence_chaos_panics};

use crate::{Context, Report, Result, Scale, Table};

/// Chaos soak base seed (the workspace seed family: `0x0A6E_0001`
/// uniform workloads, `0x0A6E_0005` fleet).
const CHAOS_SEED: u64 = 0x0A6E_C405;

fn schedule_count(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 24,
        Scale::Standard => 120,
        Scale::Paper => 400,
    }
}

/// `chaos` — seeded fault schedules across the three IO seams plus the
/// overload probe (see the module docs).
///
/// # Errors
///
/// Fails on any chaos invariant violation, listing every violated
/// invariant with the seam and schedule that produced it.
pub fn chaos(ctx: &mut Context) -> Result<Report> {
    silence_chaos_panics();
    let schedules = schedule_count(ctx.scale());
    let t0 = Instant::now();
    let reports = run_soak(schedules, CHAOS_SEED);
    let elapsed = t0.elapsed().as_secs_f64();

    let violations: Vec<String> = reports
        .iter()
        .flat_map(|r| r.violations.iter().map(|v| format!("[{}] {v}", r.seam)))
        .collect();
    if !violations.is_empty() {
        return Err(format!(
            "chaos: {} invariant violation(s): {}",
            violations.len(),
            violations.join("; ")
        )
        .into());
    }

    let mut report = Report::new(
        "chaos",
        format!(
            "deterministic chaos soak: {schedules} seeded fault schedules over checkpoint IO, \
             serve transport, and cache/single-flight, plus the overload-shedding probe"
        ),
    );
    let mut t = Table::new(
        "chaos soak by seam",
        &["seam", "schedules", "injected", "operations", "violations"],
    );
    for r in &reports {
        t.row(&[
            r.seam.to_string(),
            r.schedules.to_string(),
            r.injected.to_string(),
            r.operations.to_string(),
            r.violations.len().to_string(),
        ]);
    }
    t.note(format!(
        "base seed {CHAOS_SEED:#010x}; every fault decision is SplitMix64 over \
         (seed, site, invocation), so a failing schedule replays from its seed alone \
         (transport invocation *counts* ride live-socket read segmentation, so that \
         seam's injected total may wobble by a few; latencies are wall-clock)"
    ));
    for r in &reports {
        for note in &r.notes {
            t.note(format!("{}: {note}", r.seam));
        }
    }
    t.note(format!(
        "invariants: no corrupt checkpoint loads, resume byte-identical, errors never \
         cached, server never wedges, every shed request answered typed; evaluated in \
         {elapsed:.1}s"
    ));
    report.push(t);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak holds every invariant and renders one row per
    /// seam.
    #[test]
    fn quick_soak_holds_invariants() {
        let mut ctx = Context::new(Scale::Quick);
        let report = chaos(&mut ctx).unwrap();
        assert_eq!(report.tables.len(), 1);
        let t = &report.tables[0];
        assert_eq!(t.row_count(), 4, "one row per seam");
        for r in 0..t.row_count() {
            assert_eq!(t.cell(r, 4), Some("0"), "violations column must be zero");
        }
    }
}
