//! Tables I & II — one-cycle pattern ratios.

use agemul::count_zeros;

use super::{pct, skips};
use crate::{Context, Report, Result, Table};

fn ratio_table(ctx: &mut Context, width: usize) -> Result<Table> {
    let count = 10_000; // the paper's simulation count for these tables
    let workload = ctx.uniform_workload(width, count);
    let mut table = Table::new(
        format!("one-cycle pattern ratio, {width}×{width} ({count} patterns)"),
        &["scenario", "VLCB (zeros in md)", "VLRB (zeros in mr)"],
    );
    for skip in skips(width) {
        let cb = workload
            .pairs()
            .iter()
            .filter(|&&(a, _)| count_zeros(a, width) >= skip)
            .count() as f64
            / count as f64;
        let rb = workload
            .pairs()
            .iter()
            .filter(|&&(_, b)| count_zeros(b, width) >= skip)
            .count() as f64
            / count as f64;
        table.row(&[format!("Skip-{skip}"), pct(cb), pct(rb)]);
    }
    Ok(table)
}

/// Table I — one-cycle pattern ratios of the 16×16 variable-latency
/// bypassing multipliers for Skip-7/8/9.
///
/// Paper values: 73.58 / 53.78 / 33.22 % (VLCB) and 77.39 / 59.89 /
/// 40.20 % (VLRB) — binomial tails of the operand zero counts, so both
/// columns converge for large samples.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn table1(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new("table1", "one-cycle pattern ratio, 16×16");
    let mut t = ratio_table(ctx, 16)?;
    t.note("paper: Skip-7 73.58/77.39, Skip-8 53.78/59.89, Skip-9 33.22/40.20 (%)");
    t.note("binomial(16,½) tails: P(zeros ≥ 7/8/9) = 77.3/59.8/40.2 %");
    report.push(t);
    Ok(report)
}

/// Table II — one-cycle pattern ratios of the 32×32 variable-latency
/// bypassing multipliers for Skip-15/16/17.
///
/// Paper values: 66.46 / 52.68 / 38.18 % (VLCB) and 66.99 / 52.74 /
/// 38.42 % (VLRB).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn table2(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new("table2", "one-cycle pattern ratio, 32×32");
    let mut t = ratio_table(ctx, 32)?;
    t.note("paper: Skip-15 66.46/66.99, Skip-16 52.68/52.74, Skip-17 38.18/38.42 (%)");
    report.push(t);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use crate::Scale;

    use super::*;

    #[test]
    fn ratios_decrease_with_skip() {
        let mut ctx = Context::new(Scale::Quick);
        let r = table1(&mut ctx).unwrap();
        let t = &r.tables[0];
        let parse = |row: usize| -> f64 {
            t.cell(row, 1)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(parse(0) > parse(1));
        assert!(parse(1) > parse(2));
    }

    #[test]
    fn table1_matches_binomial_tail() {
        let mut ctx = Context::new(Scale::Quick);
        let r = table1(&mut ctx).unwrap();
        let skip7: f64 = r.tables[0]
            .cell(0, 1)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        // P(zeros ≥ 7) for Binomial(16, 0.5) ≈ 77.3 %; allow sampling slack.
        assert!((skip7 - 77.3).abs() < 2.5, "skip-7 ratio {skip7}");
    }
}
