//! Fig. 7 — circuit aging trend over seven years.

use agemul_circuits::MultiplierKind;

use super::f3;
use crate::{Context, Report, Result, Table};

/// Fig. 7 — critical-path delay of the 16×16 column- and row-bypassing
/// multipliers over a seven-year NBTI/PBTI horizon. The paper observes a
/// ≈13 % increase (the anchor our BTI model is calibrated to at the
/// reference gate; the circuit-level number emerges from per-gate stress).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig7(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new("fig7", "critical-path delay growth, 16×16, years 0–7");
    let mut table = Table::new(
        "critical path (ns) by year",
        &["year", "CB", "CB growth", "RB", "RB growth"],
    );
    let cb0 = ctx.critical(MultiplierKind::ColumnBypass, 16, 0.0)?;
    let rb0 = ctx.critical(MultiplierKind::RowBypass, 16, 0.0)?;
    let mut last_growth = (0.0, 0.0);
    for year in 0..=7 {
        let y = year as f64;
        let cb = ctx.critical(MultiplierKind::ColumnBypass, 16, y)?;
        let rb = ctx.critical(MultiplierKind::RowBypass, 16, y)?;
        last_growth = (cb / cb0 - 1.0, rb / rb0 - 1.0);
        table.row(&[
            year.to_string(),
            f3(cb),
            format!("{:+.2}%", 100.0 * (cb / cb0 - 1.0)),
            f3(rb),
            format!("{:+.2}%", 100.0 * (rb / rb0 - 1.0)),
        ]);
    }
    table.note(format!(
        "paper: ≈13% after 7 years; measured CB {:+.2}%, RB {:+.2}%",
        100.0 * last_growth.0,
        100.0 * last_growth.1
    ));
    report.push(table);
    Ok(report)
}
