//! Beyond the paper: gate-level fault-injection campaigns validating the
//! Razor/AHL resilience story.

use agemul::{EngineConfig, RazorConfig};
use agemul_circuits::MultiplierKind;
use agemul_faults::{Campaign, FaultClass, FaultSpec};

use super::{pct, skips};
use crate::{Context, Report, Result, Table};

/// Seed of the sampled fault lists — fixed so the committed tables are
/// reproducible run-to-run.
const CAMPAIGN_SEED: u64 = 0xFA17_0001;

/// The campaign's fixed clock period per width: mid-grid values the sweep
/// figures identify as competitive deployments (aggressive enough that
/// delay faults can matter, relaxed enough that the fault-free baseline is
/// clean or nearly so).
fn campaign_period(width: usize) -> f64 {
    if width <= 16 {
        0.95
    } else {
        1.90
    }
}

/// Fault-injection campaigns: stuck-at, transient bit-flip, and localized
/// delay faults on the CB/RB multipliers at 16×16 and 32×32, classified as
/// masked / detected-by-Razor / silently-corrupting, plus the detection
/// coverage surface over skip threshold × Razor window.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn faults(ctx: &mut Context) -> Result<Report> {
    let mut report = Report::new(
        "faults",
        "gate-level fault-injection campaigns (Razor/AHL resilience)",
    );

    let mut sweep = Table::new(
        "fault coverage vs skip threshold vs razor window",
        &[
            "arch",
            "skip",
            "window",
            "masked",
            "detected",
            "silent",
            "coverage",
            "avg detected overhead",
        ],
    );

    for width in [16usize, 32] {
        let count = ctx.scale().fault_patterns(width);
        let specimens = ctx.scale().fault_specimens();
        let period = campaign_period(width);
        for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
            let design = ctx.design(kind, width)?;
            let workload = ctx.uniform_workload(width, count);
            let mut specs =
                FaultSpec::sample(&design, workload.pairs().len(), specimens, CAMPAIGN_SEED);
            // Random single-gate hot spots mostly hide in timing slack, so
            // add targeted ones at escalating severities on the drivers of
            // frequently-toggling product bits — where BTI stress actually
            // concentrates and where added delay is observable.
            let netlist = design.circuit().netlist();
            let product = design.circuit().product().nets();
            for (i, bit) in [width / 2, width, 3 * width / 2, 2 * width - 2]
                .into_iter()
                .enumerate()
            {
                if let Some(gate) = netlist.driver_gate(product[bit]) {
                    specs.push(FaultSpec::Delay {
                        gate,
                        factor: 4.0 * (1 << i) as f64,
                    });
                }
            }
            let campaign = Campaign::prepare(&design, workload.pairs(), &specs)?;

            // Per-fault classification at the paper-flavoured config.
            let paper_cfg = EngineConfig::adaptive(period, skips(width)[0]);
            let paper = campaign.run(&paper_cfg);
            let mut t = Table::new(
                format!(
                    "fault classification ({} {width}x{width}, skip {}, period {period} ns, {count} ops)",
                    kind.label(),
                    paper_cfg.skip,
                ),
                &[
                    "fault",
                    "class",
                    "corrupted ops",
                    "excess errors",
                    "aged at op",
                    "latency overhead",
                ],
            );
            for o in &paper.outcomes {
                t.row(&[
                    o.label.clone(),
                    o.class.label().to_string(),
                    o.corrupted_ops.to_string(),
                    o.excess_errors.to_string(),
                    o.aged_at_op.map_or_else(|| "-".into(), |x| x.to_string()),
                    format!("{:+.2}%", o.latency_overhead_pct),
                ]);
            }
            t.note(
                "logic faults (sa0/sa1/flip) produce stable-but-wrong values Razor cannot \
                 see: they are silent when they propagate, masked otherwise; delay faults \
                 surface as Razor errors the AHL then absorbs",
            );
            report.push(t);

            // Coverage surface: skip × Razor window on the same evidence.
            for skip in skips(width) {
                for window in [1.0f64, 0.5, 0.25] {
                    let cfg = EngineConfig {
                        razor: RazorConfig {
                            window_factor: window,
                        },
                        ..EngineConfig::adaptive(period, skip)
                    };
                    let r = campaign.run(&cfg);
                    let detected: Vec<f64> = r
                        .outcomes
                        .iter()
                        .filter(|o| o.class == FaultClass::Detected)
                        .map(|o| o.latency_overhead_pct)
                        .collect();
                    let overhead = if detected.is_empty() {
                        "-".to_string()
                    } else {
                        format!(
                            "{:+.2}%",
                            detected.iter().sum::<f64>() / detected.len() as f64
                        )
                    };
                    sweep.row(&[
                        format!("{} {width}x{width}", kind.label()),
                        format!("Skip-{skip}"),
                        format!("{window}x"),
                        r.masked().to_string(),
                        r.detected().to_string(),
                        r.silent().to_string(),
                        pct(r.coverage()),
                        overhead,
                    ]);
                }
            }

            debug_assert_eq!(paper.operations, count as u64);
        }
    }
    sweep.note(
        "coverage = detected / (detected + silent) over manifested faults; \
         shrinking the Razor window converts detected delay faults into silent \
         ones, while the skip threshold only shifts how much error pressure \
         the AHL sees before adapting",
    );
    report.push(sweep);
    Ok(report)
}
