//! `repro` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! repro [--quick | --paper] [--csv <dir>] [--list]
//!       [--lanes <64|256|512>] [--incremental]
//!       [--resume <ckpt>] [--deadline-ms <N>] [--max-retries <N>]
//!       <experiment>... | all
//! ```
//!
//! A failing experiment no longer aborts the batch: every requested
//! experiment runs, a per-experiment pass/fail summary is printed at the
//! end, and the exit code is nonzero if *any* failed. With `--resume` (or
//! a deadline/retry budget) the batch runs under the `agemul-harness`
//! supervisor: completed experiments are checkpointed to the given path —
//! a killed `repro all` picks up where it died — panicking experiments are
//! quarantined instead of taking the batch down, and deadline overruns
//! degrade to the event-driven reference engine before giving up.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use agemul::LaneWidth;
use agemul_conformance::Json;
use agemul_harness::{
    is_cancellation, Attempt, CaseError, CaseStatus, Resume, Supervisor, SupervisorConfig,
};
use agemul_repro::{experiments, Context, Report, Scale};

fn usage() {
    eprintln!(
        "usage: repro [--quick | --paper] [--csv <dir>] [--list] \
         [--lanes <64|256|512>] [--incremental] \
         [--resume <ckpt>] [--deadline-ms <N>] [--max-retries <N>] <experiment>... | all"
    );
    eprintln!("experiments: {}", experiments::ALL_IDS.join(", "));
}

/// Prints one experiment's report (and optional CSV dump); returns `false`
/// if the experiment failed or a CSV could not be written.
fn emit(
    id: &str,
    outcome: agemul_repro::Result<Report>,
    secs: f64,
    csv_dir: Option<&Path>,
) -> bool {
    match outcome {
        Ok(report) => {
            println!("{report}");
            println!("[{id} completed in {secs:.1}s]\n");
            if let Some(dir) = csv_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return false;
                }
                for table in &report.tables {
                    let path = dir.join(format!("{}__{}.csv", report.id, table.slug()));
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return false;
                    }
                }
            }
            true
        }
        Err(e) => {
            eprintln!("experiment {id} failed: {e}");
            false
        }
    }
}

/// One line per experiment, then the aggregate verdict. Returns the exit
/// code: success only if every experiment passed.
fn summarize(results: &[(String, bool, f64)]) -> ExitCode {
    let failed: Vec<&str> = results
        .iter()
        .filter(|(_, ok, _)| !ok)
        .map(|(id, _, _)| id.as_str())
        .collect();
    eprintln!("summary:");
    for (id, ok, secs) in results {
        eprintln!(
            "  {id:<20} {} ({secs:.1}s)",
            if *ok { "ok" } else { "FAILED" }
        );
    }
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{}/{} experiment(s) failed: {}",
            failed.len(),
            results.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// Serializes a finished report (rendered text + CSV tables) as the
/// supervised case's checkpoint value, so a resumed run can re-emit it
/// without recomputing the experiment.
fn report_to_json(report: &Report) -> Json {
    let tables = report
        .tables
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("slug".into(), Json::Str(t.slug())),
                ("csv".into(), Json::Str(t.to_csv())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("id".into(), Json::Str(report.id.clone())),
        ("text".into(), Json::Str(report.to_string())),
        ("tables".into(), Json::Arr(tables)),
    ])
}

/// Re-emits a checkpointed report value; returns `false` on decode or CSV
/// failures.
fn emit_json(id: &str, value: &Json, csv_dir: Option<&Path>) -> bool {
    let Some(text) = value.get("text").and_then(Json::as_str) else {
        eprintln!("experiment {id}: checkpointed value has no text");
        return false;
    };
    println!("{text}");
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return false;
        }
        for t in value.get("tables").and_then(Json::as_arr).unwrap_or(&[]) {
            let (Some(slug), Some(csv)) = (
                t.get("slug").and_then(Json::as_str),
                t.get("csv").and_then(Json::as_str),
            ) else {
                eprintln!("experiment {id}: malformed checkpointed table");
                return false;
            };
            let path = dir.join(format!("{id}__{slug}.csv"));
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write {}: {e}", path.display());
                return false;
            }
        }
    }
    true
}

struct Supervision {
    checkpoint: Option<PathBuf>,
    deadline: Option<Duration>,
    max_retries: u32,
}

/// Kernel tuning shared by every experiment context: batch width for the
/// wide-lane sweeps and the incremental aging re-profiling driver.
#[derive(Clone, Copy)]
struct Tuning {
    lanes: LaneWidth,
    incremental: bool,
}

impl Tuning {
    fn apply(self, ctx: &mut Context) {
        ctx.set_lanes(self.lanes);
        ctx.set_incremental(self.incremental);
    }
}

/// Runs the batch under the harness supervisor: one case per experiment,
/// each on a fresh [`Context`] with the attempt's engine and deadline
/// token installed.
fn run_supervised(
    ids: &[String],
    scale: Scale,
    tuning: Tuning,
    csv_dir: Option<&Path>,
    sup: &Supervision,
) -> ExitCode {
    let config = SupervisorConfig {
        deadline: sup.deadline,
        max_retries: sup.max_retries,
        // Serial builds checkpoint after every experiment; parallel builds
        // widen the batch so the fan-out has cases to spread (the batch is
        // both the snapshot interval and the unit of parallelism).
        #[cfg(feature = "parallel")]
        checkpoint_every: std::thread::available_parallelism().map_or(1, |n| n.get()),
        #[cfg(not(feature = "parallel"))]
        checkpoint_every: 1,
        ..SupervisorConfig::default()
    };
    let supervisor = Supervisor::new(
        format!("repro/{scale:?}/{}", ids.join("+")),
        ids.to_vec(),
        config,
    );
    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let id = &ids[attempt.index];
        let mut ctx = Context::new(scale);
        tuning.apply(&mut ctx);
        ctx.set_supervision(attempt.engine, attempt.cancel.clone());
        let report = experiments::run_by_id(&mut ctx, id).map_err(|e| {
            if is_cancellation(&*e) {
                CaseError::Cancelled
            } else {
                CaseError::Failed(e.to_string())
            }
        })?;
        Ok(report_to_json(&report))
    };

    let start = Instant::now();
    let ledger = match supervisor.run(
        &worker,
        sup.checkpoint.as_deref(),
        if sup.checkpoint.is_some() {
            Resume::Attempt
        } else {
            Resume::Fresh
        },
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("supervised run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let secs = start.elapsed().as_secs_f64();

    let mut results = Vec::with_capacity(ids.len());
    for rec in &ledger.records {
        let ok = match &rec.status {
            CaseStatus::Done { value } => {
                let ok = emit_json(&rec.label, value, csv_dir);
                if rec.degraded {
                    eprintln!(
                        "note: {} completed on the event-driven reference engine \
                         after exhausting its levelized-kernel budget",
                        rec.label
                    );
                }
                ok
            }
            CaseStatus::Quarantined { reason } => {
                eprintln!("experiment {} quarantined: {reason}", rec.label);
                false
            }
        };
        // Per-case timing is not tracked through the checkpoint; report
        // the batch total on the last line instead.
        results.push((rec.label.clone(), ok, 0.0));
    }
    eprintln!(
        "all {} experiment(s) done in {secs:.1}s (scale: {scale:?}, supervised)",
        ids.len()
    );
    summarize(&results)
}

fn main() -> ExitCode {
    let mut scale = Scale::Standard;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut resume_ckpt: Option<PathBuf> = None;
    let mut deadline: Option<Duration> = None;
    let mut max_retries: Option<u32> = None;
    let mut tuning = Tuning {
        lanes: LaneWidth::default(),
        incremental: false,
    };
    let mut pending_value: Option<&'static str> = None;

    for arg in std::env::args().skip(1) {
        if let Some(flag) = pending_value.take() {
            match flag {
                "--csv" => csv_dir = Some(PathBuf::from(&arg)),
                "--resume" => resume_ckpt = Some(PathBuf::from(&arg)),
                "--deadline-ms" => match arg.parse() {
                    Ok(ms) => deadline = Some(Duration::from_millis(ms)),
                    Err(e) => {
                        eprintln!("--deadline-ms: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                "--max-retries" => match arg.parse() {
                    Ok(n) => max_retries = Some(n),
                    Err(e) => {
                        eprintln!("--max-retries: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                "--lanes" => match arg.parse::<usize>().ok().and_then(LaneWidth::from_lanes) {
                    Some(w) => tuning.lanes = w,
                    None => {
                        eprintln!("--lanes: want 64, 256, or 512, got {arg}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => unreachable!(),
            }
            continue;
        }
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--csv" => pending_value = Some("--csv"),
            "--lanes" => pending_value = Some("--lanes"),
            "--incremental" => tuning.incremental = true,
            "--resume" => pending_value = Some("--resume"),
            "--deadline-ms" => pending_value = Some("--deadline-ms"),
            "--max-retries" => pending_value = Some("--max-retries"),
            "--list" => {
                for id in experiments::ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if let Some(flag) = pending_value {
        eprintln!("{flag} needs a value");
        usage();
        return ExitCode::FAILURE;
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    ids.dedup();

    if resume_ckpt.is_some() || deadline.is_some() || max_retries.is_some() {
        return run_supervised(
            &ids,
            scale,
            tuning,
            csv_dir.as_deref(),
            &Supervision {
                checkpoint: resume_ckpt,
                deadline,
                // Experiments are deterministic, so a failure repeats;
                // retries only pay off against deadline jitter.
                max_retries: max_retries.unwrap_or(0),
            },
        );
    }

    let overall = Instant::now();
    let mut results: Vec<(String, bool, f64)> = Vec::with_capacity(ids.len());

    // With the `parallel` feature each experiment runs on its own thread
    // with a private Context (the caches are not shareable across threads),
    // and reports are emitted in request order afterwards. Workloads are
    // seed-derived, so every number matches the serial run; the trade is
    // recomputing artifacts a shared cache would have reused. The serial
    // build keeps the original behaviour of streaming each report as soon
    // as its experiment completes.
    #[cfg(feature = "parallel")]
    {
        let outcomes = agemul_par::par_map(&ids, |id| {
            let start = Instant::now();
            let mut ctx = Context::new(scale);
            tuning.apply(&mut ctx);
            let result = experiments::run_by_id(&mut ctx, id);
            (result, start.elapsed().as_secs_f64())
        });
        for (id, (outcome, secs)) in ids.iter().zip(outcomes) {
            let ok = emit(id, outcome, secs, csv_dir.as_deref());
            results.push((id.clone(), ok, secs));
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut ctx = Context::new(scale);
        tuning.apply(&mut ctx);
        for id in &ids {
            let start = Instant::now();
            let outcome = experiments::run_by_id(&mut ctx, id);
            let secs = start.elapsed().as_secs_f64();
            let ok = emit(id, outcome, secs, csv_dir.as_deref());
            results.push((id.clone(), ok, secs));
        }
    }
    eprintln!(
        "all {} experiment(s) done in {:.1}s (scale: {scale:?})",
        ids.len(),
        overall.elapsed().as_secs_f64()
    );
    summarize(&results)
}
