//! `repro` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! repro [--quick | --paper] [--csv <dir>] [--list] <experiment>... | all
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use agemul_repro::{experiments, Context, Scale};

fn usage() {
    eprintln!("usage: repro [--quick | --paper] [--csv <dir>] [--list] <experiment>... | all");
    eprintln!("experiments: {}", experiments::ALL_IDS.join(", "));
}

/// Prints one experiment's report (and optional CSV dump); returns `false`
/// if the experiment failed or a CSV could not be written.
fn emit(
    id: &str,
    outcome: agemul_repro::Result<agemul_repro::Report>,
    secs: f64,
    csv_dir: Option<&std::path::Path>,
) -> bool {
    match outcome {
        Ok(report) => {
            println!("{report}");
            println!("[{id} completed in {secs:.1}s]\n");
            if let Some(dir) = csv_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return false;
                }
                for table in &report.tables {
                    let path = dir.join(format!("{}__{}.csv", report.id, table.slug()));
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return false;
                    }
                }
            }
            true
        }
        Err(e) => {
            eprintln!("experiment {id} failed: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::Standard;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut expect_csv_dir = false;
    for arg in std::env::args().skip(1) {
        if expect_csv_dir {
            csv_dir = Some(PathBuf::from(&arg));
            expect_csv_dir = false;
            continue;
        }
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--csv" => expect_csv_dir = true,
            "--list" => {
                for id in experiments::ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    ids.dedup();

    let overall = Instant::now();

    // With the `parallel` feature each experiment runs on its own thread
    // with a private Context (the caches are not shareable across threads),
    // and reports are emitted in request order afterwards. Workloads are
    // seed-derived, so every number matches the serial run; the trade is
    // recomputing artifacts a shared cache would have reused. The serial
    // build keeps the original behaviour of streaming each report as soon
    // as its experiment completes.
    #[cfg(feature = "parallel")]
    {
        let outcomes = agemul_par::par_map(&ids, |id| {
            let start = Instant::now();
            let mut ctx = Context::new(scale);
            let result = experiments::run_by_id(&mut ctx, id);
            (result, start.elapsed().as_secs_f64())
        });
        for (id, (outcome, secs)) in ids.iter().zip(outcomes) {
            if !emit(id, outcome, secs, csv_dir.as_deref()) {
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut ctx = Context::new(scale);
        for id in &ids {
            let start = Instant::now();
            let outcome = experiments::run_by_id(&mut ctx, id);
            if !emit(
                id,
                outcome,
                start.elapsed().as_secs_f64(),
                csv_dir.as_deref(),
            ) {
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "all {} experiment(s) done in {:.1}s (scale: {scale:?})",
        ids.len(),
        overall.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
