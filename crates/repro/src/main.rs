//! `repro` — regenerate the paper's tables and figures from simulation,
//! or talk to a resident `agemul-serve` instance.
//!
//! ```text
//! repro [--quick | --paper] [--csv <dir>] [--list]
//!       [--lanes <64|256|512>] [--incremental]
//!       [--resume <ckpt>] [--deadline-ms <N>] [--max-retries <N>]
//!       <experiment>... | all
//! repro serve [--addr <host:port> | --unix <path>] [--workers <N>]
//!       [--shard-cap <N>] [--snapshot <path>] [--max-retries <N>]
//! repro query [--addr <host:port> | --unix <path>] --op <op>
//!       [--kind <K>] [--width <N>] [--years <Y>] [--patterns <N>]
//!       [--seed <N>] [--periods <a,b,..>] [--skip <N>]
//!       [--faults <N>] [--fault-seed <N>] [--nodes <N>] [--epochs <N>]
//!       [--policy <P>] [--deadline-ms <N>]
//! ```
//!
//! A failing experiment no longer aborts the batch: every requested
//! experiment runs, a per-experiment pass/fail summary is printed at the
//! end, and the exit code is nonzero if *any* failed. With `--resume` (or
//! a deadline/retry budget) the batch runs under the `agemul-harness`
//! supervisor: completed experiments are checkpointed to the given path —
//! a killed `repro all` picks up where it died — panicking experiments are
//! quarantined instead of taking the batch down, and deadline overruns
//! degrade to the event-driven reference engine before giving up.
//!
//! Every value-taking flag may be given at most once — `--lanes 64
//! --lanes 512` is rejected instead of silently keeping the last value —
//! and `--deadline-ms 0` is rejected (a zero budget would quarantine
//! every experiment; omit the flag to disable the deadline).

use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use agemul::LaneWidth;
use agemul_conformance::Json;
use agemul_harness::{
    is_cancellation, Attempt, CaseError, CaseStatus, Resume, Supervisor, SupervisorConfig,
};
use agemul_repro::{experiments, Context, Report, Scale};
use agemul_serve::{
    parse_kind, roundtrip, DesignQuery, Endpoint, Request, RequestBody, ServeConfig,
};

fn usage() {
    eprintln!(
        "usage: repro [--quick | --paper] [--csv <dir>] [--list] \
         [--lanes <64|256|512>] [--incremental] \
         [--resume <ckpt>] [--deadline-ms <N>] [--max-retries <N>] <experiment>... | all"
    );
    eprintln!(
        "       repro serve [--addr <host:port> | --unix <path>] [--workers <N>] \
         [--shard-cap <N>] [--snapshot <path>] [--max-retries <N>]"
    );
    eprintln!(
        "       repro query [--addr <host:port> | --unix <path>] --op \
         <profile|sweep|campaign|mc|fleet|stats|shutdown> [op fields...]"
    );
    eprintln!("experiments: {}", experiments::ALL_IDS.join(", "));
}

// ---------------------------------------------------------------------------
// CLI model + parser (unit-tested below)
// ---------------------------------------------------------------------------

/// Batch-run arguments (the original `repro` mode).
#[derive(Debug)]
struct RunArgs {
    scale: Scale,
    ids: Vec<String>,
    csv_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    deadline: Option<Duration>,
    max_retries: Option<u32>,
    lanes: LaneWidth,
    incremental: bool,
}

/// `repro serve` arguments.
#[derive(Debug)]
struct ServeArgs {
    endpoint: Endpoint,
    workers: usize,
    shard_capacity: Option<usize>,
    snapshot: Option<PathBuf>,
    max_retries: u32,
}

/// `repro query` arguments: where to connect and the request to send.
#[derive(Debug)]
struct QueryArgs {
    endpoint: Endpoint,
    request: Request,
}

/// What the command line asked for.
#[derive(Debug)]
enum Command {
    Help,
    List,
    Run(RunArgs),
    Serve(ServeArgs),
    Query(Box<QueryArgs>),
}

/// Sets a value-taking flag exactly once; a repeat is a parse error
/// instead of a silent keep-last.
fn set_once<T>(slot: &mut Option<T>, flag: &str, value: T) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!(
            "flag {flag} given more than once; each value-taking flag may appear only once"
        ));
    }
    *slot = Some(value);
    Ok(())
}

/// Consumes the flag's value from the argument list.
fn next_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_deadline_ms(raw: &str) -> Result<Duration, String> {
    let ms: u64 = raw
        .parse()
        .map_err(|e| format!("--deadline-ms: {e} (got {raw:?})"))?;
    if ms == 0 {
        return Err(
            "--deadline-ms 0 would quarantine every case; omit the flag to disable the deadline"
                .into(),
        );
    }
    Ok(Duration::from_millis(ms))
}

fn parse_usize(flag: &str, raw: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|e| format!("{flag}: {e} (got {raw:?})"))
}

fn parse_u64(flag: &str, raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|e| format!("{flag}: {e} (got {raw:?})"))
}

/// Parses the full command line (without argv[0]).
fn parse_cli(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("serve") => parse_serve(&args[1..]),
        Some("query") => parse_query(&args[1..]),
        _ => parse_run(args),
    }
}

fn parse_run(args: &[String]) -> Result<Command, String> {
    let mut scale: Option<Scale> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut deadline: Option<Duration> = None;
    let mut max_retries: Option<u32> = None;
    let mut lanes: Option<LaneWidth> = None;
    let mut incremental = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" | "--paper" => {
                let s = if arg == "--quick" {
                    Scale::Quick
                } else {
                    Scale::Paper
                };
                if scale.is_some() {
                    return Err("scale (--quick/--paper) given more than once".into());
                }
                scale = Some(s);
            }
            "--csv" => {
                let v = next_value(args, &mut i, "--csv")?;
                set_once(&mut csv_dir, "--csv", PathBuf::from(v))?;
            }
            "--resume" => {
                let v = next_value(args, &mut i, "--resume")?;
                set_once(&mut resume, "--resume", PathBuf::from(v))?;
            }
            "--deadline-ms" => {
                let v = next_value(args, &mut i, "--deadline-ms")?;
                let d = parse_deadline_ms(v)?;
                set_once(&mut deadline, "--deadline-ms", d)?;
            }
            "--max-retries" => {
                let v = next_value(args, &mut i, "--max-retries")?;
                let n: u32 = v
                    .parse()
                    .map_err(|e| format!("--max-retries: {e} (got {v:?})"))?;
                set_once(&mut max_retries, "--max-retries", n)?;
            }
            "--lanes" => {
                let v = next_value(args, &mut i, "--lanes")?;
                let w = v
                    .parse::<usize>()
                    .ok()
                    .and_then(LaneWidth::from_lanes)
                    .ok_or_else(|| format!("--lanes: want 64, 256, or 512, got {v}"))?;
                set_once(&mut lanes, "--lanes", w)?;
            }
            "--incremental" => incremental = true,
            "--list" => return Ok(Command::List),
            "--help" | "-h" => return Ok(Command::Help),
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        return Err("no experiments requested".into());
    }
    ids.dedup();
    Ok(Command::Run(RunArgs {
        scale: scale.unwrap_or(Scale::Standard),
        ids,
        csv_dir,
        resume,
        deadline,
        max_retries,
        lanes: lanes.unwrap_or_default(),
        incremental,
    }))
}

/// Parses the shared `--addr`/`--unix` endpoint flags (mutually
/// exclusive); `default_addr` applies when neither is given.
fn parse_endpoint(
    addr: Option<String>,
    unix: Option<PathBuf>,
    default_addr: &str,
) -> Result<Endpoint, String> {
    match (addr, unix) {
        (Some(_), Some(_)) => Err("--addr and --unix are mutually exclusive".into()),
        (Some(addr), None) => Ok(Endpoint::Tcp(addr)),
        (None, Some(path)) => Ok(Endpoint::Unix(path)),
        (None, None) => Ok(Endpoint::Tcp(default_addr.into())),
    }
}

fn parse_serve(args: &[String]) -> Result<Command, String> {
    let mut addr: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut shard_cap: Option<usize> = None;
    let mut snapshot: Option<PathBuf> = None;
    let mut max_retries: Option<u32> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let v = next_value(args, &mut i, "--addr")?;
                set_once(&mut addr, "--addr", v.to_string())?;
            }
            "--unix" => {
                let v = next_value(args, &mut i, "--unix")?;
                set_once(&mut unix, "--unix", PathBuf::from(v))?;
            }
            "--workers" => {
                let v = next_value(args, &mut i, "--workers")?;
                let n = parse_usize("--workers", v)?;
                if n == 0 {
                    return Err("--workers must be positive".into());
                }
                set_once(&mut workers, "--workers", n)?;
            }
            "--shard-cap" => {
                let v = next_value(args, &mut i, "--shard-cap")?;
                let n = parse_usize("--shard-cap", v)?;
                if n == 0 {
                    return Err("--shard-cap must be positive (it bounds each cache shard)".into());
                }
                set_once(&mut shard_cap, "--shard-cap", n)?;
            }
            "--snapshot" => {
                let v = next_value(args, &mut i, "--snapshot")?;
                set_once(&mut snapshot, "--snapshot", PathBuf::from(v))?;
            }
            "--max-retries" => {
                let v = next_value(args, &mut i, "--max-retries")?;
                let n: u32 = v
                    .parse()
                    .map_err(|e| format!("--max-retries: {e} (got {v:?})"))?;
                set_once(&mut max_retries, "--max-retries", n)?;
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("serve: unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(Command::Serve(ServeArgs {
        endpoint: parse_endpoint(addr, unix, "127.0.0.1:7171")?,
        workers: workers.unwrap_or(4),
        shard_capacity: Some(shard_cap.unwrap_or(64)),
        snapshot,
        max_retries: max_retries.unwrap_or(1),
    }))
}

fn parse_query(args: &[String]) -> Result<Command, String> {
    let mut addr: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut op: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut width: Option<usize> = None;
    let mut years: Option<f64> = None;
    let mut patterns: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut periods: Option<Vec<f64>> = None;
    let mut skip: Option<u32> = None;
    let mut faults: Option<usize> = None;
    let mut fault_seed: Option<u64> = None;
    let mut corners: Option<usize> = None;
    let mut sigma: Option<f64> = None;
    let mut mc_seed: Option<u64> = None;
    let mut nodes: Option<usize> = None;
    let mut epochs: Option<usize> = None;
    let mut policy: Option<String> = None;
    let mut deadline: Option<Duration> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let v = next_value(args, &mut i, "--addr")?;
                set_once(&mut addr, "--addr", v.to_string())?;
            }
            "--unix" => {
                let v = next_value(args, &mut i, "--unix")?;
                set_once(&mut unix, "--unix", PathBuf::from(v))?;
            }
            "--op" => {
                let v = next_value(args, &mut i, "--op")?;
                set_once(&mut op, "--op", v.to_string())?;
            }
            "--kind" => {
                let v = next_value(args, &mut i, "--kind")?;
                set_once(&mut kind, "--kind", v.to_string())?;
            }
            "--width" => {
                let v = next_value(args, &mut i, "--width")?;
                let n = parse_usize("--width", v)?;
                if n == 0 {
                    return Err("--width must be positive".into());
                }
                set_once(&mut width, "--width", n)?;
            }
            "--years" => {
                let v = next_value(args, &mut i, "--years")?;
                let y: f64 = v.parse().map_err(|e| format!("--years: {e} (got {v:?})"))?;
                if !y.is_finite() || y < 0.0 {
                    return Err(format!("--years must be finite and non-negative, got {v}"));
                }
                set_once(&mut years, "--years", y)?;
            }
            "--patterns" => {
                let v = next_value(args, &mut i, "--patterns")?;
                let n = parse_usize("--patterns", v)?;
                if n == 0 {
                    return Err("--patterns must be positive".into());
                }
                set_once(&mut patterns, "--patterns", n)?;
            }
            "--seed" => {
                let v = next_value(args, &mut i, "--seed")?;
                set_once(&mut seed, "--seed", parse_u64("--seed", v)?)?;
            }
            "--periods" => {
                let v = next_value(args, &mut i, "--periods")?;
                let mut parsed = Vec::new();
                for part in v.split(',') {
                    let p: f64 = part
                        .trim()
                        .parse()
                        .map_err(|e| format!("--periods: {e} (got {part:?})"))?;
                    if !p.is_finite() || p <= 0.0 {
                        return Err(format!(
                            "--periods: want finite positive values, got {part}"
                        ));
                    }
                    parsed.push(p);
                }
                if parsed.is_empty() {
                    return Err("--periods needs at least one value".into());
                }
                set_once(&mut periods, "--periods", parsed)?;
            }
            "--skip" => {
                let v = next_value(args, &mut i, "--skip")?;
                let n: u32 = v.parse().map_err(|e| format!("--skip: {e} (got {v:?})"))?;
                set_once(&mut skip, "--skip", n)?;
            }
            "--faults" => {
                let v = next_value(args, &mut i, "--faults")?;
                let n = parse_usize("--faults", v)?;
                if n == 0 {
                    return Err("--faults must be positive".into());
                }
                set_once(&mut faults, "--faults", n)?;
            }
            "--fault-seed" => {
                let v = next_value(args, &mut i, "--fault-seed")?;
                set_once(
                    &mut fault_seed,
                    "--fault-seed",
                    parse_u64("--fault-seed", v)?,
                )?;
            }
            "--corners" => {
                let v = next_value(args, &mut i, "--corners")?;
                let n = parse_usize("--corners", v)?;
                if n == 0 {
                    return Err("--corners must be positive".into());
                }
                set_once(&mut corners, "--corners", n)?;
            }
            "--sigma" => {
                let v = next_value(args, &mut i, "--sigma")?;
                let s: f64 = v.parse().map_err(|e| format!("--sigma: {e} (got {v:?})"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err(format!("--sigma must be finite and non-negative, got {v}"));
                }
                set_once(&mut sigma, "--sigma", s)?;
            }
            "--mc-seed" => {
                let v = next_value(args, &mut i, "--mc-seed")?;
                set_once(&mut mc_seed, "--mc-seed", parse_u64("--mc-seed", v)?)?;
            }
            "--nodes" => {
                let v = next_value(args, &mut i, "--nodes")?;
                let n = parse_usize("--nodes", v)?;
                if n == 0 {
                    return Err("--nodes must be positive".into());
                }
                set_once(&mut nodes, "--nodes", n)?;
            }
            "--epochs" => {
                let v = next_value(args, &mut i, "--epochs")?;
                let n = parse_usize("--epochs", v)?;
                if n == 0 {
                    return Err("--epochs must be positive".into());
                }
                set_once(&mut epochs, "--epochs", n)?;
            }
            "--policy" => {
                let v = next_value(args, &mut i, "--policy")?;
                set_once(&mut policy, "--policy", v.to_string())?;
            }
            "--deadline-ms" => {
                let v = next_value(args, &mut i, "--deadline-ms")?;
                let d = parse_deadline_ms(v)?;
                set_once(&mut deadline, "--deadline-ms", d)?;
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("query: unknown argument {other:?}")),
        }
        i += 1;
    }

    let op = op.ok_or("query needs --op <profile|sweep|campaign|mc|fleet|stats|shutdown>")?;
    let design_query = |kind: &Option<String>| -> Result<DesignQuery, String> {
        let label = kind
            .as_deref()
            .ok_or_else(|| format!("--op {op} needs --kind"))?;
        Ok(DesignQuery {
            kind: parse_kind(label)?,
            width: width.ok_or_else(|| format!("--op {op} needs --width"))?,
            years: years.unwrap_or(0.0),
            patterns: patterns.unwrap_or(1_000),
            seed: seed.unwrap_or(42),
        })
    };
    let body = match op.as_str() {
        "profile" => RequestBody::Profile(design_query(&kind)?),
        "sweep" => RequestBody::Sweep {
            query: design_query(&kind)?,
            periods: periods.ok_or("--op sweep needs --periods <a,b,..>")?,
            skip: skip.unwrap_or(7),
        },
        "campaign" => RequestBody::Campaign {
            query: design_query(&kind)?,
            faults: faults.ok_or("--op campaign needs --faults")?,
            fault_seed: fault_seed.unwrap_or(1),
            skip: skip.unwrap_or(7),
        },
        "mc" => RequestBody::Mc {
            query: design_query(&kind)?,
            corners: corners.ok_or("--op mc needs --corners")?,
            sigma: sigma.unwrap_or(0.05),
            mc_seed: mc_seed.unwrap_or(1),
            skip: skip.unwrap_or(7),
        },
        "fleet" => RequestBody::Fleet {
            query: design_query(&kind)?,
            nodes: nodes.ok_or("--op fleet needs --nodes")?,
            epochs: epochs.ok_or("--op fleet needs --epochs")?,
            policy: policy.unwrap_or_else(|| "aging-aware".into()),
            skip: skip.unwrap_or(7),
        },
        "stats" => RequestBody::Stats,
        "shutdown" => RequestBody::Shutdown,
        other => {
            return Err(format!(
                "unknown op {other:?} (want profile, sweep, campaign, mc, fleet, stats, or \
                 shutdown)"
            ))
        }
    };
    Ok(Command::Query(Box::new(QueryArgs {
        endpoint: parse_endpoint(addr, unix, "127.0.0.1:7171")?,
        request: Request {
            id: 1,
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
            body,
        },
    })))
}

// ---------------------------------------------------------------------------
// Batch-run machinery (unchanged behaviour)
// ---------------------------------------------------------------------------

/// Prints one experiment's report (and optional CSV dump); returns `false`
/// if the experiment failed or a CSV could not be written.
fn emit(
    id: &str,
    outcome: agemul_repro::Result<Report>,
    secs: f64,
    csv_dir: Option<&Path>,
) -> bool {
    match outcome {
        Ok(report) => {
            println!("{report}");
            println!("[{id} completed in {secs:.1}s]\n");
            if let Some(dir) = csv_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return false;
                }
                for table in &report.tables {
                    let path = dir.join(format!("{}__{}.csv", report.id, table.slug()));
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return false;
                    }
                }
            }
            true
        }
        Err(e) => {
            eprintln!("experiment {id} failed: {e}");
            false
        }
    }
}

/// One line per experiment, then the aggregate verdict. Returns the exit
/// code: success only if every experiment passed.
fn summarize(results: &[(String, bool, f64)]) -> ExitCode {
    let failed: Vec<&str> = results
        .iter()
        .filter(|(_, ok, _)| !ok)
        .map(|(id, _, _)| id.as_str())
        .collect();
    eprintln!("summary:");
    for (id, ok, secs) in results {
        eprintln!(
            "  {id:<20} {} ({secs:.1}s)",
            if *ok { "ok" } else { "FAILED" }
        );
    }
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{}/{} experiment(s) failed: {}",
            failed.len(),
            results.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// Serializes a finished report (rendered text + CSV tables) as the
/// supervised case's checkpoint value, so a resumed run can re-emit it
/// without recomputing the experiment.
fn report_to_json(report: &Report) -> Json {
    let tables = report
        .tables
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("slug".into(), Json::Str(t.slug())),
                ("csv".into(), Json::Str(t.to_csv())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("id".into(), Json::Str(report.id.clone())),
        ("text".into(), Json::Str(report.to_string())),
        ("tables".into(), Json::Arr(tables)),
    ])
}

/// Re-emits a checkpointed report value; returns `false` on decode or CSV
/// failures.
fn emit_json(id: &str, value: &Json, csv_dir: Option<&Path>) -> bool {
    let Some(text) = value.get("text").and_then(Json::as_str) else {
        eprintln!("experiment {id}: checkpointed value has no text");
        return false;
    };
    println!("{text}");
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return false;
        }
        for t in value.get("tables").and_then(Json::as_arr).unwrap_or(&[]) {
            let (Some(slug), Some(csv)) = (
                t.get("slug").and_then(Json::as_str),
                t.get("csv").and_then(Json::as_str),
            ) else {
                eprintln!("experiment {id}: malformed checkpointed table");
                return false;
            };
            let path = dir.join(format!("{id}__{slug}.csv"));
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write {}: {e}", path.display());
                return false;
            }
        }
    }
    true
}

/// Kernel tuning shared by every experiment context: batch width for the
/// wide-lane sweeps and the incremental aging re-profiling driver.
#[derive(Clone, Copy)]
struct Tuning {
    lanes: LaneWidth,
    incremental: bool,
}

impl Tuning {
    fn apply(self, ctx: &mut Context) {
        ctx.set_lanes(self.lanes);
        ctx.set_incremental(self.incremental);
    }
}

/// Runs the batch under the harness supervisor: one case per experiment,
/// each on a fresh [`Context`] with the attempt's engine and deadline
/// token installed.
fn run_supervised(run: &RunArgs, tuning: Tuning) -> ExitCode {
    let ids = &run.ids;
    let scale = run.scale;
    let csv_dir = run.csv_dir.as_deref();
    let config = SupervisorConfig {
        deadline: run.deadline,
        // Experiments are deterministic, so a failure repeats; retries
        // only pay off against deadline jitter.
        max_retries: run.max_retries.unwrap_or(0),
        // Serial builds checkpoint after every experiment; parallel builds
        // widen the batch so the fan-out has cases to spread (the batch is
        // both the snapshot interval and the unit of parallelism).
        #[cfg(feature = "parallel")]
        checkpoint_every: std::thread::available_parallelism().map_or(1, |n| n.get()),
        #[cfg(not(feature = "parallel"))]
        checkpoint_every: 1,
        ..SupervisorConfig::default()
    };
    let supervisor = Supervisor::new(
        format!("repro/{scale:?}/{}", ids.join("+")),
        ids.to_vec(),
        config,
    );
    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let id = &ids[attempt.index];
        let mut ctx = Context::new(scale);
        tuning.apply(&mut ctx);
        ctx.set_supervision(attempt.engine, attempt.cancel.clone());
        let report = experiments::run_by_id(&mut ctx, id).map_err(|e| {
            if is_cancellation(&*e) {
                CaseError::Cancelled
            } else {
                CaseError::Failed(e.to_string())
            }
        })?;
        Ok(report_to_json(&report))
    };

    let start = Instant::now();
    let ledger = match supervisor.run(
        &worker,
        run.resume.as_deref(),
        if run.resume.is_some() {
            Resume::Attempt
        } else {
            Resume::Fresh
        },
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("supervised run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let secs = start.elapsed().as_secs_f64();

    let mut results = Vec::with_capacity(ids.len());
    for rec in &ledger.records {
        let ok = match &rec.status {
            CaseStatus::Done { value } => {
                let ok = emit_json(&rec.label, value, csv_dir);
                if rec.degraded {
                    eprintln!(
                        "note: {} completed on the event-driven reference engine \
                         after exhausting its levelized-kernel budget",
                        rec.label
                    );
                }
                ok
            }
            CaseStatus::Quarantined { reason } => {
                eprintln!("experiment {} quarantined: {reason}", rec.label);
                false
            }
        };
        // Per-case timing is not tracked through the checkpoint; report
        // the batch total on the last line instead.
        results.push((rec.label.clone(), ok, 0.0));
    }
    eprintln!(
        "all {} experiment(s) done in {secs:.1}s (scale: {scale:?}, supervised)",
        ids.len()
    );
    summarize(&results)
}

fn run_batch(run: RunArgs) -> ExitCode {
    let tuning = Tuning {
        lanes: run.lanes,
        incremental: run.incremental,
    };
    if run.resume.is_some() || run.deadline.is_some() || run.max_retries.is_some() {
        return run_supervised(&run, tuning);
    }

    let scale = run.scale;
    let ids = run.ids;
    let csv_dir = run.csv_dir;
    let overall = Instant::now();
    let mut results: Vec<(String, bool, f64)> = Vec::with_capacity(ids.len());

    // With the `parallel` feature each experiment runs on its own thread
    // with a private Context (the caches are not shareable across threads),
    // and reports are emitted in request order afterwards. Workloads are
    // seed-derived, so every number matches the serial run; the trade is
    // recomputing artifacts a shared cache would have reused. The serial
    // build keeps the original behaviour of streaming each report as soon
    // as its experiment completes.
    #[cfg(feature = "parallel")]
    {
        let outcomes = agemul_par::par_map(&ids, |id| {
            let start = Instant::now();
            let mut ctx = Context::new(scale);
            tuning.apply(&mut ctx);
            let result = experiments::run_by_id(&mut ctx, id);
            (result, start.elapsed().as_secs_f64())
        });
        for (id, (outcome, secs)) in ids.iter().zip(outcomes) {
            let ok = emit(id, outcome, secs, csv_dir.as_deref());
            results.push((id.clone(), ok, secs));
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut ctx = Context::new(scale);
        tuning.apply(&mut ctx);
        for id in &ids {
            let start = Instant::now();
            let outcome = experiments::run_by_id(&mut ctx, id);
            let secs = start.elapsed().as_secs_f64();
            let ok = emit(id, outcome, secs, csv_dir.as_deref());
            results.push((id.clone(), ok, secs));
        }
    }
    eprintln!(
        "all {} experiment(s) done in {:.1}s (scale: {scale:?})",
        ids.len(),
        overall.elapsed().as_secs_f64()
    );
    summarize(&results)
}

// ---------------------------------------------------------------------------
// serve / query
// ---------------------------------------------------------------------------

fn run_serve(args: ServeArgs) -> ExitCode {
    let describe = match &args.endpoint {
        Endpoint::Tcp(addr) => format!("tcp {addr}"),
        Endpoint::Unix(path) => format!("unix {}", path.display()),
    };
    let handle = match agemul_serve::spawn(ServeConfig {
        endpoint: args.endpoint,
        workers: args.workers,
        shard_capacity: args.shard_capacity,
        snapshot: args.snapshot,
        max_retries: args.max_retries,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("repro serve: cannot start on {describe}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match handle.tcp_addr() {
        Some(addr) => eprintln!("repro serve: listening on {addr}"),
        None => eprintln!("repro serve: listening on {describe}"),
    }
    eprintln!("repro serve: stop with a shutdown op (repro query --op shutdown)");
    match handle.run_until_shutdown() {
        Ok(()) => {
            eprintln!("repro serve: stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro serve: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_query(args: QueryArgs) -> ExitCode {
    let frame = args.request.to_json();
    let response = match &args.endpoint {
        Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str())
            .map_err(|e| format!("connect {addr}: {e}"))
            .and_then(|mut s| {
                let _ = s.set_nodelay(true);
                roundtrip(&mut s, &frame).map_err(|e| e.to_string())
            }),
        Endpoint::Unix(path) => UnixStream::connect(path)
            .map_err(|e| format!("connect {}: {e}", path.display()))
            .and_then(|mut s| roundtrip(&mut s, &frame).map_err(|e| e.to_string())),
    };
    match response {
        Ok(response) => {
            println!("{response}");
            if response.get("ok").and_then(Json::as_bool) == Some(true) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repro query: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&args) {
        Ok(Command::Help) => {
            usage();
            ExitCode::SUCCESS
        }
        Ok(Command::List) => {
            for id in experiments::ALL_IDS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        Ok(Command::Run(run)) => run_batch(run),
        Ok(Command::Serve(serve)) => run_serve(serve),
        Ok(Command::Query(query)) => run_query(*query),
        Err(e) => {
            eprintln!("repro: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn duplicate_value_flags_are_rejected_not_kept_last() {
        // The old parser silently kept the last value of a repeated flag;
        // each of these must now fail with a message naming the flag.
        let cases = [
            argv(&["--lanes", "64", "--lanes", "512", "all"]),
            argv(&["--csv", "a", "--csv", "b", "all"]),
            argv(&["--resume", "x.json", "--resume", "y.json", "all"]),
            argv(&["--deadline-ms", "100", "--deadline-ms", "200", "all"]),
            argv(&["--max-retries", "1", "--max-retries", "2", "all"]),
        ];
        for args in cases {
            let err = parse_cli(&args).unwrap_err();
            assert!(err.contains("more than once"), "{args:?} gave {err:?}");
            assert!(
                err.contains(&args[0]),
                "{err:?} does not name {:?}",
                args[0]
            );
        }
    }

    #[test]
    fn zero_deadline_is_rejected_with_guidance() {
        let err = parse_cli(&argv(&["--deadline-ms", "0", "all"])).unwrap_err();
        assert!(err.contains("quarantine"), "{err}");
        assert!(err.contains("omit"), "{err}");
    }

    #[test]
    fn single_flags_still_parse() {
        let cmd = parse_cli(&argv(&[
            "--quick",
            "--lanes",
            "512",
            "--deadline-ms",
            "250",
            "--csv",
            "out",
            "table4",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run command");
        };
        assert_eq!(run.scale, Scale::Quick);
        assert_eq!(run.lanes, LaneWidth::from_lanes(512).unwrap());
        assert_eq!(run.deadline, Some(Duration::from_millis(250)));
        assert_eq!(run.csv_dir.as_deref(), Some(Path::new("out")));
        assert_eq!(run.ids, vec!["table4".to_string()]);
    }

    #[test]
    fn conflicting_scales_are_rejected() {
        let err = parse_cli(&argv(&["--quick", "--paper", "all"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let err = parse_cli(&argv(&["all", "--lanes"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn serve_defaults_and_duplicates() {
        let cmd = parse_cli(&argv(&["serve"])).unwrap();
        let Command::Serve(serve) = cmd else {
            panic!("expected serve command");
        };
        assert!(matches!(serve.endpoint, Endpoint::Tcp(ref a) if a == "127.0.0.1:7171"));
        assert_eq!(serve.workers, 4);
        assert_eq!(serve.shard_capacity, Some(64));

        let err = parse_cli(&argv(&["serve", "--workers", "2", "--workers", "3"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse_cli(&argv(&["serve", "--addr", "x:1", "--unix", "/tmp/s"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_cli(&argv(&["serve", "--workers", "0"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn query_builds_a_profile_request() {
        let cmd = parse_cli(&argv(&[
            "query",
            "--op",
            "profile",
            "--kind",
            "CB",
            "--width",
            "8",
            "--years",
            "7",
            "--deadline-ms",
            "500",
        ]))
        .unwrap();
        let Command::Query(query) = cmd else {
            panic!("expected query command");
        };
        assert_eq!(query.request.deadline_ms, Some(500));
        let RequestBody::Profile(q) = &query.request.body else {
            panic!("expected profile body");
        };
        assert_eq!(q.width, 8);
        assert_eq!(q.years, 7.0);
        assert_eq!(q.patterns, 1_000, "default patterns");
        assert_eq!(q.seed, 42, "default seed");
    }

    #[test]
    fn query_builds_an_mc_request() {
        let cmd = parse_cli(&argv(&[
            "query",
            "--op",
            "mc",
            "--kind",
            "RB",
            "--width",
            "16",
            "--years",
            "7",
            "--corners",
            "32",
            "--sigma",
            "0.08",
            "--mc-seed",
            "9",
        ]))
        .unwrap();
        let Command::Query(query) = cmd else {
            panic!("expected query command");
        };
        let RequestBody::Mc {
            query: q,
            corners,
            sigma,
            mc_seed,
            skip,
        } = &query.request.body
        else {
            panic!("expected mc body");
        };
        assert_eq!((q.width, *corners, *mc_seed, *skip), (16, 32, 9, 7));
        assert_eq!(*sigma, 0.08);

        let err = parse_cli(&argv(&[
            "query", "--op", "mc", "--kind", "RB", "--width", "16",
        ]))
        .unwrap_err();
        assert!(err.contains("--corners"), "{err}");
        let err = parse_cli(&argv(&[
            "query",
            "--op",
            "mc",
            "--kind",
            "RB",
            "--width",
            "16",
            "--corners",
            "4",
            "--sigma",
            "-1",
        ]))
        .unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn query_validates_ops_and_deadlines() {
        let err = parse_cli(&argv(&["query", "--op", "bogus"])).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let err = parse_cli(&argv(&["query", "--op", "profile"])).unwrap_err();
        assert!(err.contains("--kind"), "{err}");
        let err = parse_cli(&argv(&[
            "query", "--op", "sweep", "--kind", "CB", "--width", "8",
        ]))
        .unwrap_err();
        assert!(err.contains("--periods"), "{err}");
        let err = parse_cli(&argv(&["query", "--op", "stats", "--deadline-ms", "0"])).unwrap_err();
        assert!(err.contains("quarantine"), "{err}");
    }
}
