//! `repro` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! repro [--quick | --paper] [--csv <dir>] [--list] <experiment>... | all
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use agemul_repro::{experiments, Context, Scale};

fn usage() {
    eprintln!("usage: repro [--quick | --paper] [--csv <dir>] [--list] <experiment>... | all");
    eprintln!("experiments: {}", experiments::ALL_IDS.join(", "));
}

fn main() -> ExitCode {
    let mut scale = Scale::Standard;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut expect_csv_dir = false;
    for arg in std::env::args().skip(1) {
        if expect_csv_dir {
            csv_dir = Some(PathBuf::from(&arg));
            expect_csv_dir = false;
            continue;
        }
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--csv" => expect_csv_dir = true,
            "--list" => {
                for id in experiments::ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    ids.dedup();

    let mut ctx = Context::new(scale);
    let overall = Instant::now();
    for id in &ids {
        let start = Instant::now();
        match experiments::run_by_id(&mut ctx, id) {
            Ok(report) => {
                println!("{report}");
                println!("[{id} completed in {:.1}s]\n", start.elapsed().as_secs_f64());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    for table in &report.tables {
                        let path = dir.join(format!("{}__{}.csv", report.id, table.slug()));
                        if let Err(e) = std::fs::write(&path, table.to_csv()) {
                            eprintln!("cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "all {} experiment(s) done in {:.1}s (scale: {scale:?})",
        ids.len(),
        overall.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
