//! Reproduction harness for every table and figure in the paper.
//!
//! Each experiment in the evaluation section of *"Aging-Aware Reliable
//! Multiplier Design With Adaptive Hold Logic"* has a function here that
//! regenerates its rows/series from the gate-level simulation stack, plus a
//! `repro` CLI subcommand. The mapping lives in `DESIGN.md`; measured vs
//! paper numbers are recorded in `EXPERIMENTS.md`.
//!
//! Absolute nanoseconds come from a delay model calibrated to one paper
//! anchor (16×16 AM critical path = 1.32 ns); everything else — who wins,
//! crossover periods, improvement factors, aging slopes — is emergent.
//!
//! # Example
//!
//! ```no_run
//! use agemul_repro::{experiments, Context, Scale};
//!
//! let mut ctx = Context::new(Scale::Quick);
//! let report = experiments::table1(&mut ctx).unwrap();
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
pub mod experiments;
mod table;

pub use context::{Context, Result, Scale};
pub use table::{Report, Table};
