//! Minimal aligned-text table rendering for experiment reports.

use std::fmt;

/// One aligned text table.
///
/// # Example
///
/// ```
/// use agemul_repro::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1", "2.50"]);
/// assert!(t.to_string().contains("2.50"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Borrow a cell by row/column (for tests and cross-checks).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders the table as RFC-4180-style CSV (quotes doubled, fields
    /// quoted when they contain separators). Notes become trailing
    /// `# `-prefixed comment lines.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("# ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// A filesystem-safe slug of the title, for CSV filenames.
    pub fn slug(&self) -> String {
        let mut s: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        while s.contains("__") {
            s = s.replace("__", "_");
        }
        s.trim_matches('_').chars().take(60).collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// A titled bundle of tables — one experiment's full output.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment identifier ("fig13", "table1", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The tables, in print order.
    pub tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
        }
    }

    /// Appends a table.
    pub fn push(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        for t in &self.tables {
            writeln!(f)?;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "2"]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.contains("note: hello"));
        assert_eq!(t.cell(1, 0), Some("longer"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut t = Table::new("odd, title", &["a", "b"]);
        t.row(&["x,y", "plain"]);
        t.row(&["with \"quote\"", "2"]);
        t.note("context");
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\",plain"));
        assert!(csv.contains("\"with \"\"quote\"\"\""));
        assert!(csv.ends_with("# context\n"));
        assert_eq!(t.slug(), "odd_title");
    }

    #[test]
    fn report_bundles() {
        let mut r = Report::new("figX", "demo");
        r.push(Table::new("t1", &["c"]));
        let s = r.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("## t1"));
    }
}
