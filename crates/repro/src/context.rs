//! Shared, cached experiment state.

use std::collections::HashMap;
use std::rc::Rc;

use agemul::{CancelToken, LaneWidth, MultiplierDesign, PatternProfile, PatternSet, SimEngine};
use agemul_aging::{aging_factors, BtiModel};
use agemul_circuits::MultiplierKind;
use agemul_logic::Technology;
use agemul_netlist::WorkloadStats;

/// Convenience result type for the harness.
pub type Result<T> = std::result::Result<T, Box<dyn std::error::Error + Send + Sync>>;

/// How much simulation to spend per experiment.
///
/// `Paper` matches the paper's pattern counts exactly (65 536 patterns for
/// the Fig. 5 distributions, 10 000 for the latency sweeps); `Standard`
/// trims the heaviest 32×32 runs to keep a full reproduction in minutes;
/// `Quick` is for smoke tests and benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Smoke-test sizes.
    Quick,
    /// Minutes-scale full reproduction (default).
    Standard,
    /// The paper's exact pattern counts.
    Paper,
}

impl Scale {
    /// Patterns for the Fig. 5 delay-distribution experiment.
    pub fn distribution_patterns(self) -> usize {
        match self {
            Scale::Quick => 4_096,
            Scale::Standard => 16_384,
            Scale::Paper => 65_536,
        }
    }

    /// Patterns per constrained-zeros group (Fig. 6).
    pub fn fig6_patterns(self) -> usize {
        match self {
            Scale::Quick => 600,
            Scale::Standard | Scale::Paper => 3_000,
        }
    }

    /// Patterns for the latency/error sweeps (Figs. 13–24).
    pub fn latency_patterns(self, width: usize) -> usize {
        match (self, width) {
            (Scale::Quick, w) if w > 16 => 800,
            (Scale::Quick, _) => 2_000,
            (Scale::Standard, w) if w > 16 => 3_000,
            (Scale::Standard, _) => 10_000,
            (Scale::Paper, _) => 10_000,
        }
    }

    /// Patterns per fault for the fault-injection campaigns (each delay
    /// fault costs one full event-driven profile of this workload).
    pub fn fault_patterns(self, width: usize) -> usize {
        match (self, width) {
            (Scale::Quick, w) if w > 16 => 300,
            (Scale::Quick, _) => 600,
            (_, w) if w > 16 => 1_000,
            (_, _) => 2_500,
        }
    }

    /// Faults sampled per campaign (per architecture × width).
    pub fn fault_specimens(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Standard | Scale::Paper => 24,
        }
    }

    /// Patterns for the seven-year studies (Figs. 26/27).
    pub fn year_patterns(self, width: usize) -> usize {
        match (self, width) {
            (Scale::Quick, w) if w > 16 => 400,
            (Scale::Quick, _) => 800,
            (_, w) if w > 16 => 1_500,
            (_, _) => 3_000,
        }
    }

    /// Process corners sampled per architecture by the Monte Carlo yield
    /// campaign (`mc`).
    pub fn mc_corners(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Standard => 48,
            Scale::Paper => 128,
        }
    }

    /// Patterns per corner-year replay in the Monte Carlo campaign. Each
    /// corner re-profiles this workload at every lifetime point, so it is
    /// the hot axis of the `corners × years × patterns` product.
    pub fn mc_patterns(self, width: usize) -> usize {
        match (self, width) {
            (Scale::Quick, _) => 256,
            (_, w) if w > 16 => 512,
            (_, _) => 1_024,
        }
    }

    /// Operations routed per epoch in the fleet policy study (`fleet`).
    /// Every node profiles its corner over the epoch trace, so this is the
    /// study's hot axis; utilization-driven aging is normalized by the
    /// fair share, which keeps the policy dynamics comparable across
    /// scales. The floor is 192 even at `Quick`: below that the epoch
    /// traces under-utilize every node and no policy separates before the
    /// horizon ends, which would void the study's acceptance check.
    pub fn fleet_ops_per_epoch(self) -> usize {
        match self {
            Scale::Quick | Scale::Standard => 192,
            Scale::Paper => 384,
        }
    }

    /// Simulated epochs in the fleet policy study. Deliberately constant
    /// across scales: the epoch count times the per-epoch aging step *is*
    /// the lifetime horizon under test, so shrinking it would change the
    /// experiment rather than its resolution.
    pub fn fleet_epochs(self) -> usize {
        20
    }
}

/// Workload seed shared by the latency experiments, so every figure sees
/// the same operand stream (as in the paper, which reuses its random
/// pattern sets across scenarios).
const SEED_UNIFORM: u64 = 0x0A6E_0001;

/// Per-gate seven-year delay-factor target handed to
/// [`BtiModel::calibrated`].
///
/// The paper's ≈13 % (Fig. 7) is a *circuit-level* observable: the static
/// critical path grows by the duty-cycle-weighted average of the per-gate
/// factors along it, which sits slightly below the balanced-gate factor.
/// This constant was found by sweeping the gate-level target until the
/// 16×16 column-bypassing multiplier's 7-year critical-path growth landed
/// on the paper's 13 % (see `examples/probe_aging.rs` in this crate); a
/// context test asserts the anchor still holds.
const REFERENCE_GATE_7Y_FACTOR: f64 = 1.132;

fn years_key(years: f64) -> u32 {
    (years * 100.0).round() as u32
}

/// Lazily computed, cached artifacts shared across experiments: designs,
/// workload statistics, aging factors, timing profiles, and critical-path
/// measurements.
///
/// Building a profile is the expensive step (one event-driven simulation
/// over the whole workload); everything downstream — period sweeps, skip
/// comparisons, adaptive-vs-traditional replays — reuses it, exactly as the
/// paper reuses one measured dataset across Figs. 13–24.
pub struct Context {
    scale: Scale,
    engine: SimEngine,
    cancel: Option<CancelToken>,
    lanes: LaneWidth,
    incremental: bool,
    bti: BtiModel,
    designs: HashMap<(MultiplierKind, usize), Rc<MultiplierDesign>>,
    workloads: HashMap<(usize, usize), Rc<PatternSet>>,
    stats: HashMap<(MultiplierKind, usize), Rc<WorkloadStats>>,
    factors: HashMap<(MultiplierKind, usize, u32), Rc<Vec<f64>>>,
    profiles: HashMap<(MultiplierKind, usize, u32, usize), Rc<PatternProfile>>,
    criticals: HashMap<(MultiplierKind, usize, u32), f64>,
}

impl Context {
    /// Creates a context at the given scale, with the BTI model calibrated
    /// so the 16×16 column-bypassing multiplier's critical path grows by
    /// the paper's ≈13 % over seven years (see `REFERENCE_GATE_7Y_FACTOR`
    /// in the module source for the derivation).
    pub fn new(scale: Scale) -> Self {
        Context {
            scale,
            engine: SimEngine::Level,
            cancel: None,
            lanes: LaneWidth::default(),
            incremental: false,
            bti: BtiModel::calibrated(Technology::ptm_32nm_hk(), REFERENCE_GATE_7Y_FACTOR),
            designs: HashMap::new(),
            workloads: HashMap::new(),
            stats: HashMap::new(),
            factors: HashMap::new(),
            profiles: HashMap::new(),
            criticals: HashMap::new(),
        }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Places the context under supervision: profiles are simulated on
    /// `engine` and the optional deadline token is threaded into the
    /// timing kernels, so a supervisor's deadline aborts an experiment
    /// cooperatively instead of leaving it wedged.
    ///
    /// Intended for a *fresh* context per supervised attempt — caches are
    /// keyed without the engine, so mixing engines in one context would
    /// serve profiles computed on whichever engine ran first (they are
    /// equivalent by the conformance gate, but bit-identity of a resumed
    /// run is only pinned per attempt).
    pub fn set_supervision(&mut self, engine: SimEngine, cancel: Option<CancelToken>) {
        self.engine = engine;
        self.cancel = cancel;
    }

    /// The calibrated BTI model.
    pub fn bti(&self) -> &BtiModel {
        &self.bti
    }

    /// Selects the batch width for the wide-lane kernels (functional
    /// verification sweeps and workload statistics). Defaults to 64 lanes.
    pub fn set_lanes(&mut self, lanes: LaneWidth) {
        self.lanes = lanes;
    }

    /// The configured batch width.
    pub fn lanes(&self) -> LaneWidth {
        self.lanes
    }

    /// Switches the aging-sweep experiments to the incremental
    /// re-profiling driver (see `agemul::AgingSweep`). Off by default:
    /// the baseline re-profiles every sweep configuration from scratch.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// Whether incremental aging re-profiling is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// The simulation engine profiles run on (levelized by default,
    /// event-driven when a supervisor degrades the attempt).
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// The supervisor's deadline token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The design for `kind` × `width` (cached).
    pub fn design(&mut self, kind: MultiplierKind, width: usize) -> Result<Rc<MultiplierDesign>> {
        if let Some(d) = self.designs.get(&(kind, width)) {
            return Ok(Rc::clone(d));
        }
        let d = Rc::new(MultiplierDesign::new(kind, width)?);
        self.designs.insert((kind, width), Rc::clone(&d));
        Ok(d)
    }

    /// The shared uniform workload of `count` patterns at `width` (cached).
    pub fn uniform_workload(&mut self, width: usize, count: usize) -> Rc<PatternSet> {
        if let Some(w) = self.workloads.get(&(width, count)) {
            return Rc::clone(w);
        }
        let w = Rc::new(PatternSet::uniform(width, count, SEED_UNIFORM));
        self.workloads.insert((width, count), Rc::clone(&w));
        w
    }

    /// Workload statistics (signal probabilities + switching activity) for
    /// a design under the standard uniform workload (cached).
    pub fn stats(&mut self, kind: MultiplierKind, width: usize) -> Result<Rc<WorkloadStats>> {
        if let Some(s) = self.stats.get(&(kind, width)) {
            return Ok(Rc::clone(s));
        }
        let design = self.design(kind, width)?;
        // Statistics stabilize quickly; a moderate sample keeps this cheap.
        let count = self.scale.year_patterns(width);
        let workload = self.uniform_workload(width, count);
        let s = Rc::new(design.workload_stats_wide(workload.pairs(), self.lanes)?);
        self.stats.insert((kind, width), Rc::clone(&s));
        Ok(s)
    }

    /// Per-gate BTI aging factors for a design at `years` (cached).
    pub fn factors(
        &mut self,
        kind: MultiplierKind,
        width: usize,
        years: f64,
    ) -> Result<Rc<Vec<f64>>> {
        let key = (kind, width, years_key(years));
        if let Some(f) = self.factors.get(&key) {
            return Ok(Rc::clone(f));
        }
        let design = self.design(kind, width)?;
        let stats = self.stats(kind, width)?;
        let f = Rc::new(aging_factors(
            design.circuit().netlist(),
            &stats,
            &self.bti,
            years,
        ));
        self.factors.insert(key, Rc::clone(&f));
        Ok(f)
    }

    /// A timing profile of the standard uniform workload (`count`
    /// patterns) at age `years` (cached).
    pub fn profile(
        &mut self,
        kind: MultiplierKind,
        width: usize,
        years: f64,
        count: usize,
    ) -> Result<Rc<PatternProfile>> {
        let key = (kind, width, years_key(years), count);
        if let Some(p) = self.profiles.get(&key) {
            return Ok(Rc::clone(p));
        }
        let design = self.design(kind, width)?;
        let workload = self.uniform_workload(width, count);
        let factors = if years > 0.0 {
            Some(self.factors(kind, width, years)?)
        } else {
            None
        };
        let p = Rc::new(design.profile_supervised(
            workload.pairs(),
            factors.as_ref().map(|f| f.as_slice()),
            self.engine,
            self.cancel.as_ref(),
        )?);
        self.profiles.insert(key, Rc::clone(&p));
        Ok(p)
    }

    /// The measured critical-path delay at age `years` (cached).
    pub fn critical(&mut self, kind: MultiplierKind, width: usize, years: f64) -> Result<f64> {
        let key = (kind, width, years_key(years));
        if let Some(&c) = self.criticals.get(&key) {
            return Ok(c);
        }
        let design = self.design(kind, width)?;
        let factors = if years > 0.0 {
            Some(self.factors(kind, width, years)?)
        } else {
            None
        };
        let c = design.critical_delay_ns(factors.as_ref().map(|f| f.as_slice()))?;
        self.criticals.insert(key, c);
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_return_shared_instances() {
        let mut ctx = Context::new(Scale::Quick);
        let d1 = ctx.design(MultiplierKind::Array, 4).unwrap();
        let d2 = ctx.design(MultiplierKind::Array, 4).unwrap();
        assert!(Rc::ptr_eq(&d1, &d2));
        let w1 = ctx.uniform_workload(4, 16);
        let w2 = ctx.uniform_workload(4, 16);
        assert!(Rc::ptr_eq(&w1, &w2));
    }

    #[test]
    fn aged_critical_exceeds_fresh() {
        let mut ctx = Context::new(Scale::Quick);
        let fresh = ctx.critical(MultiplierKind::Array, 4, 0.0).unwrap();
        let aged = ctx.critical(MultiplierKind::Array, 4, 7.0).unwrap();
        assert!(aged > fresh);
    }

    #[test]
    fn seven_year_anchor_holds_at_circuit_level() {
        // The paper's Fig. 7 observable: ≈13 % critical-path growth of the
        // 16×16 column-bypassing multiplier over seven years.
        let mut ctx = Context::new(Scale::Quick);
        let fresh = ctx.critical(MultiplierKind::ColumnBypass, 16, 0.0).unwrap();
        let aged = ctx.critical(MultiplierKind::ColumnBypass, 16, 7.0).unwrap();
        let growth = aged / fresh - 1.0;
        assert!(
            (0.115..=0.145).contains(&growth),
            "7-year growth {:.2}% off the 13% anchor",
            100.0 * growth
        );
    }

    #[test]
    fn scale_tables_are_ordered() {
        assert!(Scale::Quick.distribution_patterns() < Scale::Paper.distribution_patterns());
        assert!(Scale::Quick.latency_patterns(16) <= Scale::Standard.latency_patterns(16));
        assert!(Scale::Standard.latency_patterns(32) <= Scale::Standard.latency_patterns(16));
    }
}
