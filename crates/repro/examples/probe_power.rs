use agemul::{
    area_report, energy_report, Architecture, EnergyInputs, MultiplierDesign, PatternSet,
};
use agemul_circuits::MultiplierKind;
use agemul_power::PowerModel;

fn main() {
    let pm = PowerModel::ptm_32nm_hk();
    let pats = PatternSet::uniform(16, 800, 0x0A6E_0001);
    for kind in MultiplierKind::ALL {
        let d = MultiplierDesign::new(kind, 16).unwrap();
        let stats = d.workload_stats(pats.pairs()).unwrap();
        let profile = d.profile(pats.pairs(), None).unwrap();
        let area = area_report(&d, Architecture::FixedLatency, 7).unwrap();
        let e = energy_report(
            &d,
            EnergyInputs {
                power: &pm,
                stats: &stats,
                area: &area,
                avg_cycles_per_op: 1.0,
                avg_latency_ns: 1.5,
                delta_vth_v: 0.0,
            },
        );
        println!(
            "{:3}: toggles/op {:7.1} dyn {:8.1} seq {:6.1} leak {:6.1} fJ",
            kind.label(),
            profile.avg_gate_toggles(),
            e.dynamic_fj,
            e.sequential_fj,
            e.leakage_fj
        );
    }
}
