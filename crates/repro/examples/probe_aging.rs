use agemul::MultiplierDesign;
use agemul::PatternSet;
use agemul_aging::{aging_factors, BtiModel};
use agemul_circuits::MultiplierKind;
use agemul_logic::Technology;

fn main() {
    let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16).unwrap();
    let pats = PatternSet::uniform(16, 800, 0x0A6E_0001);
    let stats = d.workload_stats(pats.pairs()).unwrap();
    let fresh = d.critical_delay_ns(None).unwrap();
    for target in [1.04, 1.06, 1.08, 1.10, 1.11, 1.12] {
        let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), target);
        let f = aging_factors(d.circuit().netlist(), &stats, &bti, 7.0);
        let crit = d.critical_delay_ns(Some(&f)).unwrap();
        println!(
            "gate target {target}: circuit growth {:+.2}%",
            100.0 * (crit / fresh - 1.0)
        );
    }
}
