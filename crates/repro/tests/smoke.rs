//! Smoke tests: every experiment runs at Quick scale and produces
//! structurally sound reports with the paper's qualitative shape.

use agemul_repro::{experiments, Context, Scale};

fn cell_f64(t: &agemul_repro::Table, row: usize, col: usize) -> f64 {
    t.cell(row, col)
        .unwrap()
        .trim_end_matches('%')
        .trim_start_matches('+')
        .parse()
        .unwrap()
}

#[test]
fn every_experiment_id_dispatches() {
    // One shared context so profiles are computed once.
    let mut ctx = Context::new(Scale::Quick);
    for id in ["table1", "table2", "fig9-10", "fig25"] {
        let report = experiments::run_by_id(&mut ctx, id).unwrap();
        assert!(!report.tables.is_empty(), "{id} produced no tables");
        for t in &report.tables {
            assert!(t.row_count() > 0, "{id}: empty table {}", t.title());
        }
    }
    assert!(experiments::run_by_id(&mut ctx, "bogus").is_err());
}

#[test]
fn fig13_has_u_shape_and_beats_fixed_latency() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::fig13(&mut ctx).unwrap();
    // Skip-7 table: latency at the extremes exceeds the interior minimum.
    let t = &report.tables[0];
    let first = cell_f64(t, 0, 1);
    let last = cell_f64(t, t.row_count() - 1, 1);
    let min = (0..t.row_count())
        .map(|r| cell_f64(t, r, 1))
        .fold(f64::INFINITY, f64::min);
    assert!(
        min < first && min < last,
        "no U-shape: {min} vs {first}/{last}"
    );
    // And the minimum undercuts the FLCB constant (1.734 ns).
    assert!(min < 1.6, "A-VLCB best {min} does not beat FLCB");
}

#[test]
fn fig16_errors_fall_with_period() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::fig16(&mut ctx).unwrap();
    let t = &report.tables[0]; // CB table, Skip-7 column
    let first = cell_f64(t, 0, 1);
    let last = cell_f64(t, t.row_count() - 1, 1);
    assert!(first > last, "errors did not fall: {first} → {last}");
    assert_eq!(last, 0.0, "long periods must be error-free");
}

#[test]
fn fig19_22_adaptive_never_has_more_errors() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::fig19_22(&mut ctx).unwrap();
    assert_eq!(report.tables.len(), 4);
    for t in &report.tables {
        for r in 0..t.row_count() {
            let traditional = cell_f64(t, r, 1);
            let adaptive = cell_f64(t, r, 2);
            assert!(
                adaptive <= traditional + 1e-9,
                "{}: row {r}: {adaptive} > {traditional}",
                t.title()
            );
        }
    }
}

#[test]
fn fig26_adaptive_latency_is_flat_while_fixed_grows() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::fig26(&mut ctx).unwrap();
    let latency = &report.tables[0];
    let last = latency.row_count() - 1;
    // Columns: year, AM, FLCB, FLRB, A-VLCB, A-VLRB (normalized).
    let am_growth = cell_f64(latency, last, 1) / cell_f64(latency, 0, 1);
    let avlcb_growth = cell_f64(latency, last, 4) / cell_f64(latency, 0, 4);
    assert!(am_growth > 1.10, "AM grew only {am_growth}");
    assert!(avlcb_growth < 1.05, "A-VLCB grew {avlcb_growth}");
    // The adaptive design stays far below the aged fixed-latency twin and
    // within a whisker of the aged AM (the exact AM crossover year is
    // seed-sensitive at Quick scale).
    assert!(cell_f64(latency, last, 4) < cell_f64(latency, last, 2));
    assert!(cell_f64(latency, last, 4) < 1.05 * cell_f64(latency, last, 1));
}

#[test]
fn extensions_confirm_bypassing_specificity() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::extensions(&mut ctx).unwrap();
    let t = &report.tables[0];
    // Rows: AM, CB, RB, WAL, BOOTH; col 4 = delay/zeros correlation.
    let cb_corr = cell_f64(t, 1, 4);
    let wal_corr = cell_f64(t, 3, 4);
    assert!(cb_corr < -0.6, "CB correlation too weak: {cb_corr}");
    assert!(
        wal_corr.abs() < 0.5,
        "Wallace correlation unexpectedly strong"
    );
    // Col 6 = best A-VL vs fixed: negative (gain) for CB, positive for WAL.
    assert!(cell_f64(t, 1, 6) < 0.0);
    assert!(cell_f64(t, 3, 6) > 0.0);
}

#[test]
fn csv_round_trip_has_matching_columns() {
    let mut ctx = Context::new(Scale::Quick);
    let report = experiments::table1(&mut ctx).unwrap();
    let csv = report.tables[0].to_csv();
    let mut lines = csv.lines();
    let headers = lines.next().unwrap().split(',').count();
    for line in lines.filter(|l| !l.starts_with('#')) {
        assert_eq!(line.split(',').count(), headers, "ragged CSV: {line}");
    }
}
