//! Deterministic, seeded fault injection for the agemul stack.
//!
//! The crate is a process-global *failpoint registry*. Production code
//! declares named sites (`ckpt/rename`, `serve/write`, `flight/publish`, …)
//! by calling [`hit`] at the instant a fault could strike; test harnesses
//! and the chaos-soak runner [`arm`] the registry with a [`ChaosPlan`] —
//! a seed plus per-site rules — and every decision is a pure function of
//! `(seed, site, invocation-index)` via a SplitMix64 finalizer, so any
//! observed failure sequence replays exactly from its seed.
//!
//! Design constraints:
//!
//! - **Zero cost disarmed.** [`armed`] is a single relaxed atomic load;
//!   production binaries never pay more than that branch.
//! - **Scoped blast radius.** Each rule carries a `scope` substring matched
//!   against the caller-supplied context (a checkpoint path, a server
//!   address, a design label), so concurrently running tests cannot trip
//!   each other's schedules.
//! - **Exclusive arming.** [`arm`] holds a process-wide lock for the life
//!   of the returned [`ChaosGuard`]; chaos sections serialize instead of
//!   interleaving, which keeps per-site invocation counters deterministic.
//!
//! [`ChaosStream`] wraps any `Read + Write` transport and expresses the
//! byte-level fault shapes (bit flips, torn writes, stalls, resets) the
//! serve transport seam needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// Denominator for [`SiteRule::rate_ppm`]: rules fire `rate_ppm` times per
/// million invocations (deterministically, not statistically).
pub const PPM: u32 = 1_000_000;

/// The shape of an injected fault. Each seam interprets the kinds it lists
/// in its rules; kinds a seam cannot express are simply never scheduled for
/// it (plans name kinds per site).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright with a typed IO error (ENOSPC-like).
    IoError,
    /// A prefix of the operation's effect lands, then it fails (torn temp
    /// write, truncated read-back, partial frame write then broken pipe).
    Torn,
    /// One bit of the payload is flipped (on-disk corruption, a flaky NIC).
    BitFlip,
    /// The operation is delayed by a bounded, seed-derived interval.
    Stall,
    /// The connection is reset abruptly (peer vanished mid-frame).
    Disconnect,
    /// The executing thread panics (leader death inside single-flight).
    Panic,
}

/// One scheduled fault decision: which kind struck, plus 64 bits of
/// seed-derived entropy the seam uses to pick offsets (which bit to flip,
/// where to tear a write, how long to stall).
#[derive(Clone, Copy, Debug)]
pub struct Shot {
    /// The fault shape to express.
    pub kind: FaultKind,
    /// Deterministic entropy for fault parameters.
    pub entropy: u64,
}

/// A per-site injection rule inside a [`ChaosPlan`].
#[derive(Clone, Debug)]
pub struct SiteRule {
    /// Exact failpoint name, e.g. `"ckpt/write_tmp"` or `"serve/read"`.
    pub site: String,
    /// Substring that must appear in the call's context argument for the
    /// rule to apply (empty = any context). Scoping by a unique temp-dir
    /// path or server address keeps concurrent tests isolated.
    pub scope: String,
    /// Fire rate in parts per million of matching invocations
    /// ([`PPM`] = every invocation).
    pub rate_ppm: u32,
    /// Fault kinds to rotate through; the scheduled kind for a firing
    /// invocation is itself seed-derived.
    pub kinds: Vec<FaultKind>,
}

/// A seeded fault schedule: the seed plus the site rules it drives.
///
/// Built with the fluent [`ChaosPlan::rule`] helper:
///
/// ```
/// use agemul_chaos::{ChaosPlan, FaultKind};
/// let plan = ChaosPlan::new(0xC0FFEE)
///     .rule("ckpt/rename", "/tmp/run-7", 250_000, &[FaultKind::IoError]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Root seed; every decision is a pure function of this, the site name,
    /// and the per-site invocation index.
    pub seed: u64,
    /// The site rules in effect while the plan is armed.
    pub rules: Vec<SiteRule>,
}

impl ChaosPlan {
    /// Create an empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule (builder style). `scope` is matched as a substring of
    /// the per-call context; pass `""` to match everything.
    #[must_use]
    pub fn rule(mut self, site: &str, scope: &str, rate_ppm: u32, kinds: &[FaultKind]) -> Self {
        self.rules.push(SiteRule {
            site: site.to_string(),
            scope: scope.to_string(),
            rate_ppm,
            kinds: kinds.to_vec(),
        });
        self
    }
}

/// SplitMix64 finalizer: the workspace-standard bit mixer (same constants as
/// the harness seed-bump path), used here to turn `(seed, site, invocation)`
/// into a decision word.
#[must_use]
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; folds site names into the decision seed.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn decision(seed: u64, site: &str, invocation: u64) -> u64 {
    splitmix(splitmix(seed ^ fnv1a(site.as_bytes())).wrapping_add(invocation))
}

struct Armed {
    seed: u64,
    rules: Vec<SiteRule>,
    /// Invocation counter per rule (monotonic while armed).
    counters: Vec<AtomicU64>,
    /// Faults actually injected per rule.
    injected: Vec<AtomicU64>,
}

static ARMED_FLAG: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static RwLock<Option<Armed>> {
    static REG: OnceLock<RwLock<Option<Armed>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(None))
}

fn exclusive() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Keeps a [`ChaosPlan`] armed; dropping it disarms the registry and
/// releases the process-wide chaos lock.
pub struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// Faults injected so far per site rule, in plan order, as
    /// `(site, injected)` pairs. Reading does not reset the counters.
    #[must_use]
    pub fn injected_by_site(&self) -> Vec<(String, u64)> {
        let reg = registry().read().unwrap_or_else(PoisonError::into_inner);
        match reg.as_ref() {
            Some(armed) => armed
                .rules
                .iter()
                .zip(armed.injected.iter())
                .map(|(r, n)| (r.site.clone(), n.load(Ordering::Relaxed)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total faults injected across all rules since arming.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected_by_site().iter().map(|(_, n)| n).sum()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED_FLAG.store(false, Ordering::SeqCst);
        let mut reg = registry().write().unwrap_or_else(PoisonError::into_inner);
        *reg = None;
    }
}

/// Arm the registry with `plan`. Blocks until any other armed section ends
/// (chaos sections serialize process-wide), then returns a guard that
/// disarms on drop.
#[must_use]
pub fn arm(plan: ChaosPlan) -> ChaosGuard {
    // A panic while armed is an expected outcome (injected leader death on a
    // test thread), so recover the lock rather than poisoning forever.
    let lock = exclusive().lock().unwrap_or_else(PoisonError::into_inner);
    let counters = plan.rules.iter().map(|_| AtomicU64::new(0)).collect();
    let injected = plan.rules.iter().map(|_| AtomicU64::new(0)).collect();
    {
        let mut reg = registry().write().unwrap_or_else(PoisonError::into_inner);
        *reg = Some(Armed {
            seed: plan.seed,
            rules: plan.rules,
            counters,
            injected,
        });
    }
    ARMED_FLAG.store(true, Ordering::SeqCst);
    ChaosGuard { _lock: lock }
}

/// Fast disarmed check: a single relaxed load. Production seams gate any
/// per-call work (context formatting, etc.) behind this.
#[inline]
#[must_use]
pub fn armed() -> bool {
    ARMED_FLAG.load(Ordering::Relaxed)
}

/// Consult the registry at failpoint `site` with call context `ctx`.
///
/// Returns `Some(Shot)` when the armed plan schedules a fault for this
/// invocation, `None` otherwise (including when disarmed). The first rule
/// whose site matches exactly and whose scope substring appears in `ctx`
/// claims the invocation; its counter advances whether or not it fires, so
/// schedules are stable under interleaving of *non-matching* calls.
#[must_use]
pub fn hit(site: &str, ctx: &str) -> Option<Shot> {
    if !armed() {
        return None;
    }
    let reg = registry().read().unwrap_or_else(PoisonError::into_inner);
    let armed = reg.as_ref()?;
    for (i, rule) in armed.rules.iter().enumerate() {
        if rule.site != site {
            continue;
        }
        if !rule.scope.is_empty() && !ctx.contains(&rule.scope) {
            continue;
        }
        let n = armed.counters[i].fetch_add(1, Ordering::Relaxed);
        let word = decision(armed.seed, site, n);
        if rule.kinds.is_empty() || (word % u64::from(PPM)) as u32 >= rule.rate_ppm {
            return None;
        }
        let kind = rule.kinds[((word >> 32) as usize) % rule.kinds.len()];
        armed.injected[i].fetch_add(1, Ordering::Relaxed);
        return Some(Shot {
            kind,
            entropy: splitmix(word),
        });
    }
    None
}

/// Panic-only failpoint helper: panics (with a `chaos:`-prefixed payload)
/// when the armed plan schedules [`FaultKind::Panic`] here; any other
/// scheduled kind at a panic-only site is ignored.
pub fn maybe_panic(site: &str, ctx: &str) {
    if !armed() {
        return;
    }
    if let Some(shot) = hit(site, ctx) {
        if shot.kind == FaultKind::Panic {
            panic!("chaos: injected panic at {site}");
        }
    }
}

/// Upper bound on an injected [`FaultKind::Stall`] in the stream adapter;
/// long enough to exercise timeout paths, short enough that thousand-
/// schedule soaks stay fast.
pub const MAX_STALL: Duration = Duration::from_millis(40);

/// A fault-wrapping transport: forwards to the inner `Read`/`Write` but
/// consults the failpoints `{prefix}/read` and `{prefix}/write` on every
/// call, expressing byte corruption, torn writes, stalls, and resets.
///
/// The wrapper is transparent when the registry is disarmed (one relaxed
/// atomic load per call).
pub struct ChaosStream<S> {
    inner: S,
    read_site: String,
    write_site: String,
    ctx: String,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`; failpoint sites are `{prefix}/read` and
    /// `{prefix}/write`, and `ctx` is the scope-matching context (e.g. the
    /// server's bound address).
    pub fn new(inner: S, prefix: &str, ctx: impl Into<String>) -> Self {
        Self {
            inner,
            read_site: format!("{prefix}/read"),
            write_site: format!("{prefix}/write"),
            ctx: ctx.into(),
        }
    }

    /// Shared access to the wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, returning the inner transport.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

fn stall_for(entropy: u64) -> Duration {
    let cap = MAX_STALL.as_millis() as u64;
    Duration::from_millis(1 + entropy % cap)
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if armed() {
            if let Some(shot) = hit(&self.read_site, &self.ctx) {
                match shot.kind {
                    FaultKind::Disconnect => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "chaos: injected reset on read",
                        ));
                    }
                    FaultKind::IoError => {
                        return Err(io::Error::other("chaos: injected read failure"));
                    }
                    FaultKind::Stall => std::thread::sleep(stall_for(shot.entropy)),
                    FaultKind::BitFlip => {
                        let n = self.inner.read(buf)?;
                        if n > 0 {
                            let i = (shot.entropy as usize) % n;
                            buf[i] ^= 1 << ((shot.entropy >> 32) % 8);
                        }
                        return Ok(n);
                    }
                    FaultKind::Torn => {
                        // A short read is legal for any stream; express
                        // "torn" as delivering a single byte so framing
                        // code must handle maximal fragmentation.
                        if buf.is_empty() {
                            return self.inner.read(buf);
                        }
                        return self.inner.read(&mut buf[..1]);
                    }
                    FaultKind::Panic => panic!("chaos: injected panic on read"),
                }
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if armed() {
            if let Some(shot) = hit(&self.write_site, &self.ctx) {
                match shot.kind {
                    FaultKind::Disconnect => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "chaos: injected reset on write",
                        ));
                    }
                    FaultKind::IoError => {
                        return Err(io::Error::other("chaos: injected write failure"));
                    }
                    FaultKind::Stall => std::thread::sleep(stall_for(shot.entropy)),
                    FaultKind::BitFlip => {
                        if buf.is_empty() {
                            return self.inner.write(buf);
                        }
                        let mut corrupt = buf.to_vec();
                        let i = (shot.entropy as usize) % corrupt.len();
                        corrupt[i] ^= 1 << ((shot.entropy >> 32) % 8);
                        return self.inner.write(&corrupt);
                    }
                    FaultKind::Torn => {
                        // Deliver a strict prefix, then report the pipe
                        // broken: the peer sees a half-written frame.
                        if buf.is_empty() {
                            return self.inner.write(buf);
                        }
                        let cut = 1 + (shot.entropy as usize) % buf.len().max(1);
                        let cut = cut.min(buf.len().saturating_sub(1)).max(1);
                        let _ = self.inner.write(&buf[..cut]);
                        let _ = self.inner.flush();
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "chaos: injected torn write",
                        ));
                    }
                    FaultKind::Panic => panic!("chaos: injected panic on write"),
                }
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(site: &str, ctx: &str, n: usize) -> Vec<Option<FaultKind>> {
        (0..n).map(|_| hit(site, ctx).map(|s| s.kind)).collect()
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let plan = ChaosPlan::new(42).rule(
            "t/site",
            "",
            300_000,
            &[FaultKind::IoError, FaultKind::BitFlip, FaultKind::Torn],
        );
        let first = {
            let _g = arm(plan.clone());
            drain("t/site", "anything", 64)
        };
        let second = {
            let _g = arm(plan);
            drain("t/site", "anything", 64)
        };
        assert_eq!(first, second);
        assert!(
            first.iter().any(Option::is_some),
            "rate 30% over 64 draws must fire"
        );
        assert!(first.iter().any(Option::is_none), "rate 30% must also skip");
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let _g = arm(ChaosPlan::new(seed).rule("t/seed", "", 500_000, &[FaultKind::IoError]));
            drain("t/seed", "", 64)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn rate_bounds_are_exact() {
        let _g = arm(ChaosPlan::new(7)
            .rule("t/never", "", 0, &[FaultKind::IoError])
            .rule("t/always", "", PPM, &[FaultKind::Torn]));
        assert!(drain("t/never", "", 32).iter().all(Option::is_none));
        assert!(drain("t/always", "", 32)
            .iter()
            .all(|k| *k == Some(FaultKind::Torn)));
    }

    #[test]
    fn scope_filters_by_ctx_substring() {
        let _g = arm(ChaosPlan::new(9).rule("t/scoped", "run-A", PPM, &[FaultKind::IoError]));
        assert!(hit("t/scoped", "/tmp/run-B/ckpt.json").is_none());
        assert!(hit("t/scoped", "/tmp/run-A/ckpt.json").is_some());
        assert!(hit("t/other", "/tmp/run-A/ckpt.json").is_none());
    }

    #[test]
    fn disarmed_is_silent_and_guard_disarms() {
        assert!(hit("t/any", "").is_none());
        let g = arm(ChaosPlan::new(3).rule("t/any", "", PPM, &[FaultKind::IoError]));
        assert!(armed());
        assert!(hit("t/any", "").is_some());
        assert_eq!(g.injected_total(), 1);
        drop(g);
        // Another test may re-arm immediately (tests run in parallel), but
        // no other plan names this site, so the hit must stay silent.
        assert!(hit("t/any", "").is_none());
    }

    #[test]
    fn maybe_panic_fires_only_for_panic_kind() {
        let _g = arm(ChaosPlan::new(11)
            .rule("t/quiet", "", PPM, &[FaultKind::IoError])
            .rule("t/boom", "", PPM, &[FaultKind::Panic]));
        maybe_panic("t/quiet", ""); // scheduled kind is not Panic: no-op
        let err = std::panic::catch_unwind(|| maybe_panic("t/boom", ""));
        assert!(err.is_err());
    }

    #[test]
    fn stream_bitflip_corrupts_exactly_one_bit() {
        let _g = arm(ChaosPlan::new(5).rule("s/write", "", PPM, &[FaultKind::BitFlip]));
        let mut out = Vec::new();
        let mut s = ChaosStream::new(&mut out, "s", "ctx");
        let payload = vec![0u8; 16];
        let n = s.write(&payload).unwrap();
        assert_eq!(n, 16);
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
    }

    #[test]
    fn stream_torn_write_delivers_strict_prefix_then_fails() {
        let _g = arm(ChaosPlan::new(6).rule("s/write", "", PPM, &[FaultKind::Torn]));
        let mut out = Vec::new();
        let mut s = ChaosStream::new(&mut out, "s", "ctx");
        let err = s.write(&[7u8; 32]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(
            !out.is_empty() && out.len() < 32,
            "torn write is a strict prefix"
        );
    }

    #[test]
    fn stream_disconnect_and_passthrough_when_disarmed() {
        {
            let _g = arm(ChaosPlan::new(8).rule("s/read", "", PPM, &[FaultKind::Disconnect]));
            let data = [1u8, 2, 3];
            let mut s = ChaosStream::new(&data[..], "s", "ctx");
            let mut buf = [0u8; 3];
            let err = s.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
        let data = [1u8, 2, 3];
        let mut s = ChaosStream::new(&data[..], "s", "ctx");
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 3);
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn counters_are_per_rule_and_reported() {
        let g = arm(ChaosPlan::new(13)
            .rule("t/a", "", PPM, &[FaultKind::IoError])
            .rule("t/b", "", 0, &[FaultKind::IoError]));
        for _ in 0..5 {
            let _ = hit("t/a", "");
            let _ = hit("t/b", "");
        }
        let by_site = g.injected_by_site();
        assert_eq!(by_site[0], ("t/a".to_string(), 5));
        assert_eq!(by_site[1], ("t/b".to_string(), 0));
    }
}
