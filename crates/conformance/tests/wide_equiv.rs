//! Wide-lane bit-identity: the scalar, 64-lane, 256-lane, and 512-lane
//! kernels must agree on every net of every pattern over the conformance
//! generator's random netlists — clean and under lane-masked fault
//! overlays, where a block replicates the 64-bit mask per chunk.

use agemul_conformance::gen::{arb_gate, build_netlist, input_vector, GEN_INPUTS};
use agemul_logic::Logic;
use agemul_netlist::{BlockSim, FaultKind, FaultOverlay, FuncSim, NetId, Netlist};
use proptest::prelude::*;

/// Evaluates `patterns` through a `64 × W`-lane kernel (chunked at its
/// native batch width) and returns every net's value per pattern.
fn run_wide<const W: usize>(
    n: &Netlist,
    patterns: &[Vec<Logic>],
    overlay: Option<&FaultOverlay>,
) -> Vec<Vec<Logic>> {
    let topo = n.topology().unwrap();
    let mut sim = BlockSim::<W>::new(n, &topo);
    let mut out = Vec::with_capacity(patterns.len());
    for chunk in patterns.chunks(BlockSim::<W>::LANES) {
        match overlay {
            Some(o) => sim.eval_batch_with_overlay(chunk, o).unwrap(),
            None => sim.eval_batch(chunk).unwrap(),
        };
        for lane in 0..chunk.len() {
            out.push(
                (0..n.net_count())
                    .map(|idx| sim.value(NetId::from_index(idx), lane))
                    .collect(),
            );
        }
    }
    out
}

/// A random overlay: up to three faults on generator-chosen nets, each
/// with an arbitrary 64-bit lane mask.
fn overlay_from(n: &Netlist, faults: &[(u64, u8, u64)]) -> FaultOverlay {
    let mut o = FaultOverlay::new(n);
    for &(net_sel, kind_sel, lanes) in faults {
        let net = NetId::from_index((net_sel % n.net_count() as u64) as usize);
        let kind = match kind_sel % 3 {
            0 => FaultKind::StuckAt0,
            1 => FaultKind::StuckAt1,
            _ => FaultKind::Flip,
        };
        o.add(net, kind, lanes).unwrap();
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean sweeps: every wide width reproduces the scalar interpreter
    /// exactly, net for net, pattern for pattern.
    #[test]
    fn wide_clean_matches_scalar(
        recipes in proptest::collection::vec(arb_gate(), 1..24),
        workload in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let n = build_netlist(&recipes, GEN_INPUTS);
        let topo = n.topology().unwrap();
        let patterns: Vec<Vec<Logic>> =
            workload.iter().map(|&w| input_vector(w, GEN_INPUTS)).collect();

        let mut fsim = FuncSim::new(&n, &topo);
        let scalar: Vec<Vec<Logic>> = patterns
            .iter()
            .map(|p| {
                fsim.eval(p).unwrap();
                fsim.values().to_vec()
            })
            .collect();

        prop_assert_eq!(&run_wide::<1>(&n, &patterns, None), &scalar);
        prop_assert_eq!(&run_wide::<4>(&n, &patterns, None), &scalar);
        prop_assert_eq!(&run_wide::<8>(&n, &patterns, None), &scalar);
    }

    /// Overlay sweeps: a wide batch with an arbitrary lane-masked overlay
    /// equals the 64-lane kernel on the same workload — the mask
    /// replication contract (`lane i` faulted iff bit `i % 64` set) makes
    /// the 64-lane run the exact per-chunk reference.
    #[test]
    fn wide_overlay_matches_64_lane(
        recipes in proptest::collection::vec(arb_gate(), 1..24),
        workload in proptest::collection::vec(any::<u64>(), 1..40),
        faults in proptest::collection::vec(
            (any::<u64>(), any::<u8>(), any::<u64>()), 1..4),
    ) {
        let n = build_netlist(&recipes, GEN_INPUTS);
        let patterns: Vec<Vec<Logic>> =
            workload.iter().map(|&w| input_vector(w, GEN_INPUTS)).collect();
        let overlay = overlay_from(&n, &faults);

        let narrow = run_wide::<1>(&n, &patterns, Some(&overlay));
        prop_assert_eq!(&run_wide::<4>(&n, &patterns, Some(&overlay)), &narrow);
        prop_assert_eq!(&run_wide::<8>(&n, &patterns, Some(&overlay)), &narrow);

        // Lane 0 of the masked run additionally matches the scalar view.
        let topo = n.topology().unwrap();
        let mut fsim = FuncSim::new(&n, &topo);
        for (pat_idx, pattern) in patterns.iter().enumerate() {
            if pat_idx % BlockSim::<1>::LANES == 0 {
                fsim.eval_with_overlay(pattern, &overlay).unwrap();
                prop_assert_eq!(&narrow[pat_idx], &fsim.values().to_vec());
            }
        }
    }
}
