//! Acceptance tests for the conformance subsystem itself: the seeded
//! 200-case gate is divergence-free, the shrinker reduces an injected
//! eval bug to a ≤ 8-gate repro, and the multiplier-level invariant
//! battery holds for the paper's architectures.

use agemul::PatternSet;
use agemul_circuits::MultiplierKind;
use agemul_conformance::{
    check_case, check_multiplier_conformance, gen::input_vector, reference_eval, repro_artifact,
    run_gate, shrink_case, Case, Json,
};
use agemul_logic::GateKind;
use agemul_netlist::FuncSim;

/// The same fixed seed the verify gate and `repro conformance` use.
const GATE_SEED: u64 = 0xC04F_0421;

#[test]
fn seeded_gate_200_cases_zero_divergence() {
    let outcome = run_gate(GATE_SEED, 200).unwrap();
    assert_eq!(outcome.cases, 200);
    let artifacts: Vec<&str> = outcome
        .divergent
        .iter()
        .map(|d| d.artifact.as_str())
        .collect();
    assert!(
        outcome.is_clean(),
        "{} divergent cases, minimized repros:\n{}",
        outcome.divergent.len(),
        artifacts.join("\n")
    );
}

/// A buggy engine (here: a reference interpreter with every XOR output
/// inverted) must shrink to a repro small enough to debug by eye.
#[test]
fn injected_eval_bug_shrinks_to_minimal_repro() {
    // The failure predicate a real divergence hunt would use: does any
    // workload step disagree between the sabotaged interpreter and
    // FuncSim?
    let mut fails = |case: &Case| {
        let n = case.netlist();
        let Ok(topo) = n.topology() else {
            return false;
        };
        let mut fsim = FuncSim::new(&n, &topo);
        case.workload.iter().any(|&w| {
            let pattern = input_vector(w, case.inputs);
            fsim.eval(&pattern).unwrap();
            fsim.values() != reference_eval(&n, &pattern, None, Some(GateKind::Xor))
        })
    };

    let case = (0..256)
        .map(Case::generate)
        .find(|c| fails(c))
        .expect("the injected XOR bug must surface within 256 seeds");
    let minimized = shrink_case(&case, &mut fails);

    assert!(
        minimized.gates.len() <= 8,
        "repro not minimal: {} gates in {}",
        minimized.gates.len(),
        minimized.to_json()
    );
    assert!(fails(&minimized), "minimized case no longer reproduces");
    assert!(minimized.gates.iter().any(|g| g.kind() == GateKind::Xor));

    // The artifact replays: parse it back and re-trigger the bug.
    let artifact = repro_artifact(&minimized, &[]);
    let doc = Json::parse(&artifact).unwrap();
    let replayed = Case::from_json(&doc.get("case").unwrap().to_string()).unwrap();
    assert_eq!(replayed, minimized);
    assert!(fails(&replayed));
}

/// Shrunk artifacts must survive the full JSON round trip for every
/// generator axis, not just the seeds the gate happens to visit.
#[test]
fn case_json_round_trip_across_seeds() {
    for seed in 0..256 {
        let case = Case::generate(seed);
        let back = Case::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case, "seed {seed}");
        // A round-tripped case must also check identically.
        assert_eq!(check_case(&back).unwrap(), check_case(&case).unwrap());
    }
}

#[test]
fn multiplier_invariants_hold_for_paper_architectures() {
    for (kind, pairs) in [
        (MultiplierKind::ColumnBypass, 160),
        (MultiplierKind::RowBypass, 160),
        (MultiplierKind::Array, 120),
    ] {
        let patterns = PatternSet::uniform(8, pairs, 0x5EED ^ pairs as u64);
        let violations = check_multiplier_conformance(kind, 8, patterns.pairs()).unwrap();
        assert!(violations.is_empty(), "{kind:?}: {violations:#?}");
    }
}
