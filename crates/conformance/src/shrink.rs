//! Delta-debugging reduction of divergent cases.
//!
//! When the oracle flags a case, a 40-gate 7-step repro is nearly useless
//! for debugging a kernel. [`shrink_case`] runs classic ddmin over the
//! gate list, then over the workload, then a handful of targeted
//! simplifications (drop the fault, flatten the delays, zero the input
//! words), re-checking the caller's failure predicate at every step — the
//! result is a local minimum: removing any single gate or input word makes
//! the failure disappear.

use crate::case::{Case, DelaySpec};
use crate::json::Json;
use crate::oracle::Divergence;

/// Reduces `case` to a locally minimal one that still satisfies `fails`.
///
/// `fails` must return `true` for the input case (the shrinker only
/// navigates inside the failing region); it is invoked many times, so keep
/// it as cheap as a single oracle run. The gate list shrinks first —
/// recipes reference inputs modulo the nets built so far, so any
/// subsequence of the gate list is still a well-formed circuit — then the
/// workload, then the delay/fault axes.
pub fn shrink_case(case: &Case, fails: &mut dyn FnMut(&Case) -> bool) -> Case {
    debug_assert!(fails(case), "shrink_case needs a failing starting point");
    let mut best = case.clone();

    // ddmin over gates, to a fixpoint (removing one chunk can enable
    // removing another that was previously load-bearing).
    loop {
        let before = best.gates.len();
        best = ddmin_list(
            &best,
            fails,
            |c| c.gates.len(),
            |c, keep| {
                let mut next = c.clone();
                next.gates = keep.iter().map(|&i| c.gates[i]).collect();
                next
            },
        );
        if best.gates.len() == before {
            break;
        }
    }

    // ddmin over workload words; an empty workload checks nothing, so
    // always keep at least one word.
    best = ddmin_list(
        &best,
        fails,
        |c| c.workload.len(),
        |c, keep| {
            let mut next = c.clone();
            next.workload = keep.iter().map(|&i| c.workload[i]).collect();
            if next.workload.is_empty() {
                next.workload.push(c.workload[0]);
            }
            next
        },
    );

    // Targeted simplifications: each applied only if the failure survives.
    let simplifications: [fn(&Case) -> Case; 3] = [
        |c| {
            let mut next = c.clone();
            next.fault = None;
            next
        },
        |c| {
            let mut next = c.clone();
            next.delay = DelaySpec::Uniform;
            next
        },
        |c| {
            let mut next = c.clone();
            next.workload.iter_mut().for_each(|w| *w = 0);
            next
        },
    ];
    for simplify in simplifications {
        let candidate = simplify(&best);
        if candidate != best && fails(&candidate) {
            best = candidate;
        }
    }
    best
}

/// One ddmin pass over an indexed list axis of the case: tries dropping
/// chunks of decreasing size until single-element removal no longer helps.
fn ddmin_list(
    case: &Case,
    fails: &mut dyn FnMut(&Case) -> bool,
    len: fn(&Case) -> usize,
    rebuild: fn(&Case, &[usize]) -> Case,
) -> Case {
    let mut best = case.clone();
    let mut chunk = len(&best).div_ceil(2).max(1);
    while chunk >= 1 {
        let mut progressed = false;
        let mut start = 0;
        while start < len(&best) {
            let keep: Vec<usize> = (0..len(&best))
                .filter(|&i| i < start || i >= start + chunk)
                .collect();
            if keep.len() < len(&best) {
                let candidate = rebuild(&best, &keep);
                // The rebuild may re-add elements to keep the axis
                // non-empty; only a strictly smaller candidate counts as
                // progress, or a length-1 axis would loop forever.
                if len(&candidate) < len(&best) && fails(&candidate) {
                    best = candidate;
                    progressed = true;
                    // Indices shifted; retry from the same offset.
                    continue;
                }
            }
            start += chunk;
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk /= 2;
        }
    }
    best
}

/// Renders a minimized case and its divergences as a replayable JSON
/// artifact (parse the `case` field back with [`Case::from_json`]).
pub fn repro_artifact(case: &Case, divergences: &[Divergence]) -> String {
    let doc = Json::Obj(vec![
        (
            "format".into(),
            Json::Str("agemul-conformance-repro/1".into()),
        ),
        (
            "case".into(),
            Json::parse(&case.to_json()).expect("Case::to_json emits valid JSON"),
        ),
        (
            "divergences".into(),
            Json::Arr(
                divergences
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("left".into(), Json::Str(d.left.to_string())),
                            ("right".into(), Json::Str(d.right.to_string())),
                            ("step".into(), Json::UInt(d.step as u64)),
                            ("site".into(), Json::Str(d.site.clone())),
                            ("detail".into(), Json::Str(d.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agemul_logic::GateKind;

    #[test]
    fn shrinks_to_a_single_guilty_gate() {
        // Failure predicate: the case contains at least one XOR gate.
        // The minimum for that predicate is exactly one gate.
        let mut fails = |c: &Case| c.gates.iter().any(|g| g.kind() == GateKind::Xor);
        let case = (0..64)
            .map(Case::generate)
            .find(|c| fails(c))
            .expect("some small seed generates an XOR");
        let small = shrink_case(&case, &mut fails);
        assert_eq!(small.gates.len(), 1);
        assert_eq!(small.gates[0].kind(), GateKind::Xor);
        assert_eq!(small.workload.len(), 1);
        assert_eq!(small.fault, None);
        assert_eq!(small.delay, DelaySpec::Uniform);
    }

    #[test]
    fn artifact_case_replays() {
        let case = Case::generate(5);
        let artifact = repro_artifact(&case, &[]);
        let doc = Json::parse(&artifact).unwrap();
        let replayed = Case::from_json(&doc.get("case").unwrap().to_string()).unwrap();
        assert_eq!(replayed, case);
    }
}
