//! Cross-engine conformance subsystem.
//!
//! The workspace carries four ways of evaluating the same netlist —
//! [`FuncSim`](agemul_netlist::FuncSim) (zero-delay scalar),
//! [`BatchSim`](agemul_netlist::BatchSim) (64-lane bit-parallel),
//! [`EventSim`](agemul_netlist::EventSim) (event-driven femtosecond
//! timing), and [`LevelSim`](agemul_netlist::LevelSim) (levelized
//! incremental kernel) — plus fault overlays and a profile cache. Every
//! future performance PR must preserve bit- and femtosecond-identity
//! across all of them, so this crate turns the scattered one-off
//! equivalence tests into a permanent correctness-tooling layer:
//!
//! * [`gen`] — the shared random-netlist generator that the property
//!   suites in `agemul-netlist` also use (one `GateRecipe` scheme instead
//!   of three private copies);
//! * [`Case`] — a seeded, self-contained conformance case: netlist recipe,
//!   workload, delay assignment, and optional fault, replayable from JSON;
//! * [`check_case`] — the differential oracle: every case through all four
//!   engines plus an independent reference interpreter, with and without a
//!   [`FaultOverlay`](agemul_netlist::FaultOverlay) (including the
//!   attach → detach waveform-identity axis), diffing settled values on
//!   every net/lane and femtosecond [`PatternTiming`](agemul_netlist::PatternTiming);
//! * [`check_multiplier_conformance`] — the metamorphic-invariant checker
//!   encoding the paper's AHL/Razor/aging laws: judging-block
//!   monotonicity, BTI stress-delay monotonicity, the cycle-accounting
//!   identity `total = 1·one_cycle + 2·two_cycle + penalty·errors`, and
//!   cache-hit ≡ cache-miss (cold and warm
//!   [`ProfileCache`](agemul::ProfileCache));
//! * [`shrink_case`] — a delta-debugging reducer that minimizes any
//!   divergent case to a small gate-level repro, dumped as a replayable
//!   JSON artifact by [`repro_artifact`];
//! * [`run_gate`] — the seeded conformance gate wired into
//!   `scripts/verify.sh` and the `repro conformance` subcommand.
//!
//! # Example
//!
//! ```
//! use agemul_conformance::{check_case, Case};
//!
//! let case = Case::generate(42);
//! let divergences = check_case(&case).unwrap();
//! assert!(divergences.is_empty(), "engines disagreed: {divergences:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod gate;
pub mod gen;
mod invariants;
mod json;
mod oracle;
mod shrink;

pub use case::{Case, DelaySpec, FaultCase};
pub use gate::{case_seed, run_gate, DivergentCase, GateOutcome};
pub use invariants::{check_multiplier_conformance, check_profile_laws, Violation};
pub use json::Json;
pub use oracle::{check_case, reference_eval, Divergence, EngineId};
pub use shrink::{repro_artifact, shrink_case};
