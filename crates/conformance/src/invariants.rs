//! Metamorphic invariants: the paper's laws, checked as executable
//! properties.
//!
//! The SOCC'12 architecture rests on claims that are relations between
//! runs, not single expected values — a stricter judging block only moves
//! operations from one cycle to two, BTI stress only inflates delay, every
//! Razor error costs exactly the penalty, and memoized profiles are
//! indistinguishable from freshly simulated ones. Those are ideal
//! metamorphic properties: each is checked here against real simulations,
//! so any engine/cache/judging change that bends a law fails the
//! conformance gate with the law's name attached.

use std::sync::Arc;

use agemul::{
    run_engine, CoreError, EngineConfig, JudgingBlock, MultiplierDesign, PatternProfile,
    ProfileCache, SimEngine,
};
use agemul_circuits::MultiplierKind;

/// One broken law.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that failed.
    pub law: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.law, self.detail)
    }
}

/// Checks the engine-replay laws on one profile over grids of clock
/// periods and skip numbers:
///
/// * **judging-block monotonicity** — `JudgingBlock::stricter` never turns
///   a two-cycle pattern into a one-cycle one, and (on full replays) the
///   traditional engine's one-cycle count is non-increasing in the skip
///   number;
/// * **cycle accounting** — `cycles = 1·one_cycle + 2·two_cycle +
///   penalty·errors` holds exactly for every adaptive/traditional ×
///   strict/lenient × period combination, and every operation is either a
///   one-cycle or a two-cycle one.
pub fn check_profile_laws(
    profile: &PatternProfile,
    periods: &[f64],
    skips: &[u32],
) -> Vec<Violation> {
    let mut violations = Vec::new();

    for &skip in skips {
        let block = JudgingBlock::new(skip);
        let stricter = block.stricter();
        for record in profile.records() {
            if stricter.is_one_cycle(record.zeros) && !block.is_one_cycle(record.zeros) {
                violations.push(Violation {
                    law: "judging-block monotonicity (per pattern)",
                    detail: format!(
                        "zeros={} one-cycle under skip {} but not skip {}",
                        record.zeros,
                        stricter.skip(),
                        block.skip()
                    ),
                });
            }
        }
    }

    for &period in periods {
        let mut previous_one_cycle = None;
        let mut sorted = skips.to_vec();
        sorted.sort_unstable();
        for &skip in &sorted {
            let metrics = run_engine(profile, &EngineConfig::traditional(period, skip));
            if let Some((prev_skip, prev)) = previous_one_cycle {
                if metrics.one_cycle_ops > prev {
                    violations.push(Violation {
                        law: "judging-block monotonicity (replay)",
                        detail: format!(
                            "period {period} ns: skip {skip} classified {} one-cycle ops, \
                             skip {prev_skip} only {prev}",
                            metrics.one_cycle_ops
                        ),
                    });
                }
            }
            previous_one_cycle = Some((skip, metrics.one_cycle_ops));
        }

        for &skip in skips {
            for adaptive in [false, true] {
                for strict in [false, true] {
                    let mut config = if adaptive {
                        EngineConfig::adaptive(period, skip)
                    } else {
                        EngineConfig::traditional(period, skip)
                    };
                    config.strict_two_cycle = strict;
                    let m = run_engine(profile, &config);
                    let expected = m.one_cycle_ops
                        + 2 * m.two_cycle_ops
                        + u64::from(config.error_penalty_cycles) * m.errors;
                    if m.cycles != expected {
                        violations.push(Violation {
                            law: "cycle-accounting identity",
                            detail: format!(
                                "period {period} ns, skip {skip}, adaptive={adaptive}, \
                                 strict={strict}: cycles={} but 1·{} + 2·{} + {}·{} = {expected}",
                                m.cycles,
                                m.one_cycle_ops,
                                m.two_cycle_ops,
                                config.error_penalty_cycles,
                                m.errors
                            ),
                        });
                    }
                    if m.operations != m.one_cycle_ops + m.two_cycle_ops {
                        violations.push(Violation {
                            law: "operation partition",
                            detail: format!(
                                "period {period} ns, skip {skip}: {} ops but {} one-cycle \
                                 + {} two-cycle",
                                m.operations, m.one_cycle_ops, m.two_cycle_ops
                            ),
                        });
                    }
                }
            }
        }
    }
    violations
}

/// Deterministic per-gate BTI factor vector (same shape the core
/// equivalence suite uses: spread over [1.0, 1.35] with a coprime stride
/// so neighbouring gates age differently).
fn aged_factors(design: &MultiplierDesign) -> Vec<f64> {
    let gates = design.circuit().netlist().gate_count();
    (0..gates)
        .map(|i| 1.0 + 0.35 * ((i * 13) % 29) as f64 / 29.0)
        .collect()
}

/// Runs the multiplier-level conformance battery for one design and
/// workload:
///
/// * **engine identity** — event-driven and levelized profiles are
///   record-identical (exact `f64` equality on delays), fresh and aged;
/// * **stress-delay monotonicity** — uniformly inflating every gate's BTI
///   factor never shortens the static critical path nor the profile's max
///   or mean sensitized delay (individual patterns may flicker: inertial
///   filtering can suppress the hazard that defined a pattern's last
///   output change — see the inline note);
/// * **cache-hit ≡ cache-miss** — a cold [`ProfileCache`] miss produces
///   records identical to an uncached profile, and a warm hit returns the
///   same allocation with the hit/miss counters advancing accordingly;
/// * the profile laws of [`check_profile_laws`], on periods swept around
///   the fresh critical path.
///
/// # Errors
///
/// Propagates [`CoreError`] from circuit generation or profiling
/// (conformance runs on supported widths never error).
pub fn check_multiplier_conformance(
    kind: MultiplierKind,
    width: usize,
    pairs: &[(u64, u64)],
) -> Result<Vec<Violation>, CoreError> {
    let design = MultiplierDesign::new(kind, width)?;
    let mut violations = Vec::new();

    // Engine identity, fresh and aged.
    let aged = aged_factors(&design);
    for factors in [None, Some(aged.as_slice())] {
        let event = design.profile_with_engine(pairs, factors, SimEngine::Event)?;
        let level = design.profile_with_engine(pairs, factors, SimEngine::Level)?;
        if event.records() != level.records() {
            let first = event
                .records()
                .iter()
                .zip(level.records())
                .position(|(e, l)| e != l);
            violations.push(Violation {
                law: "engine identity (EventSim ≡ LevelSim)",
                detail: format!(
                    "{kind:?} w{width} aged={}: first mismatching record at index {first:?}",
                    factors.is_some()
                ),
            });
        }
    }

    // Stress-delay monotonicity over a uniform BTI sweep. Individual
    // records are *not* required to be monotone: the measured delay is the
    // time of the last output change, and inertial pulse filtering can
    // suppress at higher stress a hazard that defined that last change at
    // lower stress (observed on real bypass multipliers). The paper's
    // claim is about the delay distribution, so the laws checked are the
    // static critical path (a theorem: a max of sums of per-gate delays,
    // each monotone in its factor) and the profile's max and mean
    // sensitized delays.
    let gates = design.circuit().netlist().gate_count();
    let stress_levels = [1.0, 1.15, 1.4];
    let mut stressed: Vec<(f64, PatternProfile, f64)> = Vec::new();
    for &alpha in &stress_levels {
        let factors = vec![alpha; gates];
        let profile = design.profile(pairs, Some(&factors))?;
        let critical = design.critical_delay_ns(Some(&factors))?;
        stressed.push((alpha, profile, critical));
    }
    for pair in stressed.windows(2) {
        let (lo_alpha, lo_profile, lo_critical) = (&pair[0].0, &pair[0].1, pair[0].2);
        let (hi_alpha, hi_profile, hi_critical) = (&pair[1].0, &pair[1].1, pair[1].2);
        if hi_critical < lo_critical {
            violations.push(Violation {
                law: "stress-delay monotonicity (critical path)",
                detail: format!(
                    "{kind:?} w{width}: critical {lo_critical} ns at ×{lo_alpha} but \
                     {hi_critical} ns at ×{hi_alpha}"
                ),
            });
        }
        for (law, lo_v, hi_v) in [
            (
                "stress-delay monotonicity (max sensitized delay)",
                lo_profile.max_delay_ns(),
                hi_profile.max_delay_ns(),
            ),
            (
                "stress-delay monotonicity (mean sensitized delay)",
                lo_profile.avg_delay_ns(),
                hi_profile.avg_delay_ns(),
            ),
        ] {
            if hi_v < lo_v {
                violations.push(Violation {
                    law,
                    detail: format!(
                        "{kind:?} w{width}: {lo_v} ns at ×{lo_alpha} but {hi_v} ns at ×{hi_alpha}"
                    ),
                });
            }
        }
    }

    // Cache coherence: miss ≡ direct profile, hit ≡ miss.
    let cache = ProfileCache::new();
    let direct = design.profile(pairs, None)?;
    let cold = cache.profile(&design, pairs, None)?;
    if cold.records() != direct.records() {
        violations.push(Violation {
            law: "cache-miss identity",
            detail: format!("{kind:?} w{width}: cold cache profile differs from direct profile"),
        });
    }
    let warm = cache.profile(&design, pairs, None)?;
    if !Arc::ptr_eq(&cold, &warm) {
        violations.push(Violation {
            law: "cache-hit identity",
            detail: format!("{kind:?} w{width}: warm hit returned a different allocation"),
        });
    }
    if (cache.hits(), cache.misses()) != (1, 1) {
        violations.push(Violation {
            law: "cache-hit accounting",
            detail: format!(
                "{kind:?} w{width}: expected (hits, misses) = (1, 1), got ({}, {})",
                cache.hits(),
                cache.misses()
            ),
        });
    }
    if warm.records() != direct.records() {
        violations.push(Violation {
            law: "cache-hit identity",
            detail: format!("{kind:?} w{width}: warm hit records differ from direct profile"),
        });
    }

    // Replay laws around the fresh critical path.
    let critical = design.critical_delay_ns(None)?;
    let periods: Vec<f64> = [0.55, 0.75, 1.0].iter().map(|f| f * critical).collect();
    let w = width as u32;
    let skips = [2, w.saturating_sub(1).max(1), w, w + 1];
    violations.extend(check_profile_laws(&direct, &periods, &skips));

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agemul::PatternSet;

    #[test]
    fn column_bypass_8bit_conforms() {
        let patterns = PatternSet::uniform(8, 60, 0xA11CE);
        let violations =
            check_multiplier_conformance(MultiplierKind::ColumnBypass, 8, patterns.pairs())
                .unwrap();
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn broken_identity_is_reported() {
        use agemul::PatternRecord;
        // A synthetic profile is fine for the law checker; fabricate one
        // whose zeros exceed any real judged-operand count to make every
        // op one-cycle at low skips.
        let records = vec![
            PatternRecord {
                a: 1,
                b: 2,
                zeros: 7,
                delay_ns: 5.0,
            },
            PatternRecord {
                a: 3,
                b: 4,
                zeros: 1,
                delay_ns: 12.0,
            },
        ];
        let profile = PatternProfile::from_records(MultiplierKind::ColumnBypass, 8, records);
        let violations = check_profile_laws(&profile, &[6.0, 13.0], &[2, 8]);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
