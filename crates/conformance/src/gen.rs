//! The shared random-netlist generator behind every equivalence suite.
//!
//! Before this crate existed, `random_circuits.rs`, `batch_equiv.rs`, and
//! `level_equiv.rs` in `agemul-netlist` each carried a private copy of the
//! same generator. Those copies are gone: every differential suite —
//! property tests and the seeded conformance gate alike — now draws
//! circuits from this one definition, so a change to the scheme changes
//! what *all* of them cover.
//!
//! The scheme: a netlist starts from `inputs` primary inputs plus the two
//! constant rails; each [`GateRecipe`] appends one gate whose kind is
//! `kind_sel % 10` and whose input pins are `picks[..]` taken modulo the
//! nets available at that point, so the result is a well-formed DAG by
//! construction (including tri-state floats and mux bypass idioms); the
//! last four nets become primary outputs.

use agemul_logic::{GateKind, Logic};
use agemul_netlist::{NetId, Netlist};
use proptest::prelude::*;

/// Number of primary inputs every generated netlist carries. Six is wide
/// enough that 64-bit workload words exercise distinct input patterns and
/// narrow enough that sequences visit repeats (the incremental-cone path).
pub const GEN_INPUTS: usize = 6;

/// Recipe for one random gate: a kind selector and input picks interpreted
/// modulo the number of nets available when the gate is appended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GateRecipe {
    /// Gate-kind selector; the kind is `kind_sel % 10` (see [`GateRecipe::kind`]).
    pub kind_sel: u8,
    /// Input-net picks, each reduced modulo the current net count.
    pub picks: [u16; 3],
}

impl GateRecipe {
    /// The gate kind this recipe selects.
    pub fn kind(self) -> GateKind {
        match self.kind_sel % 10 {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            8 => GateKind::Mux2,
            _ => GateKind::Tbuf,
        }
    }
}

/// Proptest strategy over gate recipes, for the property suites.
pub fn arb_gate() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(k, a, b, c)| GateRecipe {
        kind_sel: k,
        picks: [a, b, c],
    })
}

/// Builds a well-formed netlist from recipes; every gate reads nets that
/// already exist, so the result is a DAG by construction. The last four
/// nets are marked as primary outputs `o0..o3`.
pub fn build_netlist(recipes: &[GateRecipe], inputs: usize) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    nets.push(n.const_zero());
    nets.push(n.const_one());
    for r in recipes {
        let pick = |p: u16| nets[p as usize % nets.len()];
        let kind = r.kind();
        let ins: Vec<NetId> = match kind.fixed_arity() {
            Some(1) => vec![pick(r.picks[0])],
            Some(3) => vec![pick(r.picks[0]), pick(r.picks[1]), pick(r.picks[2])],
            _ => vec![pick(r.picks[0]), pick(r.picks[1])],
        };
        let out = n.add_gate(kind, &ins).expect("recipe inputs are valid");
        nets.push(out);
    }
    for (i, &o) in nets.iter().rev().take(4).enumerate() {
        n.mark_output(o, format!("o{i}"));
    }
    n
}

/// Expands the low `count` bits of `bits` into a two-level input vector
/// (bit `i` drives input `i`).
pub fn input_vector(bits: u64, count: usize) -> Vec<Logic> {
    (0..count)
        .map(|i| Logic::from((bits >> i) & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_selector_is_reachable() {
        let kinds: Vec<GateKind> = (0..10u8)
            .map(|k| {
                GateRecipe {
                    kind_sel: k,
                    picks: [0; 3],
                }
                .kind()
            })
            .collect();
        for pair in kinds.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        assert_eq!(kinds.len(), 10);
    }

    #[test]
    fn build_marks_four_outputs_and_keeps_dag_valid() {
        let recipes: Vec<GateRecipe> = (0..12)
            .map(|i| GateRecipe {
                kind_sel: i as u8,
                picks: [i as u16, (i * 3) as u16, (i * 7) as u16],
            })
            .collect();
        let n = build_netlist(&recipes, GEN_INPUTS);
        assert_eq!(n.gate_count(), 12);
        assert_eq!(n.output_count(), 4);
        n.topology().expect("generated netlists are always DAGs");
    }

    #[test]
    fn empty_recipe_list_is_still_a_valid_netlist() {
        let n = build_netlist(&[], GEN_INPUTS);
        assert_eq!(n.gate_count(), 0);
        assert_eq!(n.output_count(), 4);
        n.topology().unwrap();
    }

    #[test]
    fn input_vector_reads_low_bits_lsb_first() {
        let v = input_vector(0b101, 6);
        assert_eq!(v[0], Logic::One);
        assert_eq!(v[1], Logic::Zero);
        assert_eq!(v[2], Logic::One);
        assert_eq!(v[3], Logic::Zero);
    }
}
