//! Seeded conformance cases: a netlist recipe, workload, delay
//! assignment, and optional fault, replayable from JSON.

use agemul_logic::DelayModel;
use agemul_netlist::{DelayAssignment, FaultKind, FaultOverlay, GateId, NetId, Netlist};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::gen::{build_netlist, GateRecipe, GEN_INPUTS};
use crate::json::Json;

/// The delay-assignment axis of a case.
#[derive(Clone, Debug, PartialEq)]
pub enum DelaySpec {
    /// Fresh silicon: nominal per-kind delays.
    Uniform,
    /// Aged silicon: per-gate BTI factors, optionally with one extra
    /// hot-spot inflation on top (the "one gate ages much faster" shape
    /// the guardband experiments probe).
    Aged {
        /// Multiplicative delay factors, cycled over gates
        /// (`factors[g % factors.len()]`) so the spec survives shrinking.
        factors: Vec<f64>,
        /// Optional hot spot: (gate pick modulo gate count, extra factor).
        hot: Option<(u16, f64)>,
    },
}

/// The fault axis of a case: one injected net fault, lane 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultCase {
    /// Faulted net, reduced modulo the case's net count.
    pub net_pick: u16,
    /// Stuck-at-0 / stuck-at-1 / flip.
    pub kind: FaultKind,
}

/// One self-contained conformance case.
///
/// A case pins down everything the differential oracle needs: the circuit
/// (as [`GateRecipe`]s, so it shrinks structurally), the input sequence
/// (64-bit words expanded LSB-first onto the primary inputs), the delay
/// assignment, and an optional fault. Cases are value types — [`Case::generate`]
/// is a pure function of the seed, and the JSON form replays bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Case {
    /// The seed this case was generated from (0 for hand-built cases);
    /// carried into artifacts for traceability.
    pub seed: u64,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Gate recipes, applied in order (see [`crate::gen`]).
    pub gates: Vec<GateRecipe>,
    /// Input-pattern sequence; word `i`'s low bits drive step `i`.
    pub workload: Vec<u64>,
    /// Delay assignment for the timing engines.
    pub delay: DelaySpec,
    /// Optional injected fault.
    pub fault: Option<FaultCase>,
}

impl Case {
    /// Generates the case for `seed` — deterministic, so the conformance
    /// gate's coverage is reproducible from the seed alone.
    pub fn generate(seed: u64) -> Case {
        let mut rng = StdRng::seed_from_u64(seed);
        let gate_count = 1 + (rng.gen::<u64>() % 40) as usize;
        let gates: Vec<GateRecipe> = (0..gate_count)
            .map(|_| GateRecipe {
                kind_sel: rng.gen::<u32>() as u8,
                picks: [
                    rng.gen::<u32>() as u16,
                    rng.gen::<u32>() as u16,
                    rng.gen::<u32>() as u16,
                ],
            })
            .collect();
        let workload: Vec<u64> = (0..2 + (rng.gen::<u64>() % 7) as usize)
            .map(|_| rng.gen::<u64>())
            .collect();
        let delay = match rng.gen::<u32>() % 3 {
            0 => DelaySpec::Uniform,
            sel => {
                let factors: Vec<f64> = (0..gate_count)
                    .map(|_| 0.5 + 3.5 * rng.gen::<f64>())
                    .collect();
                let hot =
                    (sel == 2).then(|| (rng.gen::<u32>() as u16, 1.0 + 19.0 * rng.gen::<f64>()));
                DelaySpec::Aged { factors, hot }
            }
        };
        let fault = rng.gen_bool(0.5).then(|| FaultCase {
            net_pick: rng.gen::<u32>() as u16,
            kind: match rng.gen::<u32>() % 3 {
                0 => FaultKind::StuckAt0,
                1 => FaultKind::StuckAt1,
                _ => FaultKind::Flip,
            },
        });
        Case {
            seed,
            inputs: GEN_INPUTS,
            gates,
            workload,
            delay,
            fault,
        }
    }

    /// Builds the case's netlist.
    pub fn netlist(&self) -> Netlist {
        build_netlist(&self.gates, self.inputs)
    }

    /// Resolves the case's delay assignment against `n`.
    pub fn delays(&self, n: &Netlist) -> DelayAssignment {
        let model = DelayModel::nominal();
        match &self.delay {
            DelaySpec::Uniform => DelayAssignment::uniform(n, &model),
            DelaySpec::Aged { factors, hot } => {
                if factors.is_empty() || n.gate_count() == 0 {
                    return DelayAssignment::uniform(n, &model);
                }
                let per_gate: Vec<f64> = (0..n.gate_count())
                    .map(|g| factors[g % factors.len()])
                    .collect();
                let mut d = DelayAssignment::with_factors(n, &model, &per_gate)
                    .expect("factor vector is sized to the gate count");
                if let Some((pick, factor)) = *hot {
                    d.inflate(GateId::from_index(pick as usize % n.gate_count()), factor);
                }
                d
            }
        }
    }

    /// Resolves the case's fault (if any) into an overlay on `n`, lane 0.
    pub fn overlay(&self, n: &Netlist) -> Option<FaultOverlay> {
        self.fault.map(|f| {
            let mut overlay = FaultOverlay::new(n);
            let net = NetId::from_index(f.net_pick as usize % n.net_count());
            overlay
                .add(net, f.kind, 1)
                .expect("net index is in range and the lane mask is non-empty");
            overlay
        })
    }

    /// Serializes the case as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let delay = match &self.delay {
            DelaySpec::Uniform => Json::Obj(vec![("mode".into(), Json::Str("uniform".into()))]),
            DelaySpec::Aged { factors, hot } => {
                let mut pairs = vec![
                    ("mode".into(), Json::Str("aged".into())),
                    (
                        "factors".into(),
                        Json::Arr(factors.iter().map(|&f| Json::Num(f)).collect()),
                    ),
                ];
                if let Some((pick, factor)) = *hot {
                    pairs.push((
                        "hot".into(),
                        Json::Obj(vec![
                            ("gate".into(), Json::UInt(u64::from(pick))),
                            ("factor".into(), Json::Num(factor)),
                        ]),
                    ));
                }
                Json::Obj(pairs)
            }
        };
        let fault = match self.fault {
            None => Json::Null,
            Some(f) => Json::Obj(vec![
                ("net".into(), Json::UInt(u64::from(f.net_pick))),
                (
                    "kind".into(),
                    Json::Str(
                        match f.kind {
                            FaultKind::StuckAt0 => "stuck0",
                            FaultKind::StuckAt1 => "stuck1",
                            FaultKind::Flip => "flip",
                        }
                        .into(),
                    ),
                ),
            ]),
        };
        Json::Obj(vec![
            ("seed".into(), Json::UInt(self.seed)),
            ("inputs".into(), Json::UInt(self.inputs as u64)),
            (
                "gates".into(),
                Json::Arr(
                    self.gates
                        .iter()
                        .map(|g| {
                            Json::Obj(vec![
                                ("kind".into(), Json::UInt(u64::from(g.kind_sel))),
                                (
                                    "picks".into(),
                                    Json::Arr(
                                        g.picks.iter().map(|&p| Json::UInt(u64::from(p))).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "workload".into(),
                Json::Arr(self.workload.iter().map(|&w| Json::UInt(w)).collect()),
            ),
            ("delay".into(), delay),
            ("fault".into(), fault),
        ])
        .to_string()
    }

    /// Parses a case back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema error.
    pub fn from_json(text: &str) -> Result<Case, String> {
        let doc = Json::parse(text)?;
        let req_u64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let seed = req_u64("seed")?;
        let inputs = req_u64("inputs")? as usize;
        let gates = doc
            .get("gates")
            .and_then(Json::as_arr)
            .ok_or("missing 'gates' array")?
            .iter()
            .map(|g| {
                let kind_sel = g
                    .get("kind")
                    .and_then(Json::as_u64)
                    .ok_or("gate missing 'kind'")? as u8;
                let picks = g
                    .get("picks")
                    .and_then(Json::as_arr)
                    .ok_or("gate missing 'picks'")?;
                if picks.len() != 3 {
                    return Err("gate 'picks' must have 3 entries".to_string());
                }
                let mut p = [0u16; 3];
                for (slot, v) in p.iter_mut().zip(picks) {
                    *slot = v.as_u64().ok_or("non-integer pick")? as u16;
                }
                Ok(GateRecipe { kind_sel, picks: p })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let workload = doc
            .get("workload")
            .and_then(Json::as_arr)
            .ok_or("missing 'workload' array")?
            .iter()
            .map(|w| {
                w.as_u64()
                    .ok_or_else(|| "non-integer workload word".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let delay_doc = doc.get("delay").ok_or("missing 'delay'")?;
        let delay = match delay_doc.get("mode").and_then(Json::as_str) {
            Some("uniform") => DelaySpec::Uniform,
            Some("aged") => {
                let factors = delay_doc
                    .get("factors")
                    .and_then(Json::as_arr)
                    .ok_or("aged delay missing 'factors'")?
                    .iter()
                    .map(|f| f.as_f64().ok_or_else(|| "non-numeric factor".to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                let hot = match delay_doc.get("hot") {
                    None => None,
                    Some(h) => Some((
                        h.get("gate")
                            .and_then(Json::as_u64)
                            .ok_or("hot missing 'gate'")? as u16,
                        h.get("factor")
                            .and_then(Json::as_f64)
                            .ok_or("hot missing 'factor'")?,
                    )),
                };
                DelaySpec::Aged { factors, hot }
            }
            _ => return Err("unknown delay mode".into()),
        };
        let fault = match doc.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => Some(FaultCase {
                net_pick: f
                    .get("net")
                    .and_then(Json::as_u64)
                    .ok_or("fault missing 'net'")? as u16,
                kind: match f.get("kind").and_then(Json::as_str) {
                    Some("stuck0") => FaultKind::StuckAt0,
                    Some("stuck1") => FaultKind::StuckAt1,
                    Some("flip") => FaultKind::Flip,
                    _ => return Err("unknown fault kind".into()),
                },
            }),
        };
        Ok(Case {
            seed,
            inputs,
            gates,
            workload,
            delay,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Case::generate(7), Case::generate(7));
        assert_ne!(Case::generate(7), Case::generate(8));
    }

    #[test]
    fn json_round_trips_every_axis() {
        for seed in 0..64 {
            let case = Case::generate(seed);
            let back = Case::from_json(&case.to_json()).unwrap();
            assert_eq!(back, case, "seed {seed} failed to round-trip");
        }
    }

    #[test]
    fn delays_survive_gate_removal() {
        let mut case = Case::generate(11);
        case.delay = DelaySpec::Aged {
            factors: vec![1.5, 2.0, 2.5],
            hot: Some((9, 4.0)),
        };
        case.gates.truncate(2);
        let n = case.netlist();
        let d = case.delays(&n);
        assert_eq!(d.len(), n.gate_count());
    }

    #[test]
    fn empty_factor_list_falls_back_to_uniform() {
        let mut case = Case::generate(3);
        case.delay = DelaySpec::Aged {
            factors: vec![],
            hot: Some((0, 5.0)),
        };
        let n = case.netlist();
        assert_eq!(
            case.delays(&n),
            DelayAssignment::uniform(&n, &DelayModel::nominal())
        );
    }
}
