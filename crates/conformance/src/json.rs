//! A tiny JSON value model with a writer and recursive-descent parser.
//!
//! Repro artifacts must replay byte-exactly in an offline build, so the
//! crate carries its own minimal JSON support instead of gating the
//! shrinker on an external serializer. Two deliberate deviations from a
//! general-purpose library keep replay lossless: unsigned integers are a
//! distinct variant (`u64` workload words do not survive a round-trip
//! through `f64`), and objects preserve insertion order so emitted
//! artifacts are deterministic.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without fraction or exponent.
    /// Kept apart from [`Json::Num`] so `u64` values round-trip exactly.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (only [`Json::UInt`]).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(u) => write!(f, "{u}"),
            // `{:?}` prints the shortest representation that round-trips.
            Json::Num(x) => write!(f, "{x:?}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", char::from(b), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at offset {}", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8 by
                // construction of `&str`).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a &str");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'-') {
        integral = false;
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                integral = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() {
        return Err(format!("expected a value at offset {start}"));
    }
    if integral {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let v = Json::UInt(u64::MAX);
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let v = Json::Num(1.15);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_f64(), Some(1.15));
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("s".into(), Json::Str("q\"\\\n".into())),
            ("b".into(), Json::Bool(false)),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}
