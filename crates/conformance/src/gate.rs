//! The seeded conformance gate: generate → check → shrink → report.

use agemul_netlist::NetlistError;

use crate::case::Case;
use crate::oracle::{check_case, Divergence};
use crate::shrink::{repro_artifact, shrink_case};

/// Per-case seed spreading (golden-ratio stride, same trick as
/// `SplitMix64`) so consecutive case indices land far apart in seed space.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed case `index` uses under `base_seed` — the exact spreading
/// [`run_gate`] applies, exported so supervised runners (the
/// `agemul-harness` crate) evaluating cases one at a time replay the same
/// coverage as an unsupervised gate.
#[inline]
pub fn case_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(SEED_STRIDE)
}

/// One case that diverged, with its minimized repro.
#[derive(Clone, Debug)]
pub struct DivergentCase {
    /// The seed of the originally divergent case.
    pub seed: u64,
    /// Divergences observed on the *minimized* case.
    pub divergences: Vec<Divergence>,
    /// The ddmin-reduced case that still diverges.
    pub minimized: Case,
    /// Replayable JSON artifact (see [`repro_artifact`]).
    pub artifact: String,
}

/// The result of a conformance gate run.
#[derive(Clone, Debug)]
pub struct GateOutcome {
    /// Number of seeded cases executed.
    pub cases: usize,
    /// Every divergent case, minimized; empty means full conformance.
    pub divergent: Vec<DivergentCase>,
}

impl GateOutcome {
    /// `true` when every case passed every axis.
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty()
    }
}

/// Runs `cases` seeded cases through [`check_case`], shrinking every
/// divergent one to a minimal repro.
///
/// Case `i` uses seed `base_seed ^ (i · φ64)`, so a fixed `base_seed`
/// (the verify gate pins one) replays the exact same coverage while
/// different base seeds explore disjoint regions.
///
/// # Errors
///
/// Propagates [`NetlistError`] from a malformed case — generated cases
/// are well-formed by construction, so this indicates a generator bug.
pub fn run_gate(base_seed: u64, cases: usize) -> Result<GateOutcome, NetlistError> {
    let mut divergent = Vec::new();
    for i in 0..cases {
        let seed = case_seed(base_seed, i);
        let case = Case::generate(seed);
        let divs = check_case(&case)?;
        if !divs.is_empty() {
            let mut still_fails = |c: &Case| check_case(c).map(|d| !d.is_empty()).unwrap_or(false);
            let minimized = shrink_case(&case, &mut still_fails);
            let divergences = check_case(&minimized)?;
            let artifact = repro_artifact(&minimized, &divergences);
            divergent.push(DivergentCase {
                seed,
                divergences,
                minimized,
                artifact,
            });
        }
    }
    Ok(GateOutcome { cases, divergent })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_spread_and_replay() {
        let a = run_gate(1, 4).unwrap();
        let b = run_gate(1, 4).unwrap();
        assert_eq!(a.cases, b.cases);
        assert!(a.is_clean() && b.is_clean());
    }
}
