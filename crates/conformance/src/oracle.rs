//! The differential oracle: one case, every engine, full-state diffs.

use std::fmt;

use agemul_logic::{GateKind, Logic};
use agemul_netlist::{
    BatchSim, BlockSim, EventSim, FaultOverlay, FuncSim, LevelSim, NetId, Netlist, NetlistError,
    PatternTiming, Topology,
};

use crate::case::Case;
use crate::gen::input_vector;

/// Inter-pattern gap used by the waveform-identity axis; generous enough
/// that traces from consecutive steps never interleave.
const TRACE_GAP_FS: u64 = 1_000_000_000;

/// An evaluation engine participating in the differential oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineId {
    /// The crate's independent topological interpreter (see
    /// [`reference_eval`]).
    Reference,
    /// [`FuncSim`] — zero-delay scalar sweep.
    Func,
    /// [`BatchSim`] — 64-lane bit-parallel sweep.
    Batch,
    /// [`EventSim`] — event-driven femtosecond timing.
    Event,
    /// [`LevelSim`] — levelized incremental timing kernel.
    Level,
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineId::Reference => "reference",
            EngineId::Func => "FuncSim",
            EngineId::Batch => "BatchSim",
            EngineId::Event => "EventSim",
            EngineId::Level => "LevelSim",
        })
    }
}

/// One disagreement between two engines on one case.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// First engine of the mismatched pair.
    pub left: EngineId,
    /// Second engine of the mismatched pair.
    pub right: EngineId,
    /// Workload step at which the disagreement surfaced.
    pub step: usize,
    /// Where in the compared state the values differ (net, timing field,
    /// trace index, …).
    pub site: String,
    /// The two values, rendered.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {} @ step {}: {} ({})",
            self.left, self.right, self.step, self.site, self.detail
        )
    }
}

/// Evaluates `n` for one input assignment with an independent topological
/// interpreter — the oracle the four production engines are diffed
/// against.
///
/// Semantics mirror [`FuncSim`]: constants, then inputs, then gates in
/// builder order (topological by construction), every net passed through
/// the overlay's scalar view as it settles. The implementation shares no
/// code with the engines — it reads the [`Netlist`] directly rather than
/// going through a compiled plan, so a plan-compilation bug cannot hide
/// from it.
///
/// `sabotage` inverts the output of every gate of the given kind *before*
/// overlay coercion. It exists for the shrinker's own validation: an
/// intentionally wrong oracle is an injected eval bug whose minimal repro
/// is known by construction (one gate of that kind).
pub fn reference_eval(
    n: &Netlist,
    inputs: &[Logic],
    overlay: Option<&FaultOverlay>,
    sabotage: Option<GateKind>,
) -> Vec<Logic> {
    let coerce = |idx: usize, v: Logic| match overlay {
        Some(o) => o.apply_scalar(idx, v),
        None => v,
    };
    let mut values = vec![Logic::X; n.net_count()];
    for (idx, value) in values.iter_mut().enumerate() {
        if let Some(level) = n.const_level(NetId::from_index(idx)) {
            *value = coerce(idx, level);
        }
    }
    for (&net, &v) in n.inputs().iter().zip(inputs) {
        values[net.index()] = coerce(net.index(), v);
    }
    let mut scratch = Vec::new();
    for gate in n.gates() {
        scratch.clear();
        scratch.extend(gate.inputs().iter().map(|i| values[i.index()]));
        let mut out = gate.kind().eval(&scratch);
        if sabotage == Some(gate.kind()) {
            out = !out;
        }
        values[gate.output().index()] = coerce(gate.output().index(), out);
    }
    values
}

/// Runs `case` through every engine pairing and returns all observed
/// divergences (empty = full conformance).
///
/// The axes, in order:
///
/// 1. [`FuncSim`] vs [`reference_eval`] on every net, every step — clean,
///    and again under the case's overlay when a fault is present;
/// 2. [`BatchSim`] (all lanes, clean and overlay) vs the per-step scalar
///    results — the overlay masks lane 0 only, so lane 0 of each batch
///    compares against the faulted scalar run and the other lanes against
///    the clean one; the same axis then re-runs at 256 and 512 lanes
///    ([`BlockSim<4>`](BlockSim)/[`BlockSim<8>`](BlockSim)), where the
///    overlay's 64-bit mask replicates per chunk (lane `i` of a block is
///    faulted iff bit `i % 64` is set);
/// 3. [`EventSim`] vs [`LevelSim`] in lockstep — identical
///    [`PatternTiming`] (femtosecond-derived fields compare with `==`),
///    identical values on every net, identical cumulative per-gate toggle
///    counters — through a clean phase, an overlay phase, and a
///    post-detach phase; the clean phase also cross-checks [`EventSim`]
///    against [`FuncSim`] wherever both values are defined;
/// 4. waveform identity: a pristine traced [`EventSim`] against one that
///    first ran the workload faulted and then detached the overlay —
///    detaching must restore the exact femtosecond trace.
///
/// # Errors
///
/// Returns the underlying [`NetlistError`] if the case is malformed
/// (it never is for generated cases).
pub fn check_case(case: &Case) -> Result<Vec<Divergence>, NetlistError> {
    let n = case.netlist();
    let topo = n.topology()?;
    let delays = case.delays(&n);
    let overlay = case.overlay(&n);
    let patterns: Vec<Vec<Logic>> = case
        .workload
        .iter()
        .map(|&w| input_vector(w, case.inputs))
        .collect();
    let zeros = input_vector(0, case.inputs);
    let mut divs = Vec::new();

    // Axis 1: FuncSim vs the independent reference interpreter.
    let mut fsim = FuncSim::new(&n, &topo);
    for (step, pattern) in patterns.iter().enumerate() {
        fsim.eval(pattern)?;
        diff_values(
            &mut divs,
            EngineId::Func,
            EngineId::Reference,
            step,
            fsim.values(),
            &reference_eval(&n, pattern, None, None),
        );
        if let Some(o) = &overlay {
            fsim.eval_with_overlay(pattern, o)?;
            diff_values(
                &mut divs,
                EngineId::Func,
                EngineId::Reference,
                step,
                fsim.values(),
                &reference_eval(&n, pattern, Some(o), None),
            );
        }
    }

    // Axis 2: BatchSim lanes vs per-step scalar results.
    let mut batch = BatchSim::new(&n, &topo);
    for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
        for pass in 0..if overlay.is_some() { 2 } else { 1 } {
            let faulted_pass = pass == 1;
            if faulted_pass {
                batch.eval_batch_with_overlay(chunk, overlay.as_ref().expect("pass gated"))?;
            } else {
                batch.eval_batch(chunk)?;
            }
            for (lane, pattern) in chunk.iter().enumerate() {
                let step = chunk_idx * 64 + lane;
                // The overlay's lane mask is 1: only lane 0 of each batch
                // call sees the fault.
                if faulted_pass && lane == 0 {
                    fsim.eval_with_overlay(pattern, overlay.as_ref().expect("pass gated"))?;
                } else {
                    fsim.eval(pattern)?;
                }
                for idx in 0..n.net_count() {
                    let b = batch.value(NetId::from_index(idx), lane);
                    let f = fsim.values()[idx];
                    if b != f {
                        divs.push(Divergence {
                            left: EngineId::Batch,
                            right: EngineId::Func,
                            step,
                            site: format!(
                                "net {idx} (lane {lane}{})",
                                if faulted_pass { ", overlay" } else { "" }
                            ),
                            detail: format!("{b:?} vs {f:?}"),
                        });
                    }
                }
            }
        }
    }

    // Axis 2, wide lanes: the same lanes-vs-scalar diff at 256 and 512
    // lanes, sampling the width-generic kernel the wide profiling paths
    // use.
    wide_batch_axis::<4>(&mut divs, &n, &topo, &patterns, overlay.as_ref(), &mut fsim)?;
    wide_batch_axis::<8>(&mut divs, &n, &topo, &patterns, overlay.as_ref(), &mut fsim)?;

    // Axis 3: EventSim vs LevelSim in lockstep, clean → overlay → detach.
    let mut esim = EventSim::new(&n, &topo, delays.clone());
    let mut lsim = LevelSim::new(&n, &topo, delays.clone());
    lockstep_phase(
        &mut divs,
        &mut esim,
        &mut lsim,
        &n,
        &zeros,
        &patterns,
        "clean",
        Some(&mut fsim),
    )?;
    if let Some(o) = &overlay {
        esim.set_fault_overlay(o.clone());
        lsim.set_fault_overlay(o.clone());
        lockstep_phase(
            &mut divs, &mut esim, &mut lsim, &n, &zeros, &patterns, "overlay", None,
        )?;
        esim.clear_fault_overlay();
        lsim.clear_fault_overlay();
        lockstep_phase(
            &mut divs,
            &mut esim,
            &mut lsim,
            &n,
            &zeros,
            &patterns,
            "detached",
            Some(&mut fsim),
        )?;
    }

    // Axis 4: attaching and then detaching an overlay must restore the
    // exact femtosecond waveform of a pristine run.
    if let Some(o) = &overlay {
        let mut pristine = EventSim::new(&n, &topo, delays.clone());
        pristine.enable_tracing(TRACE_GAP_FS);
        let mut recovered = EventSim::new(&n, &topo, delays);
        recovered.set_fault_overlay(o.clone());
        recovered.settle(&zeros)?;
        for pattern in &patterns {
            recovered.step(pattern)?;
        }
        recovered.clear_fault_overlay();
        recovered.enable_tracing(TRACE_GAP_FS);

        pristine.settle(&zeros)?;
        recovered.settle(&zeros)?;
        for (step, pattern) in patterns.iter().enumerate() {
            let tp = pristine.step(pattern)?;
            let tr = recovered.step(pattern)?;
            diff_timing(&mut divs, step, "post-detach trace run", &tp, &tr);
        }
        let (pt, rt) = (pristine.trace(), recovered.trace());
        if pt.len() != rt.len() {
            divs.push(Divergence {
                left: EngineId::Event,
                right: EngineId::Event,
                step: patterns.len(),
                site: "trace length".into(),
                detail: format!("pristine {} events vs recovered {}", pt.len(), rt.len()),
            });
        }
        for (i, (p, r)) in pt.iter().zip(rt).enumerate() {
            if p != r {
                divs.push(Divergence {
                    left: EngineId::Event,
                    right: EngineId::Event,
                    step: patterns.len(),
                    site: format!("trace[{i}]"),
                    detail: format!(
                        "pristine ({} fs, net {}, {:?}) vs recovered ({} fs, net {}, {:?})",
                        p.time_fs,
                        p.net.index(),
                        p.value,
                        r.time_fs,
                        r.net.index(),
                        r.value
                    ),
                });
            }
        }
    }

    Ok(divs)
}

/// The wide-lane replay of axis 2: a `64 × W`-lane [`BlockSim`] sweep over
/// the workload (clean, and under the overlay when present) diffed
/// lane-by-lane against the scalar [`FuncSim`]. The case overlay's lane
/// mask is 1, which a block replicates per 64-lane chunk, so every lane
/// with `lane % 64 == 0` of a faulted pass compares against the faulted
/// scalar run and all others against the clean one.
fn wide_batch_axis<const W: usize>(
    divs: &mut Vec<Divergence>,
    n: &Netlist,
    topo: &Topology,
    patterns: &[Vec<Logic>],
    overlay: Option<&FaultOverlay>,
    fsim: &mut FuncSim<'_>,
) -> Result<(), NetlistError> {
    let mut batch = BlockSim::<W>::new(n, topo);
    let lanes = BlockSim::<W>::LANES;
    for (chunk_idx, chunk) in patterns.chunks(lanes).enumerate() {
        for pass in 0..if overlay.is_some() { 2 } else { 1 } {
            let faulted_pass = pass == 1;
            if faulted_pass {
                batch.eval_batch_with_overlay(chunk, overlay.expect("pass gated"))?;
            } else {
                batch.eval_batch(chunk)?;
            }
            for (lane, pattern) in chunk.iter().enumerate() {
                let step = chunk_idx * lanes + lane;
                if faulted_pass && lane % 64 == 0 {
                    fsim.eval_with_overlay(pattern, overlay.expect("pass gated"))?;
                } else {
                    fsim.eval(pattern)?;
                }
                for idx in 0..n.net_count() {
                    let b = batch.value(NetId::from_index(idx), lane);
                    let f = fsim.values()[idx];
                    if b != f {
                        divs.push(Divergence {
                            left: EngineId::Batch,
                            right: EngineId::Func,
                            step,
                            site: format!(
                                "net {idx} (W={W} lane {lane}{})",
                                if faulted_pass { ", overlay" } else { "" }
                            ),
                            detail: format!("{b:?} vs {f:?}"),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Settles both timing kernels and steps them through `patterns`,
/// asserting full-state identity after every step. When `fsim` is given
/// (fault-free phases), [`EventSim`] settled values are additionally
/// cross-checked against [`FuncSim`] wherever both are defined — a
/// defined functional value implies controlling inputs that force the
/// same level through the event simulator's tri-state hold.
#[allow(clippy::too_many_arguments)]
fn lockstep_phase(
    divs: &mut Vec<Divergence>,
    esim: &mut EventSim<'_>,
    lsim: &mut LevelSim<'_>,
    n: &Netlist,
    zeros: &[Logic],
    patterns: &[Vec<Logic>],
    phase: &str,
    mut fsim: Option<&mut FuncSim<'_>>,
) -> Result<(), NetlistError> {
    esim.settle(zeros)?;
    lsim.settle(zeros)?;
    for (step, pattern) in patterns.iter().enumerate() {
        let te = esim.step(pattern)?;
        let tl = lsim.step(pattern)?;
        diff_timing(divs, step, phase, &te, &tl);
        for idx in 0..n.net_count() {
            let net = NetId::from_index(idx);
            let (e, l) = (esim.value(net), lsim.value(net));
            if e != l {
                divs.push(Divergence {
                    left: EngineId::Event,
                    right: EngineId::Level,
                    step,
                    site: format!("net {idx} ({phase})"),
                    detail: format!("{e:?} vs {l:?}"),
                });
            }
        }
        if esim.gate_toggle_counts() != lsim.gate_toggle_counts() {
            divs.push(Divergence {
                left: EngineId::Event,
                right: EngineId::Level,
                step,
                site: format!("gate_toggle_counts ({phase})"),
                detail: format!(
                    "{:?} vs {:?}",
                    esim.gate_toggle_counts(),
                    lsim.gate_toggle_counts()
                ),
            });
        }
        if let Some(f) = fsim.as_deref_mut() {
            f.eval(pattern)?;
            for idx in 0..n.net_count() {
                let net = NetId::from_index(idx);
                let (e, fv) = (esim.value(net), f.value(net));
                if e.is_known() && fv.is_known() && e != fv {
                    divs.push(Divergence {
                        left: EngineId::Event,
                        right: EngineId::Func,
                        step,
                        site: format!("net {idx} ({phase}, both defined)"),
                        detail: format!("{e:?} vs {fv:?}"),
                    });
                }
            }
        }
    }
    Ok(())
}

fn diff_timing(
    divs: &mut Vec<Divergence>,
    step: usize,
    phase: &str,
    te: &PatternTiming,
    tl: &PatternTiming,
) {
    if te != tl {
        divs.push(Divergence {
            left: EngineId::Event,
            right: EngineId::Level,
            step,
            site: format!("PatternTiming ({phase})"),
            detail: format!("{te:?} vs {tl:?}"),
        });
    }
}

fn diff_values(
    divs: &mut Vec<Divergence>,
    left: EngineId,
    right: EngineId,
    step: usize,
    got: &[Logic],
    want: &[Logic],
) {
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            divs.push(Divergence {
                left,
                right,
                step,
                site: format!("net {idx}"),
                detail: format!("{g:?} vs {w:?}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_conform() {
        for seed in 0..16 {
            let divs = check_case(&Case::generate(seed)).unwrap();
            assert!(divs.is_empty(), "seed {seed}: {divs:?}");
        }
    }

    #[test]
    fn sabotage_is_visible_to_the_oracle() {
        // Some small seed must produce a circuit where a sabotaged XOR
        // reference disagrees with FuncSim (an inverted known value).
        let visible = (0..64).map(Case::generate).any(|case| {
            let n = case.netlist();
            let topo = n.topology().unwrap();
            let mut fsim = FuncSim::new(&n, &topo);
            let pattern = input_vector(case.workload[0], case.inputs);
            fsim.eval(&pattern).unwrap();
            fsim.values() != reference_eval(&n, &pattern, None, Some(GateKind::Xor))
        });
        assert!(visible);
    }
}
