//! Error type for circuit generation.

use std::error::Error;
use std::fmt;

use agemul_netlist::NetlistError;

/// Errors reported by the circuit generators.
///
/// # Example
///
/// ```
/// use agemul_circuits::{CircuitError, MultiplierCircuit, MultiplierKind};
///
/// let err = MultiplierCircuit::generate(MultiplierKind::Array, 1).unwrap_err();
/// assert!(matches!(err, CircuitError::WidthOutOfRange { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// The requested operand width is outside
    /// [`MIN_WIDTH`](crate::MIN_WIDTH)..=[`MAX_WIDTH`](crate::MAX_WIDTH).
    WidthOutOfRange {
        /// The requested width.
        width: usize,
    },
    /// An operand value does not fit in the circuit's width.
    OperandOverflow {
        /// The operand value.
        value: u64,
        /// The circuit width in bits.
        width: usize,
    },
    /// The underlying netlist rejected a construction step.
    Netlist(NetlistError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::WidthOutOfRange { width } => write!(
                f,
                "operand width {width} outside supported range {}..={}",
                crate::MIN_WIDTH,
                crate::MAX_WIDTH
            ),
            CircuitError::OperandOverflow { value, width } => {
                write!(f, "operand {value} does not fit in {width} bits")
            }
            CircuitError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for CircuitError {
    fn from(e: NetlistError) -> Self {
        CircuitError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CircuitError::WidthOutOfRange { width: 1 };
        assert!(e.to_string().contains('1'));
        let e = CircuitError::OperandOverflow {
            value: 300,
            width: 8,
        };
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn netlist_error_wraps_with_source() {
        let inner = NetlistError::WidthMismatch {
            expected: 2,
            got: 3,
        };
        let e = CircuitError::from(inner.clone());
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("netlist"));
    }
}
