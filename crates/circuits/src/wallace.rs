//! Wallace-tree multiplier (extension baseline).
//!
//! Not part of the paper's comparison set — included because the paper's
//! fixed-latency baselines are all linear-depth arrays, and a Wallace tree
//! shows how the variable-latency argument fares against a *fast* fixed
//! design: its critical path is much shorter, but its delay is also far
//! less correlated with operand zeros, so the AHL's prediction is weaker.

use agemul_netlist::Netlist;

use crate::common::{operand_buses, partial_products};
use crate::compressor::BitColumns;
use crate::multiplier::MultiplierParts;
use crate::CircuitError;

/// Builds an n×n Wallace-tree multiplier: the full AND partial-product
/// matrix dropped into a logarithmic-depth carry-save compressor with a
/// final ripple merge.
pub(crate) fn build(width: usize) -> Result<MultiplierParts, CircuitError> {
    let mut n = Netlist::new();
    let (a, b) = operand_buses(&mut n, width);
    let pp = partial_products(&mut n, &a, &b)?;

    let mut cols = BitColumns::new(2 * width);
    for (i, row) in pp.iter().enumerate() {
        for (j, &bit) in row.iter().enumerate() {
            cols.push(i + j, bit);
        }
    }
    let product = cols.reduce_to_sum(&mut n)?;
    for (k, &bit) in product.nets().iter().enumerate() {
        n.mark_output(bit, format!("p{k}"));
    }
    Ok(MultiplierParts {
        netlist: n,
        a,
        b,
        product,
    })
}

#[cfg(test)]
mod tests {
    use agemul_logic::DelayModel;
    use agemul_netlist::{static_critical_path_ns, DelayAssignment, FuncSim};

    use crate::{MultiplierCircuit, MultiplierKind};

    #[test]
    fn four_bit_exhaustive() {
        let m = MultiplierCircuit::generate(MultiplierKind::Wallace, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some((a * b) as u128),
                    "{a} × {b}"
                );
            }
        }
    }

    #[test]
    fn random_wide_checks() {
        let m = MultiplierCircuit::generate(MultiplierKind::Wallace, 16).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let mut state = 0xC0FF_EE00_1234_5678u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 16) & 0xFFFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 16) & 0xFFFF;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }

    #[test]
    fn much_faster_than_array() {
        let model = DelayModel::nominal();
        let crit = |kind| {
            let m = MultiplierCircuit::generate(kind, 16).unwrap();
            let delays = DelayAssignment::uniform(m.netlist(), &model);
            static_critical_path_ns(m.netlist(), &delays).unwrap()
        };
        let array = crit(MultiplierKind::Array);
        let wallace = crit(MultiplierKind::Wallace);
        assert!(
            wallace < 0.7 * array,
            "wallace {wallace} ns vs array {array} ns"
        );
    }
}
