//! The column-bypassing multiplier (paper Fig. 2, after Wen et al.).

use agemul_logic::GateKind;
use agemul_netlist::Netlist;

use crate::array::{finalize_outputs, finish_ripple_row};
use crate::cells::gated_full_adder;
use crate::common::{operand_buses, partial_products, CsaState};
use crate::multiplier::MultiplierParts;
use crate::CircuitError;

/// Builds the n×n column-bypassing multiplier.
///
/// Each full adder in "diagonal" `i` (the cells whose partial product uses
/// multiplicand bit `a_i`) is modified as in the paper:
///
/// * its three inputs pass through **tri-state gates** enabled by `a_i`, so
///   a skipped adder neither switches nor propagates timing events;
/// * a **sum multiplexer** selected by `a_i` forwards the incoming sum
///   (`in0`) straight past the adder when `a_i = 0`, shortening the
///   sensitized path — this is what makes zero-rich multiplicands fast;
/// * carries stay within their diagonal (the carry out of cell `(j, i)`
///   feeds cell `(j+1, i)`), so a disabled diagonal's stale carries are
///   only ever read by other disabled cells — except at the final ripple
///   row, where an **AND mask** with `a_i` forces them to zero, exactly as
///   in the reference design.
pub(crate) fn build(width: usize) -> Result<MultiplierParts, CircuitError> {
    let mut n = Netlist::new();
    let (a, b) = operand_buses(&mut n, width);
    let pp = partial_products(&mut n, &a, &b)?;
    let mut st = CsaState::from_row0(&mut n, &pp);

    // Rows index pp, sums, and carries in lockstep; an iterator chain
    // here would obscure the array geometry.
    #[allow(clippy::needless_range_loop)]
    for j in 1..width {
        st.retire_product_bit();
        let mut sums = Vec::with_capacity(width);
        let mut carries = Vec::with_capacity(width);
        for i in 0..width {
            let enable = a.net(i);
            let x = st.sum_from_above(&mut n, i);
            let fa = gated_full_adder(&mut n, x, pp[i][j], st.carries[i], enable)?;
            // Bypass mux: a_i = 0 routes the incoming sum straight through.
            let sum = n.add_gate(GateKind::Mux2, &[x, fa.sum, enable])?;
            sums.push(sum);
            carries.push(fa.carry);
        }
        st.sums = sums;
        st.carries = carries;
    }
    st.retire_product_bit();

    finish_ripple_row(&mut n, &mut st, Some(&a))?;
    let product = finalize_outputs(&mut n, &st);
    Ok(MultiplierParts {
        netlist: n,
        a,
        b,
        product,
    })
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, Logic};
    use agemul_netlist::{DelayAssignment, EventSim, FuncSim};

    use crate::{MultiplierCircuit, MultiplierKind};

    #[test]
    fn four_bit_exhaustive() {
        let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some((a * b) as u128),
                    "{a} × {b}"
                );
            }
        }
    }

    #[test]
    fn outputs_always_defined_despite_floating_cells() {
        // With zero-rich multiplicands, many adders float — the bypass
        // muxes and carry masks must still produce fully defined products.
        let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for (a, b) in [(0u64, 0xFFu64), (1, 0xFF), (0x80, 0xFF), (0x11, 0xAB)] {
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            for &net in m.product().nets() {
                assert!(
                    sim.value(net).is_known(),
                    "p bit undefined for {a:#x} × {b:#x}"
                );
            }
        }
    }

    #[test]
    fn paper_example_1010_times_1111() {
        // The worked example from Section II-A of the paper.
        let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        sim.eval(&m.encode_inputs(0b1010, 0b1111).unwrap()).unwrap();
        assert_eq!(m.product().decode(sim.values()), Some(0b1010 * 0b1111));
    }

    #[test]
    fn has_more_gates_than_array() {
        let am = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
        let cb = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
        assert!(cb.netlist().gate_count() > am.netlist().gate_count());
    }

    #[test]
    fn zero_rich_multiplicand_is_faster() {
        // Timing claim behind Fig. 6: more zeros in the multiplicand means
        // shorter sensitized paths.
        let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());

        let worst_case = |a: u64, b: u64| -> f64 {
            let mut sim = EventSim::new(m.netlist(), &topo, delays.clone());
            sim.settle(&[Logic::Zero; 16]).unwrap();
            sim.step(&m.encode_inputs(a, b).unwrap()).unwrap().delay_ns
        };

        // All-ones multiplicand activates every diagonal; a single-bit
        // multiplicand activates one.
        let slow = worst_case(0xFF, 0xFF);
        let fast = worst_case(0x01, 0xFF);
        assert!(
            fast < slow,
            "sparse multiplicand {fast} ns should beat dense {slow} ns"
        );
    }

    #[test]
    fn random_wide_checks() {
        let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 16).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 16) & 0xFFFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 16) & 0xFFFF;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }
}
