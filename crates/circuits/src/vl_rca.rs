//! The didactic variable-latency ripple-carry adder of paper Fig. 4.

use agemul_logic::GateKind;
use agemul_netlist::{Bus, NetId, Netlist};

use crate::common::check_width;
use crate::rca::ripple_carry_adder;
use crate::CircuitError;

/// The paper's Fig. 4 circuit: an n-bit ripple-carry adder plus a hold-logic
/// gate that predicts whether a carry can propagate across the middle of the
/// chain.
///
/// For the 8-bit instance the hold function is
/// `(A₄ ⊕ B₄)·(A₅ ⊕ B₅)` (1-indexed): if either checked stage has equal
/// operand bits it kills or generates the carry locally, bounding the
/// sensitized carry chain, so the addition finishes within the short cycle.
/// When the hold output is `1` the operation takes two cycles.
///
/// Generalized here to any supported width with the two checked stages at
/// `width/2 - 1` and `width/2` (0-indexed).
///
/// # Example
///
/// ```
/// use agemul_circuits::VariableLatencyRca;
/// use agemul_netlist::FuncSim;
/// use agemul_logic::Logic;
///
/// let vl = VariableLatencyRca::generate(8)?;
/// let topo = vl.netlist().topology()?;
/// let mut sim = FuncSim::new(vl.netlist(), &topo);
///
/// // 0b00011000 + 0: both checked bit pairs differ (1 vs 0) →
/// // a carry could ripple across the middle, so hold = 1 (two cycles).
/// sim.eval(&vl.encode_inputs(0b0001_1000, 0)?)?;
/// assert_eq!(sim.value(vl.hold()), Logic::One);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct VariableLatencyRca {
    netlist: Netlist,
    a: Bus,
    b: Bus,
    sum: Bus,
    carry_out: NetId,
    hold: NetId,
    width: usize,
}

impl VariableLatencyRca {
    /// Generates the adder with hold logic.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthOutOfRange`] for unsupported widths
    /// (the hold function needs `width ≥ 4` to have two distinct interior
    /// check stages).
    pub fn generate(width: usize) -> Result<Self, CircuitError> {
        check_width(width)?;
        if width < 4 {
            return Err(CircuitError::WidthOutOfRange { width });
        }
        let mut n = Netlist::new();
        let a: Bus = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, carry_out) = ripple_carry_adder(&mut n, &a, &b)?;
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        n.mark_output(carry_out, "cout");

        let k = width / 2 - 1;
        let x1 = n.add_gate(GateKind::Xor, &[a.net(k), b.net(k)])?;
        let x2 = n.add_gate(GateKind::Xor, &[a.net(k + 1), b.net(k + 1)])?;
        let hold = n.add_gate(GateKind::And, &[x1, x2])?;
        n.mark_output(hold, "hold");

        Ok(VariableLatencyRca {
            netlist: n,
            a,
            b,
            sum,
            carry_out,
            hold,
            width,
        })
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Operand bus `a`.
    #[inline]
    pub fn a(&self) -> &Bus {
        &self.a
    }

    /// Operand bus `b`.
    #[inline]
    pub fn b(&self) -> &Bus {
        &self.b
    }

    /// The sum bus.
    #[inline]
    pub fn sum(&self) -> &Bus {
        &self.sum
    }

    /// The carry-out net.
    #[inline]
    pub fn carry_out(&self) -> NetId {
        self.carry_out
    }

    /// The hold-logic output: `1` means "this pattern needs two cycles".
    #[inline]
    pub fn hold(&self) -> NetId {
        self.hold
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes an `(a, b)` pair in input order.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::OperandOverflow`] if an operand does not fit.
    pub fn encode_inputs(&self, a: u64, b: u64) -> Result<Vec<agemul_logic::Logic>, CircuitError> {
        for value in [a, b] {
            if self.width < 64 && value >> self.width != 0 {
                return Err(CircuitError::OperandOverflow {
                    value,
                    width: self.width,
                });
            }
        }
        let mut v = Vec::with_capacity(2 * self.width);
        for i in 0..self.width {
            v.push(agemul_logic::Logic::from((a >> i) & 1 == 1));
        }
        for i in 0..self.width {
            v.push(agemul_logic::Logic::from((b >> i) & 1 == 1));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::Logic;
    use agemul_netlist::FuncSim;

    use super::*;

    #[test]
    fn addition_is_correct() {
        let vl = VariableLatencyRca::generate(8).unwrap();
        let topo = vl.netlist().topology().unwrap();
        let mut sim = FuncSim::new(vl.netlist(), &topo);
        for (a, b) in [(0u64, 0u64), (255, 255), (123, 45), (200, 100)] {
            sim.eval(&vl.encode_inputs(a, b).unwrap()).unwrap();
            let total = a + b;
            assert_eq!(vl.sum().decode(sim.values()), Some((total & 0xFF) as u128));
            assert_eq!(sim.value(vl.carry_out()).to_bool(), Some(total > 0xFF));
        }
    }

    #[test]
    fn hold_matches_paper_function() {
        // hold = (A4 ⊕ B4)(A5 ⊕ B5) with 1-indexed bits → 0-indexed 3, 4.
        let vl = VariableLatencyRca::generate(8).unwrap();
        let topo = vl.netlist().topology().unwrap();
        let mut sim = FuncSim::new(vl.netlist(), &topo);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 20) & 0xFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 20) & 0xFF;
            sim.eval(&vl.encode_inputs(a, b).unwrap()).unwrap();
            let expect = (((a >> 3) ^ (b >> 3)) & 1 == 1) && (((a >> 4) ^ (b >> 4)) & 1 == 1);
            assert_eq!(sim.value(vl.hold()).to_bool(), Some(expect), "{a} {b}");
        }
    }

    #[test]
    fn hold_zero_guarantees_bounded_carry_chain() {
        // Paper's safety argument: when hold = 0, a carry cannot ripple
        // through both checked stages, so the sensitized chain is at most
        // `width/2 + 1` adders on either side. Verify the end-to-end carry
        // never crosses from stage k into stage k+2 when hold = 0.
        let vl = VariableLatencyRca::generate(8).unwrap();
        let topo = vl.netlist().topology().unwrap();
        let mut sim = FuncSim::new(vl.netlist(), &topo);
        for a in 0..=255u64 {
            for b in (0..=255u64).step_by(7) {
                sim.eval(&vl.encode_inputs(a, b).unwrap()).unwrap();
                if sim.value(vl.hold()) == Logic::Zero {
                    // With hold = 0, either stage 3 or stage 4 has equal
                    // bits, i.e. carry into stage 5 is generated locally at
                    // stage 3 or 4 (not propagated from below stage 3).
                    let p3 = ((a >> 3) ^ (b >> 3)) & 1 == 1;
                    let p4 = ((a >> 4) ^ (b >> 4)) & 1 == 1;
                    assert!(!(p3 && p4));
                }
            }
        }
    }

    #[test]
    fn width_bounds() {
        assert!(VariableLatencyRca::generate(3).is_err());
        assert!(VariableLatencyRca::generate(4).is_ok());
        assert!(VariableLatencyRca::generate(16).is_ok());
    }
}
