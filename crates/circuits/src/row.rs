//! The row-bypassing multiplier (paper Fig. 3, after Ohban et al.).

use agemul_logic::{GateKind, Logic};
use agemul_netlist::{NetId, Netlist};

use crate::array::finalize_outputs;
use crate::cells::{full_adder, gated_full_adder};
use crate::common::{operand_buses, partial_products, CsaState};
use crate::multiplier::MultiplierParts;
use crate::CircuitError;

/// Builds the n×n row-bypassing multiplier.
///
/// Adder row `j` is controlled by multiplicator bit `b_j`: when `b_j = 0`
/// the row adds nothing, so the entire row is skipped —
///
/// * tri-state gates (enable `b_j`) freeze the row's adder inputs;
/// * a **sum multiplexer** per cell forwards the incoming sum from the row
///   above;
/// * a **carry multiplexer** per cell forwards the incoming carry from the
///   diagonal neighbour above (for the first row the bypassed carry is
///   constant zero — matching the paper's "select 0 as the carry bit").
///
/// One subtlety of row bypassing that column bypassing avoids: when row `j`
/// is skipped, the carry arriving at the row's **left edge** (weight `j`)
/// has no adder to absorb it, because the cell that would consume it is
/// frozen. Real row-bypassing arrays add a column of correction cells on
/// the left edge for exactly this; here each row emits a *leftover carry*
/// `L_j = !b_j · c_{j-1,0}` and the final ripple row is extended downward
/// to weight 1 to sum the leftovers back in. This is also why the
/// row-bypassing multiplier is the larger of the two bypassing designs —
/// two muxes per cell plus the left-edge correction — matching the paper's
/// area comparison (Fig. 25).
pub(crate) fn build(width: usize) -> Result<MultiplierParts, CircuitError> {
    let mut n = Netlist::new();
    let (a, b) = operand_buses(&mut n, width);
    let pp = partial_products(&mut n, &a, &b)?;
    let mut st = CsaState::from_row0(&mut n, &pp);

    // leftovers[j] (weight j) for rows whose incoming left-edge carry is
    // not structurally zero.
    let mut leftovers: Vec<Option<NetId>> = vec![None; width];

    // Rows index pp, sums, and carries in lockstep; an iterator chain
    // here would obscure the array geometry.
    #[allow(clippy::needless_range_loop)]
    for j in 1..width {
        let enable = b.net(j);
        // Leftover carry for the bypassed case (skipped when the incoming
        // carry is the constant-zero net, as in row 1).
        if n.const_level(st.carries[0]) != Some(Logic::Zero) {
            let not_en = n.add_gate(GateKind::Not, &[enable])?;
            let l = n.add_gate(GateKind::And, &[not_en, st.carries[0]])?;
            leftovers[j] = Some(l);
        }

        st.retire_product_bit();
        let mut sums = Vec::with_capacity(width);
        let mut carries = Vec::with_capacity(width);
        for i in 0..width {
            let x = st.sum_from_above(&mut n, i);
            let z = st.carries[i];
            let fa = gated_full_adder(&mut n, x, pp[i][j], z, enable)?;
            // Bypass the sum straight down…
            let sum = n.add_gate(GateKind::Mux2, &[x, fa.sum, enable])?;
            // …and route the diagonal neighbour's carry past the row
            // (weights: carries[i+1] from row j−1 matches the port that
            // row j+1 reads at position i).
            let carry_bypass = if i + 1 < width {
                st.carries[i + 1]
            } else {
                n.const_zero()
            };
            let carry = n.add_gate(GateKind::Mux2, &[carry_bypass, fa.carry, enable])?;
            sums.push(sum);
            carries.push(carry);
        }
        st.sums = sums;
        st.carries = carries;
    }
    st.retire_product_bit();

    // Extended final ripple row: weights 1..n−1 re-absorb the leftover
    // carries, then weights n..2n−1 merge the remaining sums and carries.
    let partial: Vec<NetId> = st.product_bits.clone();
    let zero = n.const_zero();
    let mut final_bits = Vec::with_capacity(2 * width);
    final_bits.push(partial[0]);
    let mut ripple = zero;
    for (j, &p) in partial.iter().enumerate().skip(1) {
        let l = leftovers[j].unwrap_or(zero);
        let bits = full_adder(&mut n, p, l, ripple)?;
        final_bits.push(bits.sum);
        ripple = bits.carry;
    }
    for k in 0..width {
        let x = st.sum_from_above(&mut n, k);
        let bits = full_adder(&mut n, x, st.carries[k], ripple)?;
        final_bits.push(bits.sum);
        ripple = bits.carry;
    }
    st.product_bits = final_bits;

    let product = finalize_outputs(&mut n, &st);
    Ok(MultiplierParts {
        netlist: n,
        a,
        b,
        product,
    })
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, Logic};
    use agemul_netlist::{DelayAssignment, EventSim, FuncSim};

    use crate::{MultiplierCircuit, MultiplierKind};

    #[test]
    fn four_bit_exhaustive() {
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some((a * b) as u128),
                    "{a} × {b}"
                );
            }
        }
    }

    #[test]
    fn five_bit_exhaustive() {
        // Odd width exercises the leftover-carry chain asymmetrically.
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 5).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for a in 0..32u64 {
            for b in 0..32u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some((a * b) as u128),
                    "{a} × {b}"
                );
            }
        }
    }

    #[test]
    fn paper_example_1111_times_1001() {
        // The worked example from Section II-B: rows 1 and 2 are skipped.
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        sim.eval(&m.encode_inputs(0b1111, 0b1001).unwrap()).unwrap();
        assert_eq!(m.product().decode(sim.values()), Some(0b1111 * 0b1001));
    }

    #[test]
    fn outputs_defined_for_sparse_multiplicators() {
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for (a, b) in [(0xFFu64, 0u64), (0xFF, 1), (0xFF, 0x80), (0xAB, 0x11)] {
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            for &net in m.product().nets() {
                assert!(
                    sim.value(net).is_known(),
                    "p bit undefined for {a:#x} × {b:#x}"
                );
            }
        }
    }

    #[test]
    fn has_more_muxes_than_column_bypass() {
        use agemul_logic::GateKind;
        let count_muxes = |m: &MultiplierCircuit| {
            m.netlist()
                .gates()
                .iter()
                .filter(|g| g.kind() == GateKind::Mux2)
                .count()
        };
        let cb = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
        let rb = MultiplierCircuit::generate(MultiplierKind::RowBypass, 8).unwrap();
        assert!(count_muxes(&rb) > count_muxes(&cb));
    }

    #[test]
    fn zero_rich_multiplicator_is_faster() {
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());

        let worst_case = |a: u64, b: u64| -> f64 {
            let mut sim = EventSim::new(m.netlist(), &topo, delays.clone());
            sim.settle(&[Logic::Zero; 16]).unwrap();
            sim.step(&m.encode_inputs(a, b).unwrap()).unwrap().delay_ns
        };

        let slow = worst_case(0xFF, 0xFF);
        let fast = worst_case(0xFF, 0x01);
        assert!(
            fast < slow,
            "sparse multiplicator {fast} ns should beat dense {slow} ns"
        );
    }

    #[test]
    fn random_wide_checks() {
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 16).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let mut state = 0x1319_8A2E_0370_7344u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 16) & 0xFFFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 16) & 0xFFFF;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }

    #[test]
    fn stale_state_between_patterns_is_harmless() {
        // Event-driven runs leave stale values inside skipped rows; the
        // next pattern must still decode correctly.
        let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let mut sim = EventSim::new(m.netlist(), &topo, delays);
        sim.settle(&m.encode_inputs(0xFF, 0xFF).unwrap()).unwrap();
        let seq = [(0xAAu64, 0x00u64), (0xAA, 0xFF), (0x3C, 0x11), (1, 2)];
        for (a, b) in seq {
            sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode_with(|net| sim.value(net)),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }
}
