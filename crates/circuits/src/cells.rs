//! Adder cell builders shared by the multiplier generators.

use agemul_logic::GateKind;
use agemul_netlist::{NetId, Netlist, NetlistError};

/// Outputs of a single adder cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AdderBits {
    pub sum: NetId,
    pub carry: NetId,
}

/// Builds a gate-level full adder: `sum = x ⊕ y ⊕ z`,
/// `carry = (x·y) + (z·(x⊕y))` — 2 XOR, 2 AND, 1 OR.
pub(crate) fn full_adder(
    n: &mut Netlist,
    x: NetId,
    y: NetId,
    z: NetId,
) -> Result<AdderBits, NetlistError> {
    let xy = n.add_gate(GateKind::Xor, &[x, y])?;
    let sum = n.add_gate(GateKind::Xor, &[xy, z])?;
    let g1 = n.add_gate(GateKind::And, &[x, y])?;
    let g2 = n.add_gate(GateKind::And, &[z, xy])?;
    let carry = n.add_gate(GateKind::Or, &[g1, g2])?;
    Ok(AdderBits { sum, carry })
}

/// Builds a gate-level half adder: `sum = x ⊕ y`, `carry = x·y`.
pub(crate) fn half_adder(n: &mut Netlist, x: NetId, y: NetId) -> Result<AdderBits, NetlistError> {
    let sum = n.add_gate(GateKind::Xor, &[x, y])?;
    let carry = n.add_gate(GateKind::And, &[x, y])?;
    Ok(AdderBits { sum, carry })
}

/// A full adder whose three inputs pass through tri-state gates enabled by
/// `enable` — the cell body used by both bypassing multipliers. When
/// `enable` is low the adder's internal nodes hold their previous values, so
/// it neither switches (power) nor contributes timing events; downstream
/// muxes/ANDs controlled by the same `enable` mask its stale outputs.
pub(crate) fn gated_full_adder(
    n: &mut Netlist,
    x: NetId,
    y: NetId,
    z: NetId,
    enable: NetId,
) -> Result<AdderBits, NetlistError> {
    let xg = n.add_gate(GateKind::Tbuf, &[x, enable])?;
    let yg = n.add_gate(GateKind::Tbuf, &[y, enable])?;
    let zg = n.add_gate(GateKind::Tbuf, &[z, enable])?;
    full_adder(n, xg, yg, zg)
}

#[cfg(test)]
mod tests {
    use agemul_logic::Logic;
    use agemul_netlist::FuncSim;

    use super::*;

    fn eval3(build_gated: bool, x: bool, y: bool, z: bool) -> (Logic, Logic) {
        let mut n = Netlist::new();
        let xi = n.add_input("x");
        let yi = n.add_input("y");
        let zi = n.add_input("z");
        let bits = if build_gated {
            let en = n.const_one();
            gated_full_adder(&mut n, xi, yi, zi, en).unwrap()
        } else {
            full_adder(&mut n, xi, yi, zi).unwrap()
        };
        n.mark_output(bits.sum, "s");
        n.mark_output(bits.carry, "c");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::from(x), Logic::from(y), Logic::from(z)])
            .unwrap();
        (sim.value(bits.sum), sim.value(bits.carry))
    }

    #[test]
    fn full_adder_truth_table() {
        for x in [false, true] {
            for y in [false, true] {
                for z in [false, true] {
                    let (s, c) = eval3(false, x, y, z);
                    let total = x as u8 + y as u8 + z as u8;
                    assert_eq!(s, Logic::from(total & 1 == 1), "{x}{y}{z}");
                    assert_eq!(c, Logic::from(total >= 2), "{x}{y}{z}");
                }
            }
        }
    }

    #[test]
    fn gated_full_adder_enabled_matches_plain() {
        for x in [false, true] {
            for y in [false, true] {
                for z in [false, true] {
                    assert_eq!(eval3(true, x, y, z), eval3(false, x, y, z));
                }
            }
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for x in [false, true] {
            for y in [false, true] {
                let mut n = Netlist::new();
                let xi = n.add_input("x");
                let yi = n.add_input("y");
                let bits = half_adder(&mut n, xi, yi).unwrap();
                n.mark_output(bits.sum, "s");
                n.mark_output(bits.carry, "c");
                let t = n.topology().unwrap();
                let mut sim = FuncSim::new(&n, &t);
                sim.eval(&[Logic::from(x), Logic::from(y)]).unwrap();
                assert_eq!(sim.value(bits.sum), Logic::from(x ^ y));
                assert_eq!(sim.value(bits.carry), Logic::from(x & y));
            }
        }
    }

    #[test]
    fn disabled_gated_adder_floats() {
        let mut n = Netlist::new();
        let xi = n.add_input("x");
        let yi = n.add_input("y");
        let zi = n.add_input("z");
        let en = n.add_input("en");
        let bits = gated_full_adder(&mut n, xi, yi, zi, en).unwrap();
        n.mark_output(bits.sum, "s");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One, Logic::One, Logic::One, Logic::Zero])
            .unwrap();
        // With the tri-states off, the adder's output is undefined — the
        // multiplier generators must mask it downstream.
        assert_eq!(sim.value(bits.sum), Logic::X);
    }

    #[test]
    fn full_adder_gate_budget() {
        let mut n = Netlist::new();
        let xi = n.add_input("x");
        let yi = n.add_input("y");
        let zi = n.add_input("z");
        full_adder(&mut n, xi, yi, zi).unwrap();
        assert_eq!(n.gate_count(), 5);
        let before = n.gate_count();
        let en = n.const_one();
        gated_full_adder(&mut n, xi, yi, zi, en).unwrap();
        assert_eq!(n.gate_count() - before, 8); // 3 TBUF + 5 FA gates
    }
}
