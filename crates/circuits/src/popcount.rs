//! Population-count and magnitude-comparison builders.
//!
//! These are the combinational guts of the AHL's judging blocks: a judging
//! block asserts "one cycle" when the number of zeros in the judged operand
//! is at least the skip threshold — i.e. `popcount(!operand) ≥ n`. Building
//! them at gate level lets the area accounting for the proposed
//! architecture (paper Fig. 25) count real transistors instead of guesses.

use agemul_logic::GateKind;
use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

use crate::cells::{full_adder, half_adder};

/// Appends a population counter over `bits`, returning the count as a
/// little-endian bus of `⌈log₂(n+1)⌉` bits.
///
/// Implemented as the classic carry-save reduction: pair bits into half/full
/// adders level by level until one bus remains.
///
/// # Errors
///
/// Propagates netlist construction failures.
///
/// # Example
///
/// ```
/// use agemul_circuits::popcount;
/// use agemul_netlist::{Bus, FuncSim, Netlist};
///
/// let mut n = Netlist::new();
/// let bits: Bus = (0..5).map(|i| n.add_input(format!("x{i}"))).collect();
/// let count = popcount(&mut n, &bits)?;
/// count.nets().iter().enumerate().for_each(|(i, &c)| n.mark_output(c, format!("c{i}")));
///
/// let topo = n.topology()?;
/// let mut sim = FuncSim::new(&n, &topo);
/// sim.eval(&bits.encode(0b10110)?)?; // three ones
/// assert_eq!(count.decode(sim.values()), Some(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn popcount(n: &mut Netlist, bits: &Bus) -> Result<Bus, NetlistError> {
    // columns[w] = nets of weight 2^w awaiting reduction.
    let mut columns: Vec<Vec<NetId>> = vec![bits.nets().to_vec()];
    loop {
        let done = columns.iter().all(|c| c.len() <= 1);
        if done {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let fa = full_adder(n, col[i], col[i + 1], col[i + 2])?;
                next[w].push(fa.sum);
                next[w + 1].push(fa.carry);
                i += 3;
            }
            if col.len() - i == 2 {
                let ha = half_adder(n, col[i], col[i + 1])?;
                next[w].push(ha.sum);
                next[w + 1].push(ha.carry);
            } else if col.len() - i == 1 {
                next[w].push(col[i]);
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }
    let zero = n.const_zero();
    Ok(columns
        .into_iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect())
}

/// Appends a comparator asserting `value(bus) ≥ k` for a constant `k`.
///
/// Uses the subtraction trick: compute `bus + (!k) + 1` over the bus width
/// plus one guard bit and take the carry out — equivalently `bus − k ≥ 0`.
/// Here implemented directly as a borrow-ripple: `borrow_{i+1} =
/// majority(!bus_i, k_i, borrow_i)` and the final borrow's complement is
/// the answer.
///
/// # Errors
///
/// Propagates netlist construction failures.
///
/// # Example
///
/// ```
/// use agemul_circuits::{popcount, greater_equal_const};
/// use agemul_netlist::{Bus, FuncSim, Netlist};
/// use agemul_logic::Logic;
///
/// let mut n = Netlist::new();
/// let bits: Bus = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
/// let ge = greater_equal_const(&mut n, &bits, 9)?;
/// n.mark_output(ge, "ge");
/// let topo = n.topology()?;
/// let mut sim = FuncSim::new(&n, &topo);
/// sim.eval(&bits.encode(11)?)?;
/// assert_eq!(sim.value(ge), Logic::One);
/// sim.eval(&bits.encode(8)?)?;
/// assert_eq!(sim.value(ge), Logic::Zero);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn greater_equal_const(n: &mut Netlist, bus: &Bus, k: u64) -> Result<NetId, NetlistError> {
    if bus.width() < 64 && k >> bus.width() != 0 {
        // k exceeds the representable range: the comparison is constant 0.
        return Ok(n.const_zero());
    }
    if k == 0 {
        return Ok(n.const_one());
    }
    // Ripple the borrow of bus − k from the LSB.
    // borrow_out = (!x & k) | (!x & borrow) | (k & borrow), with k a known
    // constant each stage simplifies to one or two gates.
    let mut borrow = n.const_zero();
    for i in 0..bus.width() {
        let x = bus.net(i);
        let k_i = (k >> i) & 1 == 1;
        borrow = if k_i {
            // borrow' = !x | borrow
            let nx = n.add_gate(GateKind::Not, &[x])?;
            n.add_gate(GateKind::Or, &[nx, borrow])?
        } else {
            // borrow' = !x & borrow
            let nx = n.add_gate(GateKind::Not, &[x])?;
            n.add_gate(GateKind::And, &[nx, borrow])?
        };
    }
    n.add_gate(GateKind::Not, &[borrow])
}

/// Appends the "count of zero bits in `bus` is at least `k`" predicate —
/// one AHL judging block at gate level: inverters, a popcount tree, and a
/// constant comparator.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn zeros_at_least(n: &mut Netlist, bus: &Bus, k: u64) -> Result<NetId, NetlistError> {
    let inverted: Result<Bus, NetlistError> = bus
        .nets()
        .iter()
        .map(|&b| n.add_gate(GateKind::Not, &[b]))
        .collect();
    let count = popcount(n, &inverted?)?;
    greater_equal_const(n, &count, k)
}

#[cfg(test)]
mod tests {
    use agemul_logic::Logic;
    use agemul_netlist::FuncSim;

    use super::*;

    #[test]
    fn popcount_exhaustive_6bit() {
        let mut n = Netlist::new();
        let bits: Bus = (0..6).map(|i| n.add_input(format!("x{i}"))).collect();
        let count = popcount(&mut n, &bits).unwrap();
        for (i, &c) in count.nets().iter().enumerate() {
            n.mark_output(c, format!("c{i}"));
        }
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        for v in 0..64u128 {
            sim.eval(&bits.encode(v).unwrap()).unwrap();
            assert_eq!(
                count.decode(sim.values()),
                Some(v.count_ones() as u128),
                "{v:#b}"
            );
        }
    }

    #[test]
    fn popcount_single_bit() {
        let mut n = Netlist::new();
        let bits: Bus = (0..1).map(|i| n.add_input(format!("x{i}"))).collect();
        let count = popcount(&mut n, &bits).unwrap();
        assert_eq!(count.width(), 1);
        assert_eq!(count.net(0), bits.net(0));
    }

    #[test]
    fn ge_const_exhaustive_5bit() {
        for k in 0..=32u64 {
            let mut n = Netlist::new();
            let bits: Bus = (0..5).map(|i| n.add_input(format!("x{i}"))).collect();
            let ge = greater_equal_const(&mut n, &bits, k).unwrap();
            n.mark_output(ge, "ge");
            let topo = n.topology().unwrap();
            let mut sim = FuncSim::new(&n, &topo);
            for v in 0..32u128 {
                sim.eval(&bits.encode(v).unwrap()).unwrap();
                assert_eq!(sim.value(ge).to_bool(), Some(v >= k as u128), "v={v} k={k}");
            }
        }
    }

    #[test]
    fn zeros_at_least_matches_software() {
        let mut n = Netlist::new();
        let bits: Bus = (0..8).map(|i| n.add_input(format!("x{i}"))).collect();
        let pred = zeros_at_least(&mut n, &bits, 5).unwrap();
        n.mark_output(pred, "z5");
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        for v in 0..256u128 {
            sim.eval(&bits.encode(v).unwrap()).unwrap();
            let zeros = 8 - (v as u64).count_ones();
            assert_eq!(sim.value(pred).to_bool(), Some(zeros >= 5), "{v:#010b}");
        }
    }

    #[test]
    fn degenerate_thresholds() {
        let mut n = Netlist::new();
        let bits: Bus = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
        let always = greater_equal_const(&mut n, &bits, 0).unwrap();
        let never = greater_equal_const(&mut n, &bits, 16).unwrap();
        assert_eq!(n.const_level(always), Some(Logic::One));
        assert_eq!(n.const_level(never), Some(Logic::Zero));
    }
}
