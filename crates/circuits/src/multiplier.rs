//! The public multiplier handle and kind selector.

use std::fmt;

use agemul_logic::Logic;
use agemul_netlist::{Bus, Netlist};

use crate::{array, booth, column, common, row, wallace, CircuitError};

/// Which operand a bypassing multiplier keys its skipping (and therefore the
/// AHL its judging) on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `a` operand (multiplicand) — used by column bypassing.
    Multiplicand,
    /// The `b` operand (multiplicator) — used by row bypassing.
    Multiplicator,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Multiplicand => f.write_str("multiplicand"),
            Operand::Multiplicator => f.write_str("multiplicator"),
        }
    }
}

/// The three multiplier architectures the paper compares.
///
/// # Example
///
/// ```
/// use agemul_circuits::{MultiplierKind, Operand};
///
/// assert_eq!(MultiplierKind::ColumnBypass.judged_operand(), Operand::Multiplicand);
/// assert_eq!(MultiplierKind::RowBypass.judged_operand(), Operand::Multiplicator);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Normal array multiplier (paper Fig. 1) — the "AM" baseline.
    Array,
    /// Column-bypassing multiplier (paper Fig. 2).
    ColumnBypass,
    /// Row-bypassing multiplier (paper Fig. 3).
    RowBypass,
    /// Wallace-tree multiplier — extension baseline with a logarithmic
    /// critical path (not part of the paper's comparison).
    Wallace,
    /// Radix-4 Booth-encoded multiplier — the substrate of the paper's
    /// related-work variable-latency Booth designs (ref. 18).
    Booth,
}

impl MultiplierKind {
    /// The paper's three architectures, in presentation order.
    pub const PAPER: [MultiplierKind; 3] = [
        MultiplierKind::Array,
        MultiplierKind::ColumnBypass,
        MultiplierKind::RowBypass,
    ];

    /// Every implemented architecture, paper trio first.
    pub const ALL: [MultiplierKind; 5] = [
        MultiplierKind::Array,
        MultiplierKind::ColumnBypass,
        MultiplierKind::RowBypass,
        MultiplierKind::Wallace,
        MultiplierKind::Booth,
    ];

    /// The operand whose zero count predicts this multiplier's path delay.
    ///
    /// The array and Wallace multipliers have no bypassing; by convention
    /// they report the multiplicand (the choice only matters for variable-
    /// latency judging, where these kinds serve as weak-predictor
    /// baselines). Booth's activity is driven by the multiplicator's digit
    /// pattern.
    pub fn judged_operand(self) -> Operand {
        match self {
            MultiplierKind::Array | MultiplierKind::ColumnBypass | MultiplierKind::Wallace => {
                Operand::Multiplicand
            }
            MultiplierKind::RowBypass | MultiplierKind::Booth => Operand::Multiplicator,
        }
    }

    /// Short label used in experiment tables ("AM", "CB", "RB", …).
    pub fn label(self) -> &'static str {
        match self {
            MultiplierKind::Array => "AM",
            MultiplierKind::ColumnBypass => "CB",
            MultiplierKind::RowBypass => "RB",
            MultiplierKind::Wallace => "WAL",
            MultiplierKind::Booth => "BOOTH",
        }
    }
}

impl fmt::Display for MultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiplierKind::Array => f.write_str("array"),
            MultiplierKind::ColumnBypass => f.write_str("column-bypassing"),
            MultiplierKind::RowBypass => f.write_str("row-bypassing"),
            MultiplierKind::Wallace => f.write_str("wallace-tree"),
            MultiplierKind::Booth => f.write_str("booth-radix4"),
        }
    }
}

/// Internal hand-off from the per-kind generator modules.
pub(crate) struct MultiplierParts {
    pub netlist: Netlist,
    pub a: Bus,
    pub b: Bus,
    pub product: Bus,
}

/// A generated n×n multiplier: the netlist plus its operand/product ports.
///
/// All kinds compute the same function — `product = a × b` over unsigned
/// `width`-bit operands — but differ in topology and therefore in
/// input-dependent delay and switching activity.
///
/// # Example
///
/// ```
/// use agemul_circuits::{MultiplierCircuit, MultiplierKind};
///
/// let m = MultiplierCircuit::generate(MultiplierKind::Array, 16)?;
/// assert_eq!(m.width(), 16);
/// assert_eq!(m.product().width(), 32);
/// # Ok::<(), agemul_circuits::CircuitError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MultiplierCircuit {
    netlist: Netlist,
    a: Bus,
    b: Bus,
    product: Bus,
    kind: MultiplierKind,
    width: usize,
    signed: bool,
}

impl MultiplierCircuit {
    /// Generates an unsigned multiplier of the given kind and operand
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthOutOfRange`] if `width` is outside
    /// [`MIN_WIDTH`](crate::MIN_WIDTH)..=[`MAX_WIDTH`](crate::MAX_WIDTH).
    pub fn generate(kind: MultiplierKind, width: usize) -> Result<Self, CircuitError> {
        common::check_width(width)?;
        let parts = match kind {
            MultiplierKind::Array => array::build(width)?,
            MultiplierKind::ColumnBypass => column::build(width)?,
            MultiplierKind::RowBypass => row::build(width)?,
            MultiplierKind::Wallace => wallace::build(width)?,
            MultiplierKind::Booth => booth::build(width)?,
        };
        Ok(MultiplierCircuit {
            netlist: parts.netlist,
            a: parts.a,
            b: parts.b,
            product: parts.product,
            kind,
            width,
            signed: false,
        })
    }

    /// Generates a radix-4 Booth multiplier for **two's-complement signed**
    /// operands: the `2 × width`-bit product is the signed product's bit
    /// pattern. Operands are still passed as raw bit patterns through
    /// [`encode_inputs`](Self::encode_inputs).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthOutOfRange`] for unsupported widths.
    ///
    /// # Example
    ///
    /// ```
    /// use agemul_circuits::MultiplierCircuit;
    /// use agemul_netlist::FuncSim;
    ///
    /// let m = MultiplierCircuit::generate_signed_booth(8)?;
    /// let topo = m.netlist().topology()?;
    /// let mut sim = FuncSim::new(m.netlist(), &topo);
    /// // −3 × 5 = −15 in 8-bit two's complement.
    /// sim.eval(&m.encode_inputs(0xFD, 0x05)?)?;
    /// let product = m.product().decode(sim.values()).unwrap() as u16 as i16;
    /// assert_eq!(product, -15);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn generate_signed_booth(width: usize) -> Result<Self, CircuitError> {
        common::check_width(width)?;
        let parts = booth::build_signed(width)?;
        Ok(MultiplierCircuit {
            netlist: parts.netlist,
            a: parts.a,
            b: parts.b,
            product: parts.product,
            kind: MultiplierKind::Booth,
            width,
            signed: true,
        })
    }

    /// Whether the product is a two's-complement signed result.
    #[inline]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The underlying combinational netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The multiplicand bus (`a`, LSB first).
    #[inline]
    pub fn a(&self) -> &Bus {
        &self.a
    }

    /// The multiplicator bus (`b`, LSB first).
    #[inline]
    pub fn b(&self) -> &Bus {
        &self.b
    }

    /// The `2 × width`-bit product bus.
    #[inline]
    pub fn product(&self) -> &Bus {
        &self.product
    }

    /// The architecture of this instance.
    #[inline]
    pub fn kind(&self) -> MultiplierKind {
        self.kind
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The operand bus whose zero count the AHL judges for this kind.
    pub fn judged_bus(&self) -> &Bus {
        match self.kind.judged_operand() {
            Operand::Multiplicand => &self.a,
            Operand::Multiplicator => &self.b,
        }
    }

    /// Encodes an `(a, b)` operand pair as a primary-input vector in the
    /// netlist's input order (`a` bits LSB-first, then `b` bits).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::OperandOverflow`] if either operand does not
    /// fit in [`width`](Self::width) bits.
    pub fn encode_inputs(&self, a: u64, b: u64) -> Result<Vec<Logic>, CircuitError> {
        let mut v = Vec::with_capacity(2 * self.width);
        self.encode_inputs_into(a, b, &mut v)?;
        Ok(v)
    }

    /// [`encode_inputs`](Self::encode_inputs) into a caller-owned buffer
    /// (cleared first), so per-pattern hot loops — profiling, functional
    /// verification, workload statistics — can reuse one allocation across
    /// an entire workload.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::OperandOverflow`] if either operand does not
    /// fit in [`width`](Self::width) bits; the buffer is left cleared.
    pub fn encode_inputs_into(
        &self,
        a: u64,
        b: u64,
        buf: &mut Vec<Logic>,
    ) -> Result<(), CircuitError> {
        buf.clear();
        let check = |value: u64| -> Result<(), CircuitError> {
            if self.width < 64 && value >> self.width != 0 {
                Err(CircuitError::OperandOverflow {
                    value,
                    width: self.width,
                })
            } else {
                Ok(())
            }
        };
        check(a)?;
        check(b)?;
        for i in 0..self.width {
            buf.push(Logic::from((a >> i) & 1 == 1));
        }
        for i in 0..self.width {
            buf.push(Logic::from((b >> i) & 1 == 1));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_metadata() {
        assert_eq!(MultiplierKind::Array.label(), "AM");
        assert_eq!(MultiplierKind::ColumnBypass.label(), "CB");
        assert_eq!(MultiplierKind::RowBypass.label(), "RB");
        assert_eq!(MultiplierKind::ColumnBypass.to_string(), "column-bypassing");
    }

    #[test]
    fn judged_operands() {
        assert_eq!(
            MultiplierKind::ColumnBypass.judged_operand(),
            Operand::Multiplicand
        );
        assert_eq!(
            MultiplierKind::RowBypass.judged_operand(),
            Operand::Multiplicator
        );
    }

    #[test]
    fn encode_layout() {
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 4).unwrap();
        let v = m.encode_inputs(0b0001, 0b1000).unwrap();
        assert_eq!(v.len(), 8);
        assert_eq!(v[0], Logic::One); // a0
        assert_eq!(v[4], Logic::Zero); // b0
        assert_eq!(v[7], Logic::One); // b3
    }

    #[test]
    fn encode_rejects_overflow() {
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 4).unwrap();
        assert!(matches!(
            m.encode_inputs(16, 0),
            Err(CircuitError::OperandOverflow { value: 16, .. })
        ));
        assert!(m.encode_inputs(15, 15).is_ok());
    }

    #[test]
    fn width_checked() {
        assert!(MultiplierCircuit::generate(MultiplierKind::Array, 1).is_err());
        assert!(MultiplierCircuit::generate(MultiplierKind::Array, 65).is_err());
    }

    #[test]
    fn judged_bus_selects_correct_operand() {
        let cb = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 4).unwrap();
        assert_eq!(cb.judged_bus().net(0), cb.a().net(0));
        let rb = MultiplierCircuit::generate(MultiplierKind::RowBypass, 4).unwrap();
        assert_eq!(rb.judged_bus().net(0), rb.b().net(0));
    }
}
