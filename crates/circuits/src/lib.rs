//! Gate-level circuit generators for the aging-aware multiplier study.
//!
//! This crate builds, as [`agemul_netlist::Netlist`]s, every combinational
//! circuit the paper evaluates:
//!
//! * [`MultiplierKind::Array`] — the normal n×n array multiplier (AM) of
//!   Fig. 1: a carry-save adder array with a final ripple row.
//! * [`MultiplierKind::ColumnBypass`] — the low-power column-bypassing
//!   multiplier of Fig. 2 (Wen et al., ISCAS'05): full adders in the
//!   diagonal controlled by multiplicand bit `a_i` are skipped through
//!   tri-state gates and a sum multiplexer whenever `a_i = 0`.
//! * [`MultiplierKind::RowBypass`] — the low-power row-bypassing multiplier
//!   of Fig. 3 (Ohban et al., APCCAS'02): the whole adder row controlled by
//!   multiplicator bit `b_j` is skipped (sum *and* carry multiplexers) when
//!   `b_j = 0`.
//! * [`ripple_carry_adder`] — a plain RCA building block.
//! * [`VariableLatencyRca`] — the didactic 8-bit variable-latency adder with
//!   hold logic from Fig. 4, used by the quickstart example.
//!
//! All three multipliers share the same carry-save skeleton, so their
//! functional outputs are identical (`a × b`), while their *timing* and
//! *switching activity* differ — exactly the contrast the paper studies.
//!
//! # Example
//!
//! ```
//! use agemul_circuits::{MultiplierCircuit, MultiplierKind};
//! use agemul_netlist::FuncSim;
//!
//! let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8)?;
//! let topo = m.netlist().topology()?;
//! let mut sim = FuncSim::new(m.netlist(), &topo);
//! sim.eval(&m.encode_inputs(23, 91)?)?;
//! assert_eq!(m.product().decode(sim.values()), Some(23 * 91));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod booth;
mod cells;
mod cla;
mod column;
mod common;
mod compressor;
mod csela;
mod error;
mod multiplier;
mod popcount;
mod rca;
mod row;
mod vl_rca;
mod wallace;

pub use cla::kogge_stone_adder;
pub use compressor::BitColumns;
pub use csela::carry_select_adder;
pub use error::CircuitError;
pub use multiplier::{MultiplierCircuit, MultiplierKind, Operand};
pub use popcount::{greater_equal_const, popcount, zeros_at_least};
pub use rca::ripple_carry_adder;
pub use vl_rca::VariableLatencyRca;

/// Maximum supported operand width in bits.
///
/// Products are decoded into `u128`, so operands are capped at 64 bits; the
/// paper's experiments use 16 and 32.
pub const MAX_WIDTH: usize = 64;

/// Minimum supported operand width in bits.
pub const MIN_WIDTH: usize = 2;
