//! Carry-select adder.

use agemul_logic::GateKind;
use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

use crate::cells::full_adder;

/// Appends a carry-select adder with the given block size, returning the
/// sum bus and carry-out net.
///
/// Each block computes two ripple sums speculatively — one assuming
/// carry-in 0, one assuming carry-in 1 — and a mux chain picks the right
/// pair as block carries resolve. Depth is `O(block + n/block)` mux-bounded
/// instead of the plain ripple's `O(n)`: the middle ground between the
/// [`ripple_carry_adder`](crate::ripple_carry_adder) and the
/// [`kogge_stone_adder`](crate::kogge_stone_adder), completing the classic
/// adder-family trio used in variable-latency literature (the paper's
/// ref. 13 builds variable-latency *carry-select* addition).
///
/// # Errors
///
/// Returns [`NetlistError::WidthMismatch`] if the buses differ in width.
///
/// # Panics
///
/// Panics if `block` is zero.
///
/// # Example
///
/// ```
/// use agemul_circuits::carry_select_adder;
/// use agemul_netlist::{Bus, FuncSim, Netlist};
/// use agemul_logic::Logic;
///
/// let mut n = Netlist::new();
/// let a: Bus = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
/// let b: Bus = (0..8).map(|i| n.add_input(format!("b{i}"))).collect();
/// let (sum, cout) = carry_select_adder(&mut n, &a, &b, 4)?;
/// sum.nets().iter().enumerate().for_each(|(i, &s)| n.mark_output(s, format!("s{i}")));
/// n.mark_output(cout, "cout");
/// let topo = n.topology()?;
/// let mut sim = FuncSim::new(&n, &topo);
/// let mut inputs = a.encode(250)?;
/// inputs.extend(b.encode(10)?);
/// sim.eval(&inputs)?;
/// assert_eq!(sum.decode(sim.values()), Some((250 + 10) & 0xFF));
/// assert_eq!(sim.value(cout), Logic::One);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn carry_select_adder(
    netlist: &mut Netlist,
    a: &Bus,
    b: &Bus,
    block: usize,
) -> Result<(Bus, NetId), NetlistError> {
    assert!(block > 0, "block size must be positive");
    if a.width() != b.width() {
        return Err(NetlistError::WidthMismatch {
            expected: a.width(),
            got: b.width(),
        });
    }
    let width = a.width();
    let zero = netlist.const_zero();
    let one = netlist.const_one();

    let mut sums: Vec<NetId> = Vec::with_capacity(width);
    let mut carry = zero; // resolved carry entering the current block
    let mut start = 0usize;
    while start < width {
        let end = (start + block).min(width);
        if start == 0 {
            // First block needs no speculation: its carry-in is known.
            let mut c = zero;
            for i in start..end {
                let fa = full_adder(netlist, a.net(i), b.net(i), c)?;
                sums.push(fa.sum);
                c = fa.carry;
            }
            carry = c;
        } else {
            // Speculative pair: ripple with carry-in 0 and carry-in 1.
            let mut c0 = zero;
            let mut c1 = one;
            let mut s0 = Vec::with_capacity(end - start);
            let mut s1 = Vec::with_capacity(end - start);
            for i in start..end {
                let fa0 = full_adder(netlist, a.net(i), b.net(i), c0)?;
                let fa1 = full_adder(netlist, a.net(i), b.net(i), c1)?;
                s0.push(fa0.sum);
                s1.push(fa1.sum);
                c0 = fa0.carry;
                c1 = fa1.carry;
            }
            for (x0, x1) in s0.into_iter().zip(s1) {
                sums.push(netlist.add_gate(GateKind::Mux2, &[x0, x1, carry])?);
            }
            carry = netlist.add_gate(GateKind::Mux2, &[c0, c1, carry])?;
        }
        start = end;
    }
    Ok((Bus::new(sums), carry))
}

#[cfg(test)]
mod tests {
    use agemul_logic::DelayModel;
    use agemul_netlist::{static_critical_path_ns, DelayAssignment, FuncSim};

    use crate::{kogge_stone_adder, ripple_carry_adder};

    use super::*;

    fn build(width: usize, block: usize) -> (Netlist, Bus, Bus, Bus, NetId) {
        let mut n = Netlist::new();
        let a: Bus = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = carry_select_adder(&mut n, &a, &b, block).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        n.mark_output(cout, "cout");
        (n, a, b, sum, cout)
    }

    #[test]
    fn six_bit_exhaustive_all_block_sizes() {
        for block in [1usize, 2, 3, 4, 6, 7] {
            let (n, a, b, sum, cout) = build(6, block);
            let topo = n.topology().unwrap();
            let mut sim = FuncSim::new(&n, &topo);
            for x in 0..64u128 {
                for y in 0..64u128 {
                    let mut inputs = a.encode(x).unwrap();
                    inputs.extend(b.encode(y).unwrap());
                    sim.eval(&inputs).unwrap();
                    let total = x + y;
                    assert_eq!(
                        sum.decode(sim.values()),
                        Some(total & 0x3F),
                        "block {block}: {x}+{y}"
                    );
                    assert_eq!(sim.value(cout).to_bool(), Some(total > 0x3F));
                }
            }
        }
    }

    #[test]
    fn depth_sits_between_ripple_and_prefix() {
        let width = 32;
        let model = DelayModel::nominal();
        let crit =
            |n: &Netlist| static_critical_path_ns(n, &DelayAssignment::uniform(n, &model)).unwrap();

        let (csel, ..) = build(width, 4);

        let mut rc = Netlist::new();
        let a: Bus = (0..width).map(|i| rc.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| rc.add_input(format!("b{i}"))).collect();
        let (s, c) = ripple_carry_adder(&mut rc, &a, &b).unwrap();
        s.nets()
            .iter()
            .enumerate()
            .for_each(|(i, &x)| rc.mark_output(x, format!("s{i}")));
        rc.mark_output(c, "cout");

        let mut ks = Netlist::new();
        let a: Bus = (0..width).map(|i| ks.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| ks.add_input(format!("b{i}"))).collect();
        let (s, c) = kogge_stone_adder(&mut ks, &a, &b).unwrap();
        s.nets()
            .iter()
            .enumerate()
            .for_each(|(i, &x)| ks.mark_output(x, format!("s{i}")));
        ks.mark_output(c, "cout");

        let (rca_d, csel_d, ks_d) = (crit(&rc), crit(&csel), crit(&ks));
        assert!(
            ks_d < csel_d && csel_d < rca_d,
            "KS {ks_d} < CSEL {csel_d} < RCA {rca_d} violated"
        );
    }

    #[test]
    fn block_one_degenerates_to_mux_chain() {
        let (n, a, b, sum, _) = build(4, 1);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        let mut inputs = a.encode(7).unwrap();
        inputs.extend(b.encode(9).unwrap());
        sim.eval(&inputs).unwrap();
        assert_eq!(sum.decode(sim.values()), Some(0)); // 16 mod 16
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut n = Netlist::new();
        let a: Bus = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..5).map(|i| n.add_input(format!("b{i}"))).collect();
        assert!(carry_select_adder(&mut n, &a, &b, 2).is_err());
    }
}
