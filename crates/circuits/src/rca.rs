//! Plain ripple-carry adder building block.

use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

use crate::cells::full_adder;

/// Appends an n-bit ripple-carry adder to `netlist`, returning the sum bus
/// and the carry-out net.
///
/// Both operand buses must have equal width; the carry-in is constant zero.
/// This is the substrate for the paper's Fig. 4 variable-latency adder
/// example and a generally useful component.
///
/// # Errors
///
/// Returns [`NetlistError::WidthMismatch`] if the buses differ in width.
///
/// # Example
///
/// ```
/// use agemul_logic::Logic;
/// use agemul_netlist::{Bus, FuncSim, Netlist};
/// use agemul_circuits::ripple_carry_adder;
///
/// let mut n = Netlist::new();
/// let a: Bus = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
/// let b: Bus = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
/// let (sum, cout) = ripple_carry_adder(&mut n, &a, &b)?;
/// sum.nets().iter().enumerate().for_each(|(i, &s)| n.mark_output(s, format!("s{i}")));
/// n.mark_output(cout, "cout");
///
/// let topo = n.topology()?;
/// let mut sim = FuncSim::new(&n, &topo);
/// let mut inputs = a.encode(9)?;
/// inputs.extend(b.encode(8)?);
/// sim.eval(&inputs)?;
/// assert_eq!(sum.decode(sim.values()), Some((9 + 8) & 0xF));
/// assert_eq!(sim.value(cout), Logic::One); // 17 overflows 4 bits
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ripple_carry_adder(
    netlist: &mut Netlist,
    a: &Bus,
    b: &Bus,
) -> Result<(Bus, NetId), NetlistError> {
    if a.width() != b.width() {
        return Err(NetlistError::WidthMismatch {
            expected: a.width(),
            got: b.width(),
        });
    }
    let mut carry = netlist.const_zero();
    let mut sums = Vec::with_capacity(a.width());
    for i in 0..a.width() {
        let bits = full_adder(netlist, a.net(i), b.net(i), carry)?;
        sums.push(bits.sum);
        carry = bits.carry;
    }
    Ok((Bus::new(sums), carry))
}

#[cfg(test)]
mod tests {
    use agemul_netlist::FuncSim;

    use super::*;

    fn build(width: usize) -> (Netlist, Bus, Bus, Bus, NetId) {
        let mut n = Netlist::new();
        let a: Bus = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = ripple_carry_adder(&mut n, &a, &b).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        n.mark_output(cout, "cout");
        (n, a, b, sum, cout)
    }

    #[test]
    fn four_bit_exhaustive() {
        let (n, a, b, sum, cout) = build(4);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        for x in 0..16u128 {
            for y in 0..16u128 {
                let mut inputs = a.encode(x).unwrap();
                inputs.extend(b.encode(y).unwrap());
                sim.eval(&inputs).unwrap();
                let total = x + y;
                assert_eq!(sum.decode(sim.values()), Some(total & 0xF));
                assert_eq!(sim.value(cout).to_bool(), Some(total > 0xF), "{x} + {y}");
            }
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut n = Netlist::new();
        let a: Bus = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..3).map(|i| n.add_input(format!("b{i}"))).collect();
        assert!(ripple_carry_adder(&mut n, &a, &b).is_err());
    }

    #[test]
    fn gate_count_is_linear() {
        let (n, ..) = build(8);
        // 8 full adders × 5 gates.
        assert_eq!(n.gate_count(), 40);
    }
}
