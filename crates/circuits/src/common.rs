//! Shared scaffolding for the multiplier generators.

use agemul_logic::GateKind;
use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

use crate::CircuitError;

/// Validates an operand width against the crate limits.
pub(crate) fn check_width(width: usize) -> Result<(), CircuitError> {
    if (crate::MIN_WIDTH..=crate::MAX_WIDTH).contains(&width) {
        Ok(())
    } else {
        Err(CircuitError::WidthOutOfRange { width })
    }
}

/// Declares the two operand buses: multiplicand `a` then multiplicator `b`,
/// LSB first. Input order is `a0..a{n-1}, b0..b{n-1}`, which the
/// pattern-encoding helpers rely on.
pub(crate) fn operand_buses(n: &mut Netlist, width: usize) -> (Bus, Bus) {
    let a: Bus = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    (a, b)
}

/// Builds the n×n partial-product matrix `pp[i][j] = a_i AND b_j`.
pub(crate) fn partial_products(
    n: &mut Netlist,
    a: &Bus,
    b: &Bus,
) -> Result<Vec<Vec<NetId>>, NetlistError> {
    let width = a.width();
    let mut pp = Vec::with_capacity(width);
    for i in 0..width {
        let mut row = Vec::with_capacity(width);
        for j in 0..width {
            row.push(n.add_gate(GateKind::And, &[a.net(i), b.net(j)])?);
        }
        pp.push(row);
    }
    Ok(pp)
}

/// Carry-save array state threaded between adder rows.
///
/// After row `j`, `sums[i]` carries weight `i + j` and `carries[i]` carries
/// weight `i + j + 1`. `product_bits` accumulates the finalized low product
/// bits `p_0..p_j` (each row retires its position-0 sum).
#[derive(Clone, Debug)]
pub(crate) struct CsaState {
    pub sums: Vec<NetId>,
    pub carries: Vec<NetId>,
    pub product_bits: Vec<NetId>,
}

impl CsaState {
    /// Row-0 state: "sums" are the `b_0` partial products, carries are zero.
    pub fn from_row0(n: &mut Netlist, pp: &[Vec<NetId>]) -> Self {
        let width = pp.len();
        let zero = n.const_zero();
        CsaState {
            sums: (0..width).map(|i| pp[i][0]).collect(),
            carries: vec![zero; width],
            product_bits: Vec::with_capacity(2 * width),
        }
    }

    /// The "sum from above" feeding row `j` position `i`, i.e. the previous
    /// row's sum at position `i + 1`, or constant zero past the top.
    pub fn sum_from_above(&self, n: &mut Netlist, i: usize) -> NetId {
        if i + 1 < self.sums.len() {
            self.sums[i + 1]
        } else {
            n.const_zero()
        }
    }

    /// Retires the previous row's position-0 sum as the next product bit.
    pub fn retire_product_bit(&mut self) {
        self.product_bits.push(self.sums[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_limits() {
        assert!(check_width(2).is_ok());
        assert!(check_width(16).is_ok());
        assert!(check_width(64).is_ok());
        assert!(check_width(1).is_err());
        assert!(check_width(65).is_err());
    }

    #[test]
    fn operand_input_order() {
        let mut n = Netlist::new();
        let (a, b) = operand_buses(&mut n, 3);
        assert_eq!(n.input_count(), 6);
        // a bits come first, then b bits, both LSB-first.
        assert_eq!(n.inputs()[0], a.net(0));
        assert_eq!(n.inputs()[2], a.net(2));
        assert_eq!(n.inputs()[3], b.net(0));
        assert_eq!(n.net_name(a.net(1)), Some("a1"));
        assert_eq!(n.net_name(b.net(2)), Some("b2"));
    }

    #[test]
    fn pp_matrix_shape() {
        let mut n = Netlist::new();
        let (a, b) = operand_buses(&mut n, 4);
        let pp = partial_products(&mut n, &a, &b).unwrap();
        assert_eq!(pp.len(), 4);
        assert!(pp.iter().all(|r| r.len() == 4));
        assert_eq!(n.gate_count(), 16);
    }

    #[test]
    fn csa_state_threading() {
        let mut n = Netlist::new();
        let (a, b) = operand_buses(&mut n, 4);
        let pp = partial_products(&mut n, &a, &b).unwrap();
        let mut st = CsaState::from_row0(&mut n, &pp);
        assert_eq!(st.sums.len(), 4);
        assert_eq!(st.sums[2], pp[2][0]);
        st.retire_product_bit();
        assert_eq!(st.product_bits, vec![pp[0][0]]);
        // Past-the-top reads are constant zero.
        let top = st.sum_from_above(&mut n, 3);
        assert_eq!(n.const_level(top), Some(agemul_logic::Logic::Zero));
    }
}
