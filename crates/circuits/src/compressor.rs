//! Generic carry-save column reduction (Wallace/Dadda-style compressor).

use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

use crate::cells::{full_adder, half_adder};
use crate::cla::kogge_stone_adder;

/// A set of addend bits organized by binary weight: `columns[w]` holds all
/// bits of weight `2^w` that remain to be summed.
///
/// This is the intermediate form shared by the Wallace-tree and Booth
/// multipliers: partial-product generation fills the columns, and
/// [`reduce_to_sum`] compresses them into a single bus.
#[derive(Clone, Debug, Default)]
pub struct BitColumns {
    columns: Vec<Vec<NetId>>,
}

impl BitColumns {
    /// Creates an empty column set spanning `width` weights.
    pub fn new(width: usize) -> Self {
        BitColumns {
            columns: vec![Vec::new(); width],
        }
    }

    /// Number of weights (output width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Adds one bit of the given weight; bits beyond the width are
    /// discarded (modular arithmetic, as in any fixed-width multiplier).
    pub fn push(&mut self, weight: usize, bit: NetId) {
        if weight < self.columns.len() {
            self.columns[weight].push(bit);
        }
    }

    /// The tallest column height — the compressor's work metric.
    pub fn max_height(&self) -> usize {
        self.columns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Compresses the columns with layers of 3:2 (full-adder) and 2:2
    /// (half-adder) counters until every column holds at most two bits,
    /// then merges the remaining two rows with a ripple carry chain.
    ///
    /// The number of compression layers is `O(log₁.₅ h)` for initial
    /// height `h`, giving the logarithmic array depth that distinguishes a
    /// Wallace tree from the linear-depth array multiplier.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures.
    pub fn reduce_to_sum(mut self, n: &mut Netlist) -> Result<Bus, NetlistError> {
        let width = self.columns.len();
        while self.max_height() > 2 {
            let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
            for (w, col) in self.columns.iter().enumerate() {
                let mut i = 0;
                while col.len() - i >= 3 {
                    let fa = full_adder(n, col[i], col[i + 1], col[i + 2])?;
                    next[w].push(fa.sum);
                    if w + 1 < width {
                        next[w + 1].push(fa.carry);
                    }
                    i += 3;
                }
                if col.len() - i == 2 {
                    let ha = half_adder(n, col[i], col[i + 1])?;
                    next[w].push(ha.sum);
                    if w + 1 < width {
                        next[w + 1].push(ha.carry);
                    }
                } else if col.len() - i == 1 {
                    next[w].push(col[i]);
                }
            }
            self.columns = next;
        }

        // Final carry-propagate stage: a log-depth Kogge–Stone adder, so
        // the compressor's logarithmic depth is not wasted on a ripple.
        let zero = n.const_zero();
        let x: Bus = self
            .columns
            .iter()
            .map(|col| col.first().copied().unwrap_or(zero))
            .collect();
        let y: Bus = self
            .columns
            .iter()
            .map(|col| col.get(1).copied().unwrap_or(zero))
            .collect();
        let (sum, _carry_out) = kogge_stone_adder(n, &x, &y)?;
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::Logic;
    use agemul_netlist::FuncSim;

    use super::*;

    /// Sums k input bits placed at assorted weights and checks the result
    /// against software arithmetic, exhaustively over input assignments.
    fn check_columns(placements: &[(usize, usize)], width: usize) {
        // placements: (input_index, weight)
        let input_count = placements.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut n = Netlist::new();
        let inputs: Vec<NetId> = (0..input_count)
            .map(|i| n.add_input(format!("x{i}")))
            .collect();
        let mut cols = BitColumns::new(width);
        for &(i, w) in placements {
            cols.push(w, inputs[i]);
        }
        let sum = cols.reduce_to_sum(&mut n).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        for assignment in 0u64..(1 << input_count) {
            let vec: Vec<Logic> = (0..input_count)
                .map(|i| Logic::from((assignment >> i) & 1 == 1))
                .collect();
            sim.eval(&vec).unwrap();
            let expect: u128 = placements
                .iter()
                .filter(|&&(i, _)| (assignment >> i) & 1 == 1)
                .map(|&(_, w)| 1u128 << w)
                .sum::<u128>()
                & ((1u128 << width) - 1);
            assert_eq!(
                sum.decode(sim.values()),
                Some(expect),
                "assignment {assignment:#b}"
            );
        }
    }

    #[test]
    fn single_tall_column() {
        // Seven bits of weight 0: a population count in disguise.
        let placements: Vec<(usize, usize)> = (0..7).map(|i| (i, 0)).collect();
        check_columns(&placements, 4);
    }

    #[test]
    fn mixed_weights() {
        check_columns(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 0)], 5);
    }

    #[test]
    fn truncation_is_modular() {
        // Bits at the top weight whose carries fall off the end.
        check_columns(&[(0, 2), (1, 2), (2, 2)], 3);
    }

    #[test]
    fn duplicate_bit_reuse() {
        // The same input net used at several weights (×3 multiplier).
        check_columns(&[(0, 0), (0, 1), (1, 0), (1, 1)], 4);
    }

    #[test]
    fn empty_columns_are_zero() {
        let mut n = Netlist::new();
        let cols = BitColumns::new(4);
        let sum = cols.reduce_to_sum(&mut n).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        sim.eval(&[]).unwrap();
        assert_eq!(sum.decode(sim.values()), Some(0));
    }

    #[test]
    fn compressor_depth_is_logarithmic() {
        // 32 bits in one column: layers ≈ log₁.₅(32) ≈ 9, far below 32.
        let mut n = Netlist::new();
        let inputs: Vec<NetId> = (0..32).map(|i| n.add_input(format!("x{i}"))).collect();
        let mut cols = BitColumns::new(8);
        for &i in &inputs {
            cols.push(0, i);
        }
        let sum = cols.reduce_to_sum(&mut n).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        let topo = n.topology().unwrap();
        assert!(topo.max_level() < 40, "depth {}", topo.max_level());
    }
}
