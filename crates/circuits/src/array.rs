//! The normal array multiplier (paper Fig. 1).

use agemul_netlist::{Bus, Netlist, NetlistError};

use crate::cells::full_adder;
use crate::common::{operand_buses, partial_products, CsaState};
use crate::multiplier::MultiplierParts;
use crate::CircuitError;

/// Builds the n×n array multiplier: a carry-save adder array whose FAs are
/// always active, closed by a ripple row for the upper product bits.
///
/// Structure (weights tracked via [`CsaState`]): row `j ∈ 1..n` adds the
/// `b_j` partial-product row; each row retires its position-0 sum as product
/// bit `p_{j-1}`; the final ripple row merges the remaining sums and carries
/// into `p_n..p_{2n-1}`.
pub(crate) fn build(width: usize) -> Result<MultiplierParts, CircuitError> {
    let mut n = Netlist::new();
    let (a, b) = operand_buses(&mut n, width);
    let pp = partial_products(&mut n, &a, &b)?;
    let mut st = CsaState::from_row0(&mut n, &pp);

    // Rows index pp, sums, and carries in lockstep; an iterator chain
    // here would obscure the array geometry.
    #[allow(clippy::needless_range_loop)]
    for j in 1..width {
        st.retire_product_bit();
        let mut sums = Vec::with_capacity(width);
        let mut carries = Vec::with_capacity(width);
        for i in 0..width {
            let x = st.sum_from_above(&mut n, i);
            let bits = full_adder(&mut n, x, pp[i][j], st.carries[i])?;
            sums.push(bits.sum);
            carries.push(bits.carry);
        }
        st.sums = sums;
        st.carries = carries;
    }
    st.retire_product_bit();

    finish_ripple_row(&mut n, &mut st, None)?;
    let product = finalize_outputs(&mut n, &st);
    Ok(MultiplierParts {
        netlist: n,
        a,
        b,
        product,
    })
}

/// Appends the final ripple row, optionally masking each incoming carry with
/// an AND gate (used by the column-bypassing multiplier, whose skipped
/// diagonals leave stale carries that must be forced to zero).
pub(crate) fn finish_ripple_row(
    n: &mut Netlist,
    st: &mut CsaState,
    carry_masks: Option<&Bus>,
) -> Result<(), NetlistError> {
    let width = st.carries.len();
    let mut ripple = n.const_zero();
    for k in 0..width {
        let x = st.sum_from_above(n, k);
        let y = match carry_masks {
            Some(masks) => {
                n.add_gate(agemul_logic::GateKind::And, &[st.carries[k], masks.net(k)])?
            }
            None => st.carries[k],
        };
        let bits = full_adder(n, x, y, ripple)?;
        st.product_bits.push(bits.sum);
        ripple = bits.carry;
    }
    // The final carry out is structurally zero for in-range operands
    // (a·b < 2^{2n}) and is dropped.
    Ok(())
}

/// Marks the accumulated product bits as primary outputs `p0..`.
pub(crate) fn finalize_outputs(n: &mut Netlist, st: &CsaState) -> Bus {
    for (k, &bit) in st.product_bits.iter().enumerate() {
        n.mark_output(bit, format!("p{k}"));
    }
    Bus::new(st.product_bits.clone())
}

#[cfg(test)]
mod tests {
    use agemul_netlist::FuncSim;

    use crate::{MultiplierCircuit, MultiplierKind};

    #[test]
    fn four_bit_exhaustive() {
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 4).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some((a * b) as u128),
                    "{a} × {b}"
                );
            }
        }
    }

    #[test]
    fn product_width_is_double() {
        for w in [2, 3, 5, 8] {
            let m = MultiplierCircuit::generate(MultiplierKind::Array, w).unwrap();
            assert_eq!(m.product().width(), 2 * w);
        }
    }

    #[test]
    fn gate_population_is_quadratic() {
        let m4 = MultiplierCircuit::generate(MultiplierKind::Array, 4).unwrap();
        let m8 = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
        // n² AND + n·5 FA gates per CSA row… roughly 4× when doubling n.
        let ratio = m8.netlist().gate_count() as f64 / m4.netlist().gate_count() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn corner_operands() {
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        for (a, b) in [(0, 0), (0, 255), (255, 0), (255, 255), (1, 255), (128, 128)] {
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }
}
