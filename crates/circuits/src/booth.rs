//! Radix-4 Booth-encoded multiplier (extension).
//!
//! The paper's related work ([18], Olivieri) builds variable-latency
//! pipelines on Booth multipliers; this module provides the gate-level
//! substrate to study that variant: modified-Booth digit encoding
//! (digits ∈ {−2, −1, 0, +1, +2}), negation via bit inversion plus a
//! correction bit, and the shared carry-save column compressor.
//!
//! Operands are unsigned; the encoder zero-extends the multiplicator so
//! the top digit is never negative-weighted incorrectly, and all
//! arithmetic is modulo 2^(2n), which is exact for unsigned products.

use agemul_logic::GateKind;
use agemul_netlist::{NetId, Netlist, NetlistError};

use crate::common::operand_buses;
use crate::compressor::BitColumns;
use crate::multiplier::MultiplierParts;
use crate::CircuitError;

/// One Booth digit's decoded control lines.
struct BoothControls {
    /// |digit| ≥ 1 uses ×1 of the multiplicand.
    one: NetId,
    /// |digit| = 2 uses ×2 (left shift by one).
    two: NetId,
    /// Digit is negative: invert the row and add a +1 correction.
    neg: NetId,
}

/// Decodes the triplet (b₂ⱼ₊₁, b₂ⱼ, b₂ⱼ₋₁) into control lines.
fn decode_digit(
    n: &mut Netlist,
    hi: NetId,
    mid: NetId,
    lo: NetId,
) -> Result<BoothControls, NetlistError> {
    let one = n.add_gate(GateKind::Xor, &[mid, lo])?;
    let not_mid = n.add_gate(GateKind::Not, &[mid])?;
    let not_lo = n.add_gate(GateKind::Not, &[lo])?;
    let not_hi = n.add_gate(GateKind::Not, &[hi])?;
    let plus2 = n.add_gate(GateKind::And, &[not_hi, mid, lo])?;
    let minus2 = n.add_gate(GateKind::And, &[hi, not_mid, not_lo])?;
    let two = n.add_gate(GateKind::Or, &[plus2, minus2])?;
    let both = n.add_gate(GateKind::And, &[mid, lo])?;
    let not_both = n.add_gate(GateKind::Not, &[both])?;
    let neg = n.add_gate(GateKind::And, &[hi, not_both])?;
    Ok(BoothControls { one, two, neg })
}

/// Builds the n×n radix-4 Booth multiplier for unsigned operands.
pub(crate) fn build(width: usize) -> Result<MultiplierParts, CircuitError> {
    build_with_signedness(width, false)
}

/// Builds the n×n radix-4 Booth multiplier for two's-complement signed
/// operands (2n-bit signed product).
pub(crate) fn build_signed(width: usize) -> Result<MultiplierParts, CircuitError> {
    build_with_signedness(width, true)
}

/// Shared Booth construction. `signed` selects how operands extend beyond
/// their width: zero-extension (unsigned) or sign-extension (two's
/// complement) — Booth encoding handles everything else identically
/// because all arithmetic is modulo 2^(2n).
fn build_with_signedness(width: usize, signed: bool) -> Result<MultiplierParts, CircuitError> {
    let mut n = Netlist::new();
    let (a, b) = operand_buses(&mut n, width);
    let zero = n.const_zero();
    let out_width = 2 * width;

    let a_bit = |k: isize| -> Option<NetId> {
        if (0..width as isize).contains(&k) {
            Some(a.net(k as usize))
        } else if signed && k >= width as isize {
            Some(a.net(width - 1)) // sign-extend the multiplicand
        } else {
            None
        }
    };
    let b_bit = |k: isize, zero: NetId| -> NetId {
        if (0..width as isize).contains(&k) {
            b.net(k as usize)
        } else if signed && k >= width as isize {
            b.net(width - 1) // sign-extend the multiplicator
        } else {
            zero
        }
    };

    let digits = width / 2 + 1;
    let mut cols = BitColumns::new(out_width);

    for j in 0..digits {
        let i = 2 * j as isize;
        let hi = b_bit(i + 1, zero);
        let mid = b_bit(i, zero);
        let lo = b_bit(i - 1, zero);
        // Skip structurally-zero digits (all three triplet bits constant 0).
        if [hi, mid, lo].iter().all(|&x| x == zero) {
            continue;
        }
        let ctl = decode_digit(&mut n, hi, mid, lo)?;

        // Row bits: x_w = neg ⊕ ((one·a_{w−2j}) | (two·a_{w−2j−1})) for
        // w ≥ 2j; weights below 2j stay zero and the two's-complement
        // correction bit `neg` lands at weight 2j.
        for w in (2 * j)..out_width {
            let k = w as isize - 2 * j as isize;
            let t1 = a_bit(k)
                .map(|ak| n.add_gate(GateKind::And, &[ctl.one, ak]))
                .transpose()?;
            let t2 = a_bit(k - 1)
                .map(|ak1| n.add_gate(GateKind::And, &[ctl.two, ak1]))
                .transpose()?;
            let magnitude = match (t1, t2) {
                (Some(x), Some(y)) => Some(n.add_gate(GateKind::Or, &[x, y])?),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            };
            let bit = match magnitude {
                Some(m) => n.add_gate(GateKind::Xor, &[ctl.neg, m])?,
                // Beyond the shifted multiplicand the inverted row is just
                // the sign: `neg` itself.
                None => ctl.neg,
            };
            cols.push(w, bit);
        }
        cols.push(2 * j, ctl.neg);
    }

    let product = cols.reduce_to_sum(&mut n)?;
    for (k, &bit) in product.nets().iter().enumerate() {
        n.mark_output(bit, format!("p{k}"));
    }
    Ok(MultiplierParts {
        netlist: n,
        a,
        b,
        product,
    })
}

#[cfg(test)]
mod tests {
    use agemul_netlist::FuncSim;

    use crate::{MultiplierCircuit, MultiplierKind};

    fn check_exhaustive(width: usize) {
        let m = MultiplierCircuit::generate(MultiplierKind::Booth, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let max = 1u64 << width;
        for a in 0..max {
            for b in 0..max {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                assert_eq!(
                    m.product().decode(sim.values()),
                    Some(u128::from(a) * u128::from(b)),
                    "width {width}: {a} × {b}"
                );
            }
        }
    }

    #[test]
    fn four_bit_exhaustive() {
        check_exhaustive(4);
    }

    #[test]
    fn five_bit_exhaustive() {
        // Odd width: the top Booth digit reads two virtual zero bits.
        check_exhaustive(5);
    }

    #[test]
    fn six_bit_exhaustive() {
        check_exhaustive(6);
    }

    #[test]
    fn random_wide_checks() {
        let m = MultiplierCircuit::generate(MultiplierKind::Booth, 16).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let mut state = 0xB007_0000_DEAD_BEEFu64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 16) & 0xFFFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 16) & 0xFFFF;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some((a as u128) * (b as u128)),
                "{a} × {b}"
            );
        }
    }

    #[test]
    fn signed_exhaustive_5bit() {
        let width = 5usize;
        let m = MultiplierCircuit::generate_signed_booth(width).unwrap();
        assert!(m.is_signed());
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let to_signed = |v: u64, w: u32| -> i64 {
            let shift = 64 - w;
            ((v << shift) as i64) >> shift
        };
        for a in 0..32u64 {
            for b in 0..32u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                let got = m.product().decode(sim.values()).unwrap() as u64;
                let expect = to_signed(a, 5).wrapping_mul(to_signed(b, 5));
                assert_eq!(
                    to_signed(got, 10),
                    expect,
                    "{} × {}",
                    to_signed(a, 5),
                    to_signed(b, 5)
                );
            }
        }
    }

    #[test]
    fn signed_exhaustive_6bit() {
        let width = 6usize;
        let m = MultiplierCircuit::generate_signed_booth(width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let to_signed = |v: u64, w: u32| -> i64 {
            let shift = 64 - w;
            ((v << shift) as i64) >> shift
        };
        for a in 0..64u64 {
            for b in 0..64u64 {
                sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
                let got = m.product().decode(sim.values()).unwrap() as u64;
                let expect = to_signed(a, 6).wrapping_mul(to_signed(b, 6));
                assert_eq!(to_signed(got, 12), expect);
            }
        }
    }

    #[test]
    fn signed_extremes_16bit() {
        let m = MultiplierCircuit::generate_signed_booth(16).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let cases: [(i32, i32); 7] = [
            (i16::MIN as i32, i16::MIN as i32),
            (i16::MIN as i32, i16::MAX as i32),
            (i16::MAX as i32, i16::MAX as i32),
            (-1, -1),
            (-1, i16::MAX as i32),
            (0, i16::MIN as i32),
            (-12345, 321),
        ];
        for (x, y) in cases {
            let a = (x as u32 & 0xFFFF) as u64;
            let b = (y as u32 & 0xFFFF) as u64;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            let got = m.product().decode(sim.values()).unwrap() as u32 as i32;
            assert_eq!(got, x.wrapping_mul(y), "{x} × {y}");
        }
    }

    #[test]
    fn fewer_partial_product_rows_than_array() {
        // Radix-4 halves the addend row count; the compressor sees a much
        // shorter column than the n-row AND matrix.
        let booth = MultiplierCircuit::generate(MultiplierKind::Booth, 16).unwrap();
        let wallace = MultiplierCircuit::generate(MultiplierKind::Wallace, 16).unwrap();
        // Booth trades AND-matrix area for encoder/selector logic; at 16
        // bits the gate counts should be in the same ballpark, with Booth
        // no larger than ~1.3× Wallace.
        let ratio = booth.netlist().gate_count() as f64 / wallace.netlist().gate_count() as f64;
        assert!(ratio < 1.3, "booth/wallace gate ratio {ratio}");
    }
}
