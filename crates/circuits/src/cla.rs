//! Kogge–Stone parallel-prefix (carry-lookahead) adder.

use agemul_logic::GateKind;
use agemul_netlist::{Bus, NetId, Netlist, NetlistError};

/// Appends a Kogge–Stone adder to `netlist`, returning the sum bus and the
/// carry-out net.
///
/// Generate/propagate signals are combined through a log₂-depth prefix
/// tree, so an n-bit addition settles in `O(log n)` gate levels instead of
/// the ripple adder's `O(n)`. The Wallace-tree and Booth multipliers use
/// it as their final carry-propagate stage — without it their compressor
/// trees would still be fronted by a linear ripple and the logarithmic
/// depth would be wasted.
///
/// # Errors
///
/// Returns [`NetlistError::WidthMismatch`] if the buses differ in width.
///
/// # Example
///
/// ```
/// use agemul_circuits::kogge_stone_adder;
/// use agemul_logic::Logic;
/// use agemul_netlist::{Bus, FuncSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a: Bus = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
/// let b: Bus = (0..8).map(|i| n.add_input(format!("b{i}"))).collect();
/// let (sum, cout) = kogge_stone_adder(&mut n, &a, &b)?;
/// sum.nets().iter().enumerate().for_each(|(i, &s)| n.mark_output(s, format!("s{i}")));
/// n.mark_output(cout, "cout");
///
/// let topo = n.topology()?;
/// let mut sim = FuncSim::new(&n, &topo);
/// let mut inputs = a.encode(200)?;
/// inputs.extend(b.encode(100)?);
/// sim.eval(&inputs)?;
/// assert_eq!(sum.decode(sim.values()), Some((200 + 100) & 0xFF));
/// assert_eq!(sim.value(cout), Logic::One);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn kogge_stone_adder(
    netlist: &mut Netlist,
    a: &Bus,
    b: &Bus,
) -> Result<(Bus, NetId), NetlistError> {
    if a.width() != b.width() {
        return Err(NetlistError::WidthMismatch {
            expected: a.width(),
            got: b.width(),
        });
    }
    let width = a.width();
    if width == 0 {
        return Ok((Bus::new(Vec::new()), netlist.const_zero()));
    }

    // Level-0 generate/propagate. The half-sum (XOR) doubles as propagate.
    let mut g: Vec<NetId> = Vec::with_capacity(width);
    let mut p: Vec<NetId> = Vec::with_capacity(width);
    for i in 0..width {
        g.push(netlist.add_gate(GateKind::And, &[a.net(i), b.net(i)])?);
        p.push(netlist.add_gate(GateKind::Xor, &[a.net(i), b.net(i)])?);
    }
    let half_sum = p.clone();

    // Prefix tree: after the last level, g[i] is the carry out of bits 0..=i.
    let mut dist = 1;
    while dist < width {
        let mut next_g = g.clone();
        let mut next_p = p.clone();
        for i in dist..width {
            let t = netlist.add_gate(GateKind::And, &[p[i], g[i - dist]])?;
            next_g[i] = netlist.add_gate(GateKind::Or, &[g[i], t])?;
            next_p[i] = netlist.add_gate(GateKind::And, &[p[i], p[i - dist]])?;
        }
        g = next_g;
        p = next_p;
        dist *= 2;
    }

    // sum_i = half_sum_i ⊕ carry_in_i, carry_in_i = G_{i−1} (0 for bit 0).
    let mut sum = Vec::with_capacity(width);
    sum.push(half_sum[0]);
    for i in 1..width {
        sum.push(netlist.add_gate(GateKind::Xor, &[half_sum[i], g[i - 1]])?);
    }
    Ok((Bus::new(sum), g[width - 1]))
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, Logic};
    use agemul_netlist::{static_critical_path_ns, DelayAssignment, FuncSim};

    use crate::ripple_carry_adder;

    use super::*;

    fn build(width: usize) -> (Netlist, Bus, Bus, Bus, NetId) {
        let mut n = Netlist::new();
        let a: Bus = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = kogge_stone_adder(&mut n, &a, &b).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            n.mark_output(s, format!("s{i}"));
        }
        n.mark_output(cout, "cout");
        (n, a, b, sum, cout)
    }

    #[test]
    fn five_bit_exhaustive() {
        let (n, a, b, sum, cout) = build(5);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        for x in 0..32u128 {
            for y in 0..32u128 {
                let mut inputs = a.encode(x).unwrap();
                inputs.extend(b.encode(y).unwrap());
                sim.eval(&inputs).unwrap();
                let total = x + y;
                assert_eq!(sum.decode(sim.values()), Some(total & 0x1F), "{x}+{y}");
                assert_eq!(sim.value(cout).to_bool(), Some(total > 0x1F), "{x}+{y}");
            }
        }
    }

    #[test]
    fn one_bit_degenerate() {
        let (n, _, _, sum, cout) = build(1);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        sim.eval(&[Logic::One, Logic::One]).unwrap();
        assert_eq!(sum.decode(sim.values()), Some(0));
        assert_eq!(sim.value(cout), Logic::One);
    }

    #[test]
    fn logarithmic_depth_beats_ripple() {
        let width = 32;
        let (ks, ..) = build(width);
        let mut rc = Netlist::new();
        let a: Bus = (0..width).map(|i| rc.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..width).map(|i| rc.add_input(format!("b{i}"))).collect();
        let (sum, cout) = ripple_carry_adder(&mut rc, &a, &b).unwrap();
        for (i, &s) in sum.nets().iter().enumerate() {
            rc.mark_output(s, format!("s{i}"));
        }
        rc.mark_output(cout, "cout");

        let model = DelayModel::nominal();
        let ks_crit = static_critical_path_ns(&ks, &DelayAssignment::uniform(&ks, &model)).unwrap();
        let rc_crit = static_critical_path_ns(&rc, &DelayAssignment::uniform(&rc, &model)).unwrap();
        assert!(ks_crit < 0.4 * rc_crit, "KS {ks_crit} vs RCA {rc_crit}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut n = Netlist::new();
        let a: Bus = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..3).map(|i| n.add_input(format!("b{i}"))).collect();
        assert!(kogge_stone_adder(&mut n, &a, &b).is_err());
    }

    #[test]
    fn random_wide_checks() {
        let (n, a, b, sum, cout) = build(24);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        let mut state = 7u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = u128::from((state >> 11) & 0xFF_FFFF);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = u128::from((state >> 11) & 0xFF_FFFF);
            let mut inputs = a.encode(x).unwrap();
            inputs.extend(b.encode(y).unwrap());
            sim.eval(&inputs).unwrap();
            assert_eq!(sum.decode(sim.values()), Some((x + y) & 0xFF_FFFF));
            assert_eq!(sim.value(cout).to_bool(), Some(x + y > 0xFF_FFFF));
        }
    }
}
