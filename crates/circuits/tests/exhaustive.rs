//! Exhaustive and cross-architecture functional verification.

use agemul_logic::{DelayModel, Logic};
use agemul_netlist::{BatchSim, DelayAssignment, EventSim, FuncSim};

use agemul_circuits::{MultiplierCircuit, MultiplierKind};

/// All architectures, exhaustively, at 6 bits (5 × 4096 products) — one
/// 64-lane batch sweep per multiplicand value.
#[test]
fn all_kinds_exhaustive_6bit() {
    for kind in MultiplierKind::ALL {
        let m = MultiplierCircuit::generate(kind, 6).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = BatchSim::new(m.netlist(), &topo);
        for a in 0..64u64 {
            let patterns: Vec<Vec<Logic>> =
                (0..64u64).map(|b| m.encode_inputs(a, b).unwrap()).collect();
            sim.eval_batch(&patterns).unwrap();
            for b in 0..64u64 {
                assert_eq!(
                    m.product().decode_with(|net| sim.value(net, b as usize)),
                    Some(u128::from(a * b)),
                    "{kind:?}: {a} × {b}"
                );
            }
        }
    }
}

/// The three architectures are functionally interchangeable: identical
/// products on a shared random stream at 16 bits.
#[test]
fn architectures_are_equivalent_16bit() {
    let circuits: Vec<MultiplierCircuit> = MultiplierKind::ALL
        .iter()
        .map(|&k| MultiplierCircuit::generate(k, 16).unwrap())
        .collect();
    let topos: Vec<_> = circuits
        .iter()
        .map(|m| m.netlist().topology().unwrap())
        .collect();
    let mut sims: Vec<FuncSim<'_>> = circuits
        .iter()
        .zip(&topos)
        .map(|(m, t)| FuncSim::new(m.netlist(), t))
        .collect();

    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for _ in 0..400 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (state >> 13) & 0xFFFF;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (state >> 13) & 0xFFFF;
        let mut products = Vec::new();
        for (m, sim) in circuits.iter().zip(&mut sims) {
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            products.push(m.product().decode(sim.values()));
        }
        assert_eq!(products[0], Some(u128::from(a) * u128::from(b)));
        assert!(products.windows(2).all(|w| w[0] == w[1]), "{a} × {b}");
    }
}

/// Event-driven simulation through long random sequences keeps bypassed
/// state consistent at an unusual width (12 bits, neither paper size).
#[test]
fn event_sequences_stay_correct_at_width_12() {
    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let m = MultiplierCircuit::generate(kind, 12).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let mut sim = EventSim::new(m.netlist(), &topo, delays);
        sim.settle(&m.encode_inputs(0, 0).unwrap()).unwrap();
        let mut state = 0x9E37_79B9u64;
        for step in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 17) & 0xFFF;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 17) & 0xFFF;
            sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode_with(|net| sim.value(net)),
                Some(u128::from(a) * u128::from(b)),
                "{kind:?} step {step}: {a} × {b}"
            );
        }
    }
}

/// Sparse-select extremes: all-zero and all-one select operands, where
/// every diagonal/row is simultaneously skipped or active.
#[test]
fn bypass_extremes() {
    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let m = MultiplierCircuit::generate(kind, 10).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = FuncSim::new(m.netlist(), &topo);
        let max = (1u64 << 10) - 1;
        for (a, b) in [
            (0, 0),
            (0, max),
            (max, 0),
            (max, max),
            (1, max),
            (max, 1),
            (1 << 9, max),
            (max, 1 << 9),
        ] {
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some(u128::from(a) * u128::from(b)),
                "{kind:?}: {a} × {b}"
            );
        }
    }
}

/// Widths across the supported range generate, validate, and multiply.
#[test]
fn width_range_spot_checks() {
    for width in [2usize, 3, 7, 17, 24, 33, 48, 64] {
        for kind in MultiplierKind::ALL {
            let m = MultiplierCircuit::generate(kind, width).unwrap();
            let topo = m.netlist().topology().unwrap();
            let mut sim = FuncSim::new(m.netlist(), &topo);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let a = 0xA5A5_A5A5_A5A5_A5A5u64 & mask;
            let b = 0x5A5A_5A5A_5A5A_5A5Au64 & mask;
            sim.eval(&m.encode_inputs(a, b).unwrap()).unwrap();
            assert_eq!(
                m.product().decode(sim.values()),
                Some(u128::from(a) * u128::from(b)),
                "{kind:?} width {width}"
            );
        }
    }
}

/// Outputs are never X/Z for any input at small widths (tri-state masking
/// is airtight), checked exhaustively.
#[test]
fn outputs_always_defined_exhaustive_5bit() {
    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let m = MultiplierCircuit::generate(kind, 5).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = BatchSim::new(m.netlist(), &topo);
        for a in 0..32u64 {
            let patterns: Vec<Vec<Logic>> =
                (0..32u64).map(|b| m.encode_inputs(a, b).unwrap()).collect();
            sim.eval_batch(&patterns).unwrap();
            for &net in m.product().nets() {
                // Every product bit must be a known 0/1 on every lane.
                let word = sim.word(net);
                assert_eq!(
                    word.known() & sim.valid_mask(),
                    sim.valid_mask(),
                    "{kind:?} a={a}: X/Z product bit on net {net:?}"
                );
            }
        }
    }
}

/// Booth and Wallace, exhaustively, at the paper's 8-bit width (2 × 65536
/// products against the host multiplier) — the bypass variants get their
/// exhaustive coverage above; these two close the architecture matrix.
#[test]
fn booth_and_wallace_exhaustive_8bit() {
    for kind in [MultiplierKind::Booth, MultiplierKind::Wallace] {
        let m = MultiplierCircuit::generate(kind, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let mut sim = BatchSim::new(m.netlist(), &topo);
        for a in 0..256u64 {
            for chunk in 0..4u64 {
                let patterns: Vec<Vec<Logic>> = (0..64u64)
                    .map(|i| m.encode_inputs(a, chunk * 64 + i).unwrap())
                    .collect();
                sim.eval_batch(&patterns).unwrap();
                for i in 0..64u64 {
                    let b = chunk * 64 + i;
                    assert_eq!(
                        m.product().decode_with(|net| sim.value(net, i as usize)),
                        Some(u128::from(a * b)),
                        "{kind:?}: {a} × {b}"
                    );
                }
            }
        }
    }
}

/// The signed Booth recoding, exhaustively, at 8 bits: every product is
/// the 16-bit two's-complement pattern of `(a as i8) * (b as i8)`.
#[test]
fn signed_booth_exhaustive_8bit() {
    let m = MultiplierCircuit::generate_signed_booth(8).unwrap();
    let topo = m.netlist().topology().unwrap();
    let mut sim = BatchSim::new(m.netlist(), &topo);
    for a in 0..256u64 {
        for chunk in 0..4u64 {
            let patterns: Vec<Vec<Logic>> = (0..64u64)
                .map(|i| m.encode_inputs(a, chunk * 64 + i).unwrap())
                .collect();
            sim.eval_batch(&patterns).unwrap();
            for i in 0..64u64 {
                let b = chunk * 64 + i;
                let expected = (a as i8 as i16).wrapping_mul(b as i8 as i16);
                let got = m
                    .product()
                    .decode_with(|net| sim.value(net, i as usize))
                    .expect("fully defined product") as u16 as i16;
                assert_eq!(got, expected, "signed Booth: {a:#x} × {b:#x}");
            }
        }
    }
}

/// The carry-select adder, exhaustively, at 8 bits for every block size
/// from degenerate ripple (1) through a single block (8): sum and
/// carry-out against the host adder.
#[test]
fn carry_select_adder_exhaustive_8bit_all_blocks() {
    use agemul_circuits::carry_select_adder;
    use agemul_netlist::{Bus, Netlist};

    for block in [1, 2, 3, 4, 5, 8] {
        let mut n = Netlist::new();
        let a: Bus = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Bus = (0..8).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = carry_select_adder(&mut n, &a, &b, block).unwrap();
        sum.nets()
            .iter()
            .enumerate()
            .for_each(|(i, &s)| n.mark_output(s, format!("s{i}")));
        n.mark_output(cout, "cout");
        let topo = n.topology().unwrap();
        let mut sim = BatchSim::new(&n, &topo);
        for av in 0..256u128 {
            let a_bits = a.encode(av).unwrap();
            for chunk in 0..4u128 {
                let patterns: Vec<Vec<Logic>> = (0..64u128)
                    .map(|i| {
                        let mut p = a_bits.clone();
                        p.extend(b.encode(chunk * 64 + i).unwrap());
                        p
                    })
                    .collect();
                sim.eval_batch(&patterns).unwrap();
                for i in 0..64u128 {
                    let bv = chunk * 64 + i;
                    assert_eq!(
                        sum.decode_with(|net| sim.value(net, i as usize)),
                        Some((av + bv) & 0xFF),
                        "block {block}: {av} + {bv} (sum)"
                    );
                    assert_eq!(
                        sim.value(cout, i as usize) == Logic::One,
                        av + bv > 0xFF,
                        "block {block}: {av} + {bv} (carry)"
                    );
                }
            }
        }
    }
}
