//! The deterministic-replay test layer.
//!
//! Three pins, from strongest to most specific:
//!
//! 1. **Purity**: `(seed → event log)` is a pure function — re-running a
//!    campaign from the same configuration yields byte-identical logs and
//!    identical final fleet state, across traces and routing policies.
//! 2. **Serial ≡ parallel**: the golden log hashes are constants pinned
//!    across *build configurations*. The verify gate runs this suite both
//!    with and without the `parallel` feature, so a work-stealing sweep
//!    that reordered or perturbed anything would break the pinned hashes
//!    even though each configuration stays self-consistent.
//! 3. **Resume identity**: a sim restored from a mid-campaign snapshot
//!    continues the uninterrupted run's event log byte for byte and
//!    converges to the same final state.

use agemul::{MultiplierDesign, SimEngine};
use agemul_aging::BtiModel;
use agemul_circuits::MultiplierKind;
use agemul_fleet::{FleetCampaign, FleetConfig, FleetPolicy, FleetSim, RoutingPolicy, TraceKind};
use agemul_logic::Technology;
use proptest::prelude::*;

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap()
}

fn bti() -> BtiModel {
    BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132)
}

/// A small but non-degenerate scenario: three divergently aged nodes,
/// three epochs, aggressive per-epoch aging so policy actions and AHL
/// state changes actually occur within the horizon.
fn scenario(seed: u64, trace: TraceKind, routing: RoutingPolicy) -> FleetConfig {
    let mut config = FleetConfig::new(3, 3, 48, seed);
    config.trace = trace;
    config.policy = FleetPolicy::baseline(routing);
    config.years_per_epoch = 1.5;
    config
}

/// Runs a scenario to completion; returns the log bytes and the final
/// state snapshot (which covers every node counter, age, and status).
fn run_to_end(config: &FleetConfig) -> (Vec<u8>, agemul_conformance::Json) {
    let design = design();
    let bti = bti();
    let campaign = FleetCampaign::new(&design, &bti, config.clone()).unwrap();
    let mut sim = FleetSim::new(&campaign);
    sim.run(SimEngine::Level, None).unwrap();
    (sim.log().bytes().to_vec(), sim.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Re-running any (seed, trace, policy) scenario reproduces the event
    /// log and the final fleet state exactly.
    #[test]
    fn seed_to_event_log_is_pure(
        seed in any::<u64>(),
        trace_idx in 0usize..4,
        routing_idx in 0usize..3,
    ) {
        let config = scenario(
            seed,
            TraceKind::ALL[trace_idx],
            RoutingPolicy::ALL[routing_idx],
        );
        let (log_a, state_a) = run_to_end(&config);
        let (log_b, state_b) = run_to_end(&config);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(state_a, state_b);
    }

    /// A sim restored from an epoch-`split` snapshot continues the
    /// uninterrupted byte stream exactly and converges to the same state.
    #[test]
    fn resume_mid_campaign_is_byte_identical(
        seed in any::<u64>(),
        split in 1u32..3,
        routing_idx in 0usize..3,
    ) {
        let config = scenario(seed, TraceKind::Uniform, RoutingPolicy::ALL[routing_idx]);
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, config).unwrap();

        let mut uninterrupted = FleetSim::new(&campaign);
        for _ in 0..split {
            uninterrupted.run_epoch(SimEngine::Level, None).unwrap();
        }
        let snapshot = uninterrupted.snapshot();
        let prefix = uninterrupted.log().bytes().to_vec();
        uninterrupted.run(SimEngine::Level, None).unwrap();

        let mut resumed = FleetSim::restore(&campaign, &snapshot).unwrap();
        resumed.run(SimEngine::Level, None).unwrap();

        let mut stitched = prefix;
        stitched.extend_from_slice(resumed.log().bytes());
        prop_assert_eq!(stitched, uninterrupted.log().bytes());
        prop_assert_eq!(resumed.snapshot(), uninterrupted.snapshot());
    }
}

/// Pinned log fingerprints for two seeds of the reference scenario. These
/// constants are the cross-build witness: serial and parallel builds, and
/// any future refactor of the sweep, must keep reproducing them.
const GOLDEN: [(u64, u64); 2] = [
    (0x0A6E_0005, 0xC32E_4F00_5E5D_A074),
    (0xD15E_A5ED_CAFE_F00D, 0x9357_50D7_B5BA_5CF4),
];

#[test]
fn golden_log_hashes_are_stable() {
    for (seed, expected) in GOLDEN {
        let config = scenario(seed, TraceKind::Uniform, RoutingPolicy::AgingAware);
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, config).unwrap();
        let mut sim = FleetSim::new(&campaign);
        sim.run(SimEngine::Level, None).unwrap();
        assert_eq!(
            sim.log().hash(),
            expected,
            "seed {seed:#x}: log hash {:#018x} drifted from the pinned golden value",
            sim.log().hash()
        );
    }
}
