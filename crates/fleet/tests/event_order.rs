//! Event-queue ordering properties.
//!
//! The fleet's replay guarantees rest on the queue's order being *total*
//! and a pure function of the push sequence: `(time_fs, seq)` with a
//! monotone, never-recycled `seq`. These tests pin that order three ways
//! — against sortedness, against a reference model under interleaved
//! push/pop traffic, and against golden hashes of two seeded streams
//! (the cross-build drift detector for the encoding itself).

use agemul_fleet::{epoch_seed, fnv1a64, EventKind, EventQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops come out sorted by `(time_fs, seq)`, and simultaneous events
    /// preserve push order — the order is total, so the pop sequence is
    /// unique.
    #[test]
    fn pops_are_sorted_with_ties_in_push_order(
        times in proptest::collection::vec(0u64..32, 0..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, EventKind::Arrival { op: i as u32 });
        }
        let mut last: Option<(u64, u64)> = None;
        let mut popped = 0usize;
        while let Some(e) = q.pop() {
            let key = (e.time_fs, e.seq);
            if let Some(prev) = last {
                prop_assert!(prev < key, "pop order must strictly increase: {prev:?} then {key:?}");
            }
            // seq == push index here, so equal-time runs popping in
            // increasing seq *is* push order.
            match e.kind {
                EventKind::Arrival { op } => prop_assert_eq!(u64::from(op), e.seq),
                EventKind::Completion { .. } => unreachable!(),
            }
            last = Some(key);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Under arbitrary interleavings of pushes and pops the queue agrees
    /// with a reference model (a sorted set over `(time, seq)`), and
    /// sequence numbers never recycle.
    #[test]
    fn queue_matches_reference_model(
        steps in proptest::collection::vec((0u64..16, any::<bool>()), 0..300),
    ) {
        use std::collections::BTreeSet;
        let mut q = EventQueue::new();
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut next_seq = 0u64;
        for &(time, is_pop) in &steps {
            if is_pop {
                let expect = model.iter().next().copied();
                if let Some(key) = expect {
                    model.remove(&key);
                }
                let got = q.pop().map(|e| (e.time_fs, e.seq));
                prop_assert_eq!(got, expect);
            } else {
                let seq = q.push(time, EventKind::Arrival { op: 0 });
                prop_assert_eq!(seq, next_seq, "sequence numbers must never recycle");
                model.insert((time, seq));
                next_seq += 1;
            }
        }
        while let Some(e) = q.pop() {
            let expect = model.iter().next().copied();
            prop_assert_eq!(Some((e.time_fs, e.seq)), expect);
            model.remove(&(e.time_fs, e.seq));
        }
        prop_assert!(model.is_empty());
    }
}

/// Pinned pop-stream hashes for two seeds: 400 events with heavily
/// colliding timestamps, popped and re-encoded. Any change to the
/// tie-break rule, the sequence discipline, or the byte encoding moves
/// these constants.
const GOLDEN: [(u64, u64); 2] = [
    (0x0A6E_0005, 0x0F47_F41A_2768_5509),
    (0xD15E_A5ED_CAFE_F00D, 0x9A94_9DB2_644B_C0A4),
];

#[test]
fn golden_pop_stream_hashes_are_stable() {
    for (seed, expected) in GOLDEN {
        let mut q = EventQueue::new();
        for i in 0..400u32 {
            // epoch_seed is the workspace's SplitMix64 finalizer: a
            // deterministic, well-mixed stream with only 24 distinct
            // timestamps, so ties are everywhere.
            let roll = epoch_seed(seed, i as usize);
            let time = roll % 24;
            let kind = if roll & 0x100 == 0 {
                EventKind::Arrival { op: i }
            } else {
                EventKind::Completion {
                    node: (roll >> 9) as u32 % 8,
                    op: i,
                }
            };
            q.push(time, kind);
        }
        let mut bytes = Vec::new();
        let mut last: Option<(u64, u64)> = None;
        while let Some(e) = q.pop() {
            let key = (e.time_fs, e.seq);
            if let Some(prev) = last {
                assert!(prev < key, "seed {seed:#x}: order must be total");
            }
            last = Some(key);
            e.encode(&mut bytes);
        }
        assert_eq!(
            fnv1a64(&bytes),
            expected,
            "seed {seed:#x}: pop-stream hash {:#018x} drifted from the pinned golden value",
            fnv1a64(&bytes)
        );
    }
}
