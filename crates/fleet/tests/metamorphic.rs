//! Cross-policy metamorphic relations.
//!
//! Routing policies may change *where* operations execute, but physics
//! they cannot change: with aging switched off every node is identical,
//! so every policy must produce the same completed-op count and the same
//! cycle totals; and under any amount of stress the fleet-total cycle
//! ledger must equal the per-node engine identity
//! `cycles = one_cycle_ops + 2·two_cycle_ops + penalty·errors`
//! summed over nodes.

use agemul::{MultiplierDesign, SimEngine};
use agemul_aging::BtiModel;
use agemul_circuits::MultiplierKind;
use agemul_fleet::{
    epoch_trace, trace_pairs, FleetCampaign, FleetConfig, FleetPolicy, FleetSim, FleetSummary,
    RoutingPolicy, TraceKind,
};
use agemul_logic::Technology;

fn bti() -> BtiModel {
    BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132)
}

fn run(design: &MultiplierDesign, config: FleetConfig) -> FleetSummary {
    let bti = bti();
    let campaign = FleetCampaign::new(design, &bti, config).unwrap();
    let mut sim = FleetSim::new(&campaign);
    sim.run(SimEngine::Level, None).unwrap()
}

/// With σ = 0, zero per-epoch aging, and no burn-in spread, every node is
/// an identical fresh instance: an operation's cycle class depends only
/// on its operands, never on which node served it. All routing policies —
/// including the rejuvenation rotation, which merely shuffles traffic —
/// must therefore complete the same operations in the same cycle totals,
/// with zero errors.
#[test]
fn zero_aging_makes_all_policies_equivalent() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    // Pin the cycle at the fresh whole-workload maximum (operands are pure
    // in (kind, seed, epoch, ops, width), so the anchor covers every epoch)
    // — this test is about routing equivalence, not timing marginality.
    let pairs: Vec<(u64, u64)> = (0..2)
        .flat_map(|epoch| {
            trace_pairs(&epoch_trace(
                TraceKind::Uniform,
                0x0A6E_0005,
                epoch,
                96,
                8,
                1,
            ))
        })
        .collect();
    let cycle_ns = design.profile(&pairs, None).unwrap().max_delay_ns() * 1.05;
    let scenarios = [
        FleetPolicy::baseline(RoutingPolicy::RoundRobin),
        FleetPolicy::baseline(RoutingPolicy::LeastLoaded),
        FleetPolicy::baseline(RoutingPolicy::AgingAware),
        FleetPolicy::with_rotation(RoutingPolicy::AgingAware, 1, 0.25),
    ];
    let summaries: Vec<FleetSummary> = scenarios
        .into_iter()
        .map(|policy| {
            let mut config = FleetConfig::new(4, 2, 96, 0x0A6E_0005);
            config.sigma = 0.0;
            config.years_per_epoch = 0.0;
            config.burn_in_years = 0.0;
            config.cycle_ns = cycle_ns;
            config.policy = policy;
            run(&design, config)
        })
        .collect();
    let reference = &summaries[0];
    assert_eq!(reference.completed_ops, 2 * 96, "every arrival completes");
    for s in &summaries {
        assert_eq!(
            s.errors, 0,
            "{}: fresh identical nodes cannot violate",
            s.policy
        );
        assert_eq!(s.undetected, 0, "{}", s.policy);
        assert_eq!(s.dropped_ops, 0, "{}", s.policy);
        assert_eq!(s.completed_ops, reference.completed_ops, "{}", s.policy);
        assert_eq!(s.cycles, reference.cycles, "{}", s.policy);
        assert_eq!(s.one_cycle_ops, reference.one_cycle_ops, "{}", s.policy);
        assert_eq!(s.two_cycle_ops, reference.two_cycle_ops, "{}", s.policy);
    }
}

/// Under heavy stress (low skip so marginal one-cycle paths exist, fast
/// aging, divergent corners) the ledger identity holds per node and the
/// fleet totals are exactly the per-node sums — and the scenario really
/// does produce detected violations, so the identity is exercised with a
/// non-zero penalty term.
#[test]
fn fleet_totals_match_the_per_node_cycle_identity_under_stress() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    for routing in RoutingPolicy::ALL {
        let mut config = FleetConfig::new(3, 4, 96, 0x0A6E_0005);
        config.skip = 2;
        config.years_per_epoch = 2.0;
        config.policy = FleetPolicy::baseline(routing);
        let summary = run(&design, config);

        let penalty = u64::from(3u32);
        let mut ops = 0u64;
        let mut cycles = 0u64;
        let mut one = 0u64;
        let mut two = 0u64;
        let mut errors = 0u64;
        for report in &summary.node_reports {
            let c = &report.counters;
            assert_eq!(
                c.cycles,
                c.one_cycle_ops + 2 * c.two_cycle_ops + penalty * c.errors,
                "{}: node {} breaks the engine identity",
                summary.policy,
                report.id
            );
            ops += c.ops;
            cycles += c.cycles;
            one += c.one_cycle_ops;
            two += c.two_cycle_ops;
            errors += c.errors;
        }
        assert_eq!(summary.completed_ops, ops, "{}", summary.policy);
        assert_eq!(summary.cycles, cycles, "{}", summary.policy);
        assert_eq!(summary.one_cycle_ops, one, "{}", summary.policy);
        assert_eq!(summary.two_cycle_ops, two, "{}", summary.policy);
        assert_eq!(summary.errors, errors, "{}", summary.policy);
        assert_eq!(
            summary.recovery_cycles,
            penalty * errors,
            "{}",
            summary.policy
        );
        assert!(
            summary.errors > 0,
            "{}: the stress scenario must actually produce violations for \
             the identity to be exercised (got zero)",
            summary.policy
        );
    }
}
