//! The fleet simulator: campaign configuration, the per-epoch
//! discrete-event loop, and checkpoint/resume.
//!
//! # Model
//!
//! A **campaign** fixes everything seed-derived and immutable: the design,
//! the resolved cycle anchor, the per-gate BTI stress probabilities of the
//! reference workload, and the shared [`ProfileCache`]. A **sim** is the
//! mutable fleet state evolving over epochs. Each epoch:
//!
//! 1. every non-retired node recomputes its delay profile — corner
//!    variation × BTI factors at the node's *effective age*, snapped onto
//!    the shared 1/4096 grid, re-timed through a plan-reuse
//!    [`CornerProfiler`] behind the cache (this sweep is the parallel
//!    axis: work-stealing chunks, results stitched back in node order,
//!    bit-identical to serial);
//! 2. the epoch's trace arrivals flow through the [`EventQueue`]; the
//!    routing policy picks a node per arrival, the node's persistent AHL
//!    classifies the operation, the Razor bank checks it, and the cycle
//!    accounting matches [`agemul::run_engine`] exactly;
//! 3. at the boundary, the health policy retires / down-clocks / rests
//!    nodes, and every node's effective age advances **in proportion to
//!    its utilization** — the feedback loop that makes aging-aware routing
//!    a wear-leveling problem.
//!
//! # Determinism
//!
//! The entire run is a pure function of the campaign configuration: trace
//! generation is seeded per epoch, every routing tie-break ends in the
//! node id, the event order is total (`(time_fs, seq)`), and floats are
//! only ever produced by the same code path in the same order. The
//! replayable **event log** (arrivals, routing decisions, completions,
//! policy actions, encoded as fixed-width bytes) is the witness: serial vs
//! parallel and resumed vs uninterrupted runs must produce identical
//! bytes, which `tests/replay_equiv.rs` pins.

use std::sync::Arc;

use agemul::{
    quantize_factors, CancelToken, CoreError, CornerProfiler, CycleDecision, DetectOutcome,
    MultiplierDesign, PatternProfile, ProfileCache, RazorBank, RazorConfig, SimEngine,
};
use agemul_aging::{stress_probabilities, BtiModel, VariationModel};
use agemul_conformance::Json;

use crate::event::{fnv1a64, Event, EventKind, EventQueue};
use crate::node::{NodeCounters, NodeState, NodeStatus};
use crate::policy::{route, FleetPolicy, RoutingPolicy};
use crate::trace::{epoch_seed, epoch_trace, trace_pairs, TraceKind};

/// Femtoseconds per nanosecond.
const FS_PER_NS: f64 = 1.0e6;

/// Femtoseconds per microsecond (throughput reporting).
const FS_PER_US: f64 = 1.0e9;

/// Utilization clamp for the age-advance law: a node can age at most this
/// many times faster than nominal in one epoch, however overloaded.
const MAX_UTILIZATION: f64 = 3.0;

/// Snapshot schema identifier.
const SNAPSHOT_SCHEMA: &str = "agemul-fleet-snapshot-v1";

/// Salt decorrelating node-corner seeds from epoch-trace seeds derived
/// from the same base.
const CORNER_SALT: u64 = 0xF1EE_7000_C0DE_0001;

/// Configuration of one fleet scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetConfig {
    /// Fleet size.
    pub nodes: usize,
    /// Campaign length in epochs.
    pub epochs: usize,
    /// Operations per epoch trace.
    pub ops_per_epoch: usize,
    /// Base seed: traces, per-node corners, and every derived stream.
    pub seed: u64,
    /// Lognormal σ of per-gate time-zero variation (per-node corners).
    pub sigma: f64,
    /// Nominal BTI age advance per epoch at fair-share utilization,
    /// years.
    pub years_per_epoch: f64,
    /// Heterogeneous burn-in: node `i` starts at
    /// `burn_in_years · i / (nodes − 1)` years of effective age (a fleet
    /// deployed in waves, not all at once).
    pub burn_in_years: f64,
    /// Workload flavour.
    pub trace: TraceKind,
    /// Routing + health policy.
    pub policy: FleetPolicy,
    /// AHL base skip threshold.
    pub skip: u32,
    /// Clock period, nanoseconds. `<= 0` anchors it at campaign build
    /// time: the fresh nominal max delay of the epoch-0 trace's
    /// *one-cycle-eligible* operations (judged zeros ≥ `skip`) ×
    /// [`guardband`](Self::guardband) — the AHL contract, where two-cycle
    /// operations need not fit in one period and aging pushes marginal
    /// one-cycle paths past it.
    pub cycle_ns: f64,
    /// Anchor guardband over the fresh observed max delay.
    pub guardband: f64,
    /// Fleet lifetime quorum: the campaign's lifetime metric is the first
    /// epoch count at which fewer than `quorum` nodes remain active. `0`
    /// resolves to a majority (`nodes / 2 + 1`).
    pub quorum: usize,
    /// Extra cycles charged per Razor-detected violation (paper: 3).
    pub error_penalty_cycles: u32,
    /// Work-stealing claim granularity of the node re-profiling sweep.
    pub chunk: usize,
}

impl FleetConfig {
    /// A scenario over `nodes` nodes for `epochs` epochs of
    /// `ops_per_epoch` operations, with the workspace defaults: uniform
    /// trace, round-robin baseline policy, σ 0.05, half a year of BTI per
    /// epoch, one year of burn-in spread, Skip-7, anchored cycle with a
    /// 5 % guardband, majority quorum.
    pub fn new(nodes: usize, epochs: usize, ops_per_epoch: usize, seed: u64) -> Self {
        FleetConfig {
            nodes,
            epochs,
            ops_per_epoch,
            seed,
            sigma: 0.05,
            years_per_epoch: 0.5,
            burn_in_years: 1.0,
            trace: TraceKind::Uniform,
            policy: FleetPolicy::baseline(RoutingPolicy::RoundRobin),
            skip: 7,
            cycle_ns: 0.0,
            guardband: 1.05,
            quorum: 0,
            error_penalty_cycles: 3,
            chunk: 1,
        }
    }
}

/// The derived corner seed of node `id` — the fleet analogue of the Monte
/// Carlo campaign's corner-seed finalizer, salted so node corners never
/// collide with epoch trace streams derived from the same base seed.
pub fn node_corner_seed(base: u64, id: u32) -> u64 {
    epoch_seed(base ^ CORNER_SALT, id as usize)
}

/// Everything immutable a fleet scenario shares across epochs.
pub struct FleetCampaign<'a> {
    design: &'a MultiplierDesign,
    config: FleetConfig,
    bti: BtiModel,
    variation: VariationModel,
    /// Per-gate signal-high probabilities of the reference workload — the
    /// BTI stress input, shared by every node and age.
    p_high: Vec<f64>,
    cache: ProfileCache,
    nominal_cycle_fs: u64,
    epoch_span_fs: u64,
    fingerprint: u64,
}

impl<'a> FleetCampaign<'a> {
    /// Prepares a campaign: resolves the cycle anchor from the epoch-0
    /// trace under fresh nominal delays, derives the reference workload's
    /// BTI stress probabilities, and resolves the lifetime quorum.
    ///
    /// # Errors
    ///
    /// Propagates profiling/statistics errors from the design layer.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid configuration (zero nodes,
    /// epochs, or operations; non-finite or negative rates; a guardband
    /// below 1; a quorum above the fleet size) — these are programmer
    /// errors, mirroring `McConfig`.
    pub fn new(
        design: &'a MultiplierDesign,
        bti: &BtiModel,
        mut config: FleetConfig,
    ) -> Result<Self, CoreError> {
        assert!(config.nodes > 0, "a fleet needs at least one node");
        assert!(config.epochs > 0, "a campaign needs at least one epoch");
        assert!(
            config.ops_per_epoch > 0,
            "an epoch needs at least one operation"
        );
        assert!(
            config.sigma.is_finite() && config.sigma >= 0.0,
            "sigma must be finite and non-negative, got {}",
            config.sigma
        );
        assert!(
            config.years_per_epoch.is_finite() && config.years_per_epoch >= 0.0,
            "years_per_epoch must be finite and non-negative"
        );
        assert!(
            config.burn_in_years.is_finite() && config.burn_in_years >= 0.0,
            "burn_in_years must be finite and non-negative"
        );
        assert!(
            config.guardband.is_finite() && config.guardband >= 1.0,
            "guardband must be finite and at least 1, got {}",
            config.guardband
        );
        assert!(
            config.quorum <= config.nodes,
            "quorum {} exceeds fleet size {}",
            config.quorum,
            config.nodes
        );

        // The reference workload — epoch 0's trace — anchors the cycle
        // and supplies the stress statistics every aging factor derives
        // from. Arrival spacing is irrelevant to operands, so any
        // positive placeholder cycle works here.
        let reference = epoch_trace(
            config.trace,
            config.seed,
            0,
            config.ops_per_epoch,
            design.width(),
            1_000_000,
        );
        let pairs = trace_pairs(&reference);
        if config.cycle_ns <= 0.0 {
            let fresh = design.profile(&pairs, None)?;
            let one_cycle_max = fresh
                .records()
                .iter()
                .filter(|r| r.zeros >= config.skip)
                .map(|r| r.delay_ns)
                .fold(0.0, f64::max);
            let anchor = if one_cycle_max > 0.0 {
                one_cycle_max
            } else {
                fresh.max_delay_ns()
            };
            config.cycle_ns = anchor * config.guardband;
        }
        assert!(
            config.cycle_ns.is_finite() && config.cycle_ns > 0.0,
            "resolved cycle must be finite and positive"
        );
        if config.quorum == 0 {
            config.quorum = config.nodes / 2 + 1;
        }
        let stats = design.workload_stats(&pairs)?;
        let p_high = stress_probabilities(design.circuit().netlist(), &stats);

        let nominal_cycle_fs = (config.cycle_ns * FS_PER_NS).round() as u64;
        let epoch_span_fs = (config.ops_per_epoch as u64 + 16) * nominal_cycle_fs;
        let fingerprint = config_fingerprint(design, &config);
        let variation = VariationModel::new(config.sigma);
        Ok(FleetCampaign {
            design,
            config,
            bti: bti.clone(),
            variation,
            p_high,
            cache: ProfileCache::new(),
            nominal_cycle_fs,
            epoch_span_fs,
            fingerprint,
        })
    }

    /// The resolved configuration (cycle anchor and quorum filled in).
    #[inline]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The design under simulation.
    #[inline]
    pub fn design(&self) -> &'a MultiplierDesign {
        self.design
    }

    /// The campaign's profile cache (hit/miss/eviction telemetry).
    #[inline]
    pub fn cache(&self) -> &ProfileCache {
        &self.cache
    }

    /// The nominal (anchor) cycle in femtoseconds.
    #[inline]
    pub fn nominal_cycle_fs(&self) -> u64 {
        self.nominal_cycle_fs
    }

    /// The resolved-configuration fingerprint embedded in snapshots.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Profiles one node at one effective age: corner variation × BTI at
    /// `age_years`, grid-quantized, evaluated through the cache. On the
    /// `Level` engine a cache miss re-times the worker's plan-reuse
    /// profiler (`slot`, lazily compiled once per worker); on `Event` it
    /// rebuilds from scratch on the reference engine — byte-identical
    /// either way.
    ///
    /// # Errors
    ///
    /// Propagates delay-pipeline and simulation errors, including
    /// cancellation.
    pub fn node_profile(
        &self,
        slot: &mut Option<CornerProfiler<'a>>,
        corner_seed: u64,
        age_years: f64,
        pairs: &[(u64, u64)],
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<PatternProfile>, CoreError> {
        let netlist = self.design.circuit().netlist();
        let variation = self.variation.factors(netlist, corner_seed);
        let composed: Vec<f64> = variation
            .iter()
            .zip(&self.p_high)
            .map(|(v, &p)| v * self.bti.delay_factor(age_years, p))
            .collect();
        let factors = quantize_factors(&composed);
        let delays = self.design.delay_assignment(Some(&factors))?;
        self.cache
            .get_or_insert_with(self.design, &delays, pairs, || match engine {
                SimEngine::Level => {
                    if slot.is_none() {
                        let nominal = self.design.delay_assignment(None)?;
                        *slot = Some(self.design.corner_profiler(&nominal));
                    }
                    match slot.as_mut() {
                        Some(profiler) => {
                            profiler.retime(&delays);
                            profiler.profile(pairs, cancel)
                        }
                        None => unreachable!("slot was just populated"),
                    }
                }
                SimEngine::Event => self.design.profile_with_delays_supervised(
                    pairs,
                    &delays,
                    SimEngine::Event,
                    cancel,
                ),
            })
    }
}

/// Fingerprint over every result-determining configuration field (floats
/// by bit pattern, the design by architecture label and width).
fn config_fingerprint(design: &MultiplierDesign, config: &FleetConfig) -> u64 {
    let mut words: Vec<u64> = vec![
        fnv1a64(design.kind().label().as_bytes()),
        design.width() as u64,
        config.nodes as u64,
        config.epochs as u64,
        config.ops_per_epoch as u64,
        config.seed,
        config.sigma.to_bits(),
        config.years_per_epoch.to_bits(),
        config.burn_in_years.to_bits(),
        config.trace.tag(),
        u64::from(config.skip),
        config.cycle_ns.to_bits(),
        config.guardband.to_bits(),
        config.quorum as u64,
        u64::from(config.error_penalty_cycles),
    ];
    words.extend(config.policy.fingerprint_words());
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Log-record framing tags.
const REC_EVENT: u8 = 0x10;
const REC_ROUTE: u8 = 0x11;
const REC_DROP: u8 = 0x12;
const REC_POLICY: u8 = 0x13;

/// How an executed operation was classified — the routing-record class
/// byte in the event log.
const CLASS_ONE_CYCLE_OK: u8 = 1;
const CLASS_ONE_CYCLE_ERROR: u8 = 2;
const CLASS_UNDETECTED: u8 = 3;
const CLASS_TWO_CYCLES: u8 = 4;

/// Policy-action tags in the event log.
const ACTION_REST: u8 = 1;
const ACTION_WAKE: u8 = 2;
const ACTION_DOWNCLOCK: u8 = 3;
const ACTION_RETIRE: u8 = 4;

/// The replayable event log: a fixed-width byte encoding of every popped
/// event, routing decision, drop, and policy action. Byte equality
/// between two logs is the replay-identity criterion;
/// [`hash`](Self::hash) is the compact fingerprint reports carry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventLog {
    bytes: Vec<u8>,
    records: u64,
}

impl EventLog {
    fn append_event(&mut self, event: &Event) {
        self.bytes.push(REC_EVENT);
        event.encode(&mut self.bytes);
        self.records += 1;
    }

    fn append_route(&mut self, node: u32, cycles: u32, class: u8) {
        self.bytes.push(REC_ROUTE);
        self.bytes.extend_from_slice(&node.to_le_bytes());
        self.bytes.extend_from_slice(&cycles.to_le_bytes());
        self.bytes.push(class);
        self.records += 1;
    }

    fn append_drop(&mut self, op: u32) {
        self.bytes.push(REC_DROP);
        self.bytes.extend_from_slice(&op.to_le_bytes());
        self.records += 1;
    }

    fn append_policy(&mut self, epoch: u32, action: u8, node: u32) {
        self.bytes.push(REC_POLICY);
        self.bytes.extend_from_slice(&epoch.to_le_bytes());
        self.bytes.push(action);
        self.bytes.extend_from_slice(&node.to_le_bytes());
        self.records += 1;
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// FNV-1a fingerprint of the encoded bytes.
    pub fn hash(&self) -> u64 {
        fnv1a64(&self.bytes)
    }
}

/// One running fleet: the mutable state a campaign evolves over epochs.
pub struct FleetSim<'a, 'b> {
    campaign: &'b FleetCampaign<'a>,
    nodes: Vec<NodeState>,
    epoch: u32,
    rr_cursor: u32,
    log: EventLog,
    completed_ops: u64,
    dropped_ops: u64,
    last_completion_fs: u64,
    lifetime_epoch: Option<u32>,
}

impl<'a, 'b> FleetSim<'a, 'b> {
    /// A fresh fleet at epoch zero: node `i` gets its derived corner
    /// seed, its burn-in age along the deployment ramp, and the nominal
    /// cycle.
    pub fn new(campaign: &'b FleetCampaign<'a>) -> Self {
        let config = campaign.config();
        let nodes = (0..config.nodes as u32)
            .map(|id| {
                let age = if config.nodes > 1 {
                    config.burn_in_years * f64::from(id) / (config.nodes as f64 - 1.0)
                } else {
                    0.0
                };
                NodeState::new(
                    id,
                    node_corner_seed(config.seed, id),
                    age,
                    campaign.nominal_cycle_fs,
                    config.skip,
                )
            })
            .collect();
        FleetSim {
            campaign,
            nodes,
            epoch: 0,
            rr_cursor: 0,
            log: EventLog::default(),
            completed_ops: 0,
            dropped_ops: 0,
            last_completion_fs: 0,
            lifetime_epoch: None,
        }
    }

    /// Epochs completed so far.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The event log accumulated since construction (or resume — a
    /// restored sim starts with an empty log, and resume-identity
    /// compares `prefix ++ suffix` against the uninterrupted log).
    #[inline]
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The current node states, in id order.
    #[inline]
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// Runs one epoch: refresh profiles, replay the trace through the
    /// event queue, apply the health policy, advance ages.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors (including cancellation) from the
    /// per-node refresh sweep.
    pub fn run_epoch(
        &mut self,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<(), CoreError> {
        let campaign = self.campaign;
        let config = campaign.config();
        let epoch = self.epoch;

        // 1. Rejuvenation rotation: at each rotation boundary the next
        // node in id order rests for this epoch — never the last active
        // node.
        if config.policy.rotation_epochs > 0 && epoch.is_multiple_of(config.policy.rotation_epochs)
        {
            let active = self
                .nodes
                .iter()
                .filter(|n| n.status == NodeStatus::Active)
                .count();
            if active > 1 {
                let id = (epoch / config.policy.rotation_epochs) as usize % self.nodes.len();
                if self.nodes[id].status == NodeStatus::Active {
                    self.nodes[id].status = NodeStatus::Resting;
                    self.log.append_policy(epoch, ACTION_REST, id as u32);
                }
            }
        }
        let routable_at_start = self.nodes.iter().filter(|n| n.is_routable()).count().max(1);

        // 2. This epoch's trace.
        let trace = epoch_trace(
            config.trace,
            config.seed,
            epoch as usize,
            config.ops_per_epoch,
            campaign.design().width(),
            campaign.nominal_cycle_fs,
        );
        let pairs = trace_pairs(&trace);

        // 3. Refresh every non-retired node's profile at its current
        // effective age — the parallel axis. Results are stitched back in
        // job order, so the parallel sweep is bit-identical to serial.
        let jobs: Vec<(u32, u64, f64)> = self
            .nodes
            .iter()
            .filter(|n| n.status != NodeStatus::Retired)
            .map(|n| (n.id, n.corner_seed, n.age_years))
            .collect();
        let results = profile_sweep(campaign, &jobs, &pairs, engine, cancel, config.chunk);
        let mut profiles: Vec<Option<Arc<PatternProfile>>> = vec![None; self.nodes.len()];
        for (job, result) in jobs.iter().zip(results) {
            let profile = result?;
            self.nodes[job.0 as usize].profile_max_delay_ns = profile.max_delay_ns();
            profiles[job.0 as usize] = Some(profile);
        }

        // 4. The discrete-event loop.
        let razor = RazorBank::new(2 * campaign.design().width(), RazorConfig::paper());
        let epoch_base = u64::from(epoch) * campaign.epoch_span_fs;
        let mut queue = EventQueue::new();
        for (i, op) in trace.iter().enumerate() {
            queue.push(epoch_base + op.at_fs, EventKind::Arrival { op: i as u32 });
        }
        while let Some(event) = queue.pop() {
            self.log.append_event(&event);
            match event.kind {
                EventKind::Arrival { op } => {
                    match route(&config.policy, &self.nodes, &mut self.rr_cursor) {
                        None => {
                            self.dropped_ops += 1;
                            self.log.append_drop(op);
                        }
                        Some(id) => {
                            let node = &mut self.nodes[id as usize];
                            let rec = profiles[id as usize]
                                .as_ref()
                                .expect("routable node has a current profile")
                                .records()[op as usize];
                            let cycle_ns = node.cycle_ns();
                            // Exactly `run_engine`'s accounting, with the
                            // node's own AHL and (possibly stretched)
                            // cycle.
                            let (cycles, class) = match node.ahl.decide(rec.zeros) {
                                CycleDecision::OneCycle => {
                                    match razor.check(rec.delay_ns, cycle_ns) {
                                        DetectOutcome::Ok => {
                                            node.counters.one_cycle_ops += 1;
                                            node.ahl.record(false);
                                            (1u64, CLASS_ONE_CYCLE_OK)
                                        }
                                        DetectOutcome::Error => {
                                            node.counters.one_cycle_ops += 1;
                                            node.counters.errors += 1;
                                            node.epoch_errors += 1;
                                            node.ahl.record(true);
                                            (
                                                1 + u64::from(config.error_penalty_cycles),
                                                CLASS_ONE_CYCLE_ERROR,
                                            )
                                        }
                                        DetectOutcome::Undetected => {
                                            node.counters.one_cycle_ops += 1;
                                            node.counters.undetected += 1;
                                            node.epoch_undetected += 1;
                                            node.ahl.record(false);
                                            (1u64, CLASS_UNDETECTED)
                                        }
                                    }
                                }
                                CycleDecision::TwoCycles => {
                                    node.counters.two_cycle_ops += 1;
                                    node.ahl.record(false);
                                    (2u64, CLASS_TWO_CYCLES)
                                }
                            };
                            let start = event.time_fs.max(node.busy_until_fs);
                            let busy = cycles * node.cycle_fs;
                            let finish = start + busy;
                            node.busy_until_fs = finish;
                            node.counters.ops += 1;
                            node.counters.cycles += cycles;
                            node.counters.busy_fs += busy;
                            node.epoch_ops += 1;
                            self.log.append_route(id, cycles as u32, class);
                            queue.push(finish, EventKind::Completion { node: id, op });
                        }
                    }
                }
                EventKind::Completion { .. } => {
                    self.completed_ops += 1;
                    self.last_completion_fs = self.last_completion_fs.max(event.time_fs);
                }
            }
        }

        // 5. The epoch-boundary policy step, in id order: health
        // decisions on this epoch's window, then utilization-proportional
        // aging, then the window resets.
        let fair = config.ops_per_epoch as f64 / routable_at_start as f64;
        for id in 0..self.nodes.len() {
            let node = &mut self.nodes[id];
            match node.status {
                NodeStatus::Retired => {}
                NodeStatus::Resting => {
                    node.age_years = (node.age_years - config.policy.rest_recovery_years).max(0.0);
                    node.status = NodeStatus::Active;
                    self.log.append_policy(epoch, ACTION_WAKE, id as u32);
                }
                NodeStatus::Active => {
                    if node.epoch_ops > 0 {
                        let err10k = node.epoch_errors as f64 * 10_000.0 / node.epoch_ops as f64;
                        if node.epoch_undetected > 0 || err10k > config.policy.retire_error_per_10k
                        {
                            node.status = NodeStatus::Retired;
                            node.retired_at_epoch = Some(epoch);
                            self.log.append_policy(epoch, ACTION_RETIRE, id as u32);
                        } else if err10k > config.policy.downclock_error_per_10k
                            && node.downclocks < config.policy.max_downclocks
                        {
                            node.cycle_fs +=
                                node.cycle_fs * u64::from(config.policy.downclock_percent) / 100;
                            node.downclocks += 1;
                            self.log.append_policy(epoch, ACTION_DOWNCLOCK, id as u32);
                        }
                    }
                    if node.status != NodeStatus::Retired {
                        let util = (node.epoch_ops as f64 / fair).min(MAX_UTILIZATION);
                        node.age_years += config.years_per_epoch * util;
                    }
                }
            }
            node.reset_epoch_window();
        }

        // 6. Lifetime quorum check.
        let active = self
            .nodes
            .iter()
            .filter(|n| n.status == NodeStatus::Active)
            .count();
        if self.lifetime_epoch.is_none() && active < config.quorum {
            self.lifetime_epoch = Some(epoch + 1);
        }
        self.epoch += 1;
        Ok(())
    }

    /// Runs the remaining epochs of the campaign and returns the summary.
    ///
    /// # Errors
    ///
    /// Propagates the first epoch failure.
    pub fn run(
        &mut self,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<FleetSummary, CoreError> {
        while (self.epoch as usize) < self.campaign.config().epochs {
            self.run_epoch(engine, cancel)?;
        }
        Ok(self.summary())
    }

    /// Serializes the sim at an epoch boundary. The snapshot embeds the
    /// campaign fingerprint, so restoring under a different configuration
    /// fails loudly rather than silently diverging.
    pub fn snapshot(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SNAPSHOT_SCHEMA.into())),
            ("fingerprint".into(), Json::UInt(self.campaign.fingerprint)),
            ("epoch".into(), Json::UInt(u64::from(self.epoch))),
            ("rr_cursor".into(), Json::UInt(u64::from(self.rr_cursor))),
            ("completed_ops".into(), Json::UInt(self.completed_ops)),
            ("dropped_ops".into(), Json::UInt(self.dropped_ops)),
            (
                "last_completion_fs".into(),
                Json::UInt(self.last_completion_fs),
            ),
            (
                "lifetime_epoch".into(),
                match self.lifetime_epoch {
                    Some(e) => Json::UInt(u64::from(e)),
                    None => Json::Null,
                },
            ),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(NodeState::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a sim from a [`snapshot`](Self::snapshot) taken under
    /// the same campaign configuration. The restored sim's event log
    /// starts empty: resume-identity is asserted as
    /// `log-at-snapshot ++ resumed-log == uninterrupted-log`.
    ///
    /// # Errors
    ///
    /// Rejects schema or fingerprint mismatches and malformed fields.
    pub fn restore(campaign: &'b FleetCampaign<'a>, snapshot: &Json) -> Result<Self, String> {
        let schema = snapshot
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "snapshot: missing schema".to_string())?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "snapshot: schema {schema:?} is not {SNAPSHOT_SCHEMA:?}"
            ));
        }
        let fingerprint = snapshot
            .get("fingerprint")
            .and_then(Json::as_u64)
            .ok_or_else(|| "snapshot: missing fingerprint".to_string())?;
        if fingerprint != campaign.fingerprint {
            return Err(format!(
                "snapshot: fingerprint {:#x} does not match campaign {:#x} — \
                 refusing to resume under a different configuration",
                fingerprint, campaign.fingerprint
            ));
        }
        let u = |key: &str| {
            snapshot
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("snapshot: missing or non-integer field {key:?}"))
        };
        let nodes_json = snapshot
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(|| "snapshot: missing node array".to_string())?;
        if nodes_json.len() != campaign.config.nodes {
            return Err(format!(
                "snapshot: {} nodes, campaign expects {}",
                nodes_json.len(),
                campaign.config.nodes
            ));
        }
        let nodes = nodes_json
            .iter()
            .map(|v| NodeState::from_json(v, campaign.config.skip))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetSim {
            campaign,
            nodes,
            epoch: u32::try_from(u("epoch")?)
                .map_err(|_| "snapshot: epoch out of range".to_string())?,
            rr_cursor: u32::try_from(u("rr_cursor")?)
                .map_err(|_| "snapshot: rr_cursor out of range".to_string())?,
            log: EventLog::default(),
            completed_ops: u("completed_ops")?,
            dropped_ops: u("dropped_ops")?,
            last_completion_fs: u("last_completion_fs")?,
            lifetime_epoch: match snapshot.get("lifetime_epoch") {
                None | Some(Json::Null) => None,
                Some(x) => Some(
                    u32::try_from(
                        x.as_u64()
                            .ok_or_else(|| "snapshot: non-integer lifetime_epoch".to_string())?,
                    )
                    .map_err(|_| "snapshot: lifetime_epoch out of range".to_string())?,
                ),
            },
        })
    }

    /// The campaign summary at the current epoch.
    pub fn summary(&self) -> FleetSummary {
        let config = self.campaign.config();
        let mut totals = NodeCounters::default();
        for node in &self.nodes {
            totals.ops += node.counters.ops;
            totals.one_cycle_ops += node.counters.one_cycle_ops;
            totals.two_cycle_ops += node.counters.two_cycle_ops;
            totals.errors += node.counters.errors;
            totals.undetected += node.counters.undetected;
            totals.cycles += node.counters.cycles;
            totals.busy_fs += node.counters.busy_fs;
        }
        let makespan_fs = self.last_completion_fs;
        let throughput = if makespan_fs > 0 {
            self.completed_ops as f64 / (makespan_fs as f64 / FS_PER_US)
        } else {
            0.0
        };
        FleetSummary {
            policy: config.policy.label(),
            trace: config.trace.label().to_string(),
            nodes: config.nodes,
            epochs: self.epoch,
            quorum: config.quorum,
            completed_ops: self.completed_ops,
            dropped_ops: self.dropped_ops,
            cycles: totals.cycles,
            one_cycle_ops: totals.one_cycle_ops,
            two_cycle_ops: totals.two_cycle_ops,
            errors: totals.errors,
            undetected: totals.undetected,
            recovery_cycles: totals.recovery_cycles(config.error_penalty_cycles),
            retired_nodes: self
                .nodes
                .iter()
                .filter(|n| n.status == NodeStatus::Retired)
                .count(),
            lifetime_epochs: self.lifetime_epoch,
            makespan_fs,
            throughput_ops_per_us: throughput,
            log_records: self.log.records,
            log_hash: self.log.hash(),
            node_reports: self.nodes.iter().map(NodeReport::of).collect(),
        }
    }
}

/// Runs the per-node profile refresh for `jobs` (id, corner seed, age),
/// returning results in job order. With the `parallel` feature the sweep
/// fans out over the work-stealing pool; order restoration makes it
/// bit-identical to the serial fallback.
#[cfg(feature = "parallel")]
fn profile_sweep(
    campaign: &FleetCampaign<'_>,
    jobs: &[(u32, u64, f64)],
    pairs: &[(u64, u64)],
    engine: SimEngine,
    cancel: Option<&CancelToken>,
    chunk: usize,
) -> Vec<Result<Arc<PatternProfile>, CoreError>> {
    agemul_par::par_map_stealing_with(
        jobs,
        chunk.max(1),
        || None,
        |slot, job: &(u32, u64, f64)| {
            campaign.node_profile(slot, job.1, job.2, pairs, engine, cancel)
        },
    )
}

/// Serial fallback: one plan-reuse profiler slot shared across the sweep.
#[cfg(not(feature = "parallel"))]
fn profile_sweep(
    campaign: &FleetCampaign<'_>,
    jobs: &[(u32, u64, f64)],
    pairs: &[(u64, u64)],
    engine: SimEngine,
    cancel: Option<&CancelToken>,
    _chunk: usize,
) -> Vec<Result<Arc<PatternProfile>, CoreError>> {
    let mut slot = None;
    jobs.iter()
        .map(|job| campaign.node_profile(&mut slot, job.1, job.2, pairs, engine, cancel))
        .collect()
}

/// One node's line in a [`FleetSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub id: u32,
    /// Effective BTI age at the end of the run, years.
    pub age_years: f64,
    /// Final status label.
    pub status: String,
    /// Epoch of retirement, if retired.
    pub retired_at_epoch: Option<u32>,
    /// Down-clock actions applied.
    pub downclocks: u32,
    /// Final clock period, femtoseconds.
    pub cycle_fs: u64,
    /// Cumulative execution counters.
    pub counters: NodeCounters,
}

impl NodeReport {
    fn of(node: &NodeState) -> Self {
        NodeReport {
            id: node.id,
            age_years: node.age_years,
            status: node.status.label().to_string(),
            retired_at_epoch: node.retired_at_epoch,
            downclocks: node.downclocks,
            cycle_fs: node.cycle_fs,
            counters: node.counters,
        }
    }

    /// Serializes the report (lossless floats).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".into(), Json::UInt(u64::from(self.id))),
            ("age_years".into(), Json::Num(self.age_years)),
            ("status".into(), Json::Str(self.status.clone())),
            ("downclocks".into(), Json::UInt(u64::from(self.downclocks))),
            ("cycle_fs".into(), Json::UInt(self.cycle_fs)),
            ("ops".into(), Json::UInt(self.counters.ops)),
            (
                "one_cycle_ops".into(),
                Json::UInt(self.counters.one_cycle_ops),
            ),
            (
                "two_cycle_ops".into(),
                Json::UInt(self.counters.two_cycle_ops),
            ),
            ("errors".into(), Json::UInt(self.counters.errors)),
            ("undetected".into(), Json::UInt(self.counters.undetected)),
            ("cycles".into(), Json::UInt(self.counters.cycles)),
            ("busy_fs".into(), Json::UInt(self.counters.busy_fs)),
        ];
        if let Some(epoch) = self.retired_at_epoch {
            pairs.push(("retired_at_epoch".into(), Json::UInt(u64::from(epoch))));
        }
        Json::Obj(pairs)
    }

    /// Deserializes a [`to_json`](Self::to_json) report.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<NodeReport, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("node report: missing or non-integer field {key:?}"))
        };
        Ok(NodeReport {
            id: u32::try_from(u("id")?).map_err(|_| "node report: id out of range".to_string())?,
            age_years: v
                .get("age_years")
                .and_then(Json::as_f64)
                .ok_or_else(|| "node report: missing age_years".to_string())?,
            status: v
                .get("status")
                .and_then(Json::as_str)
                .ok_or_else(|| "node report: missing status".to_string())?
                .to_string(),
            retired_at_epoch: match v.get("retired_at_epoch") {
                None | Some(Json::Null) => None,
                Some(x) => {
                    Some(
                        u32::try_from(x.as_u64().ok_or_else(|| {
                            "node report: non-integer retired_at_epoch".to_string()
                        })?)
                        .map_err(|_| "node report: retired_at_epoch out of range".to_string())?,
                    )
                }
            },
            downclocks: u32::try_from(u("downclocks")?)
                .map_err(|_| "node report: downclocks out of range".to_string())?,
            cycle_fs: u("cycle_fs")?,
            counters: NodeCounters {
                ops: u("ops")?,
                one_cycle_ops: u("one_cycle_ops")?,
                two_cycle_ops: u("two_cycle_ops")?,
                errors: u("errors")?,
                undetected: u("undetected")?,
                cycles: u("cycles")?,
                busy_fs: u("busy_fs")?,
            },
        })
    }
}

/// The outcome of one fleet campaign — what the repro experiment tables
/// and the resident server's `fleet` op report.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// Scenario policy label.
    pub policy: String,
    /// Trace label.
    pub trace: String,
    /// Fleet size.
    pub nodes: usize,
    /// Epochs run.
    pub epochs: u32,
    /// Resolved lifetime quorum.
    pub quorum: usize,
    /// Operations completed fleet-wide.
    pub completed_ops: u64,
    /// Arrivals dropped (no routable node).
    pub dropped_ops: u64,
    /// Total cycles consumed fleet-wide.
    pub cycles: u64,
    /// One-cycle operations fleet-wide.
    pub one_cycle_ops: u64,
    /// Two-cycle operations fleet-wide.
    pub two_cycle_ops: u64,
    /// Razor-detected violations fleet-wide.
    pub errors: u64,
    /// Undetected violations fleet-wide.
    pub undetected: u64,
    /// Error-recovery cycles fleet-wide (penalty × errors).
    pub recovery_cycles: u64,
    /// Nodes retired by the health policy.
    pub retired_nodes: usize,
    /// First epoch count at which the active fleet fell below quorum
    /// (`None`: survived the whole campaign).
    pub lifetime_epochs: Option<u32>,
    /// Timestamp of the last completion, femtoseconds.
    pub makespan_fs: u64,
    /// Completed operations per simulated microsecond.
    pub throughput_ops_per_us: f64,
    /// Event-log records written.
    pub log_records: u64,
    /// Event-log FNV-1a fingerprint — the replay-identity witness.
    pub log_hash: u64,
    /// Per-node reports, in id order.
    pub node_reports: Vec<NodeReport>,
}

impl FleetSummary {
    /// The lifetime metric with censoring resolved: campaigns that never
    /// broke quorum report the full epoch count they survived.
    pub fn lifetime_or_censored(&self) -> u32 {
        self.lifetime_epochs.unwrap_or(self.epochs)
    }

    /// Serializes the summary (lossless floats and u64s).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("policy".into(), Json::Str(self.policy.clone())),
            ("trace".into(), Json::Str(self.trace.clone())),
            ("nodes".into(), Json::UInt(self.nodes as u64)),
            ("epochs".into(), Json::UInt(u64::from(self.epochs))),
            ("quorum".into(), Json::UInt(self.quorum as u64)),
            ("completed_ops".into(), Json::UInt(self.completed_ops)),
            ("dropped_ops".into(), Json::UInt(self.dropped_ops)),
            ("cycles".into(), Json::UInt(self.cycles)),
            ("one_cycle_ops".into(), Json::UInt(self.one_cycle_ops)),
            ("two_cycle_ops".into(), Json::UInt(self.two_cycle_ops)),
            ("errors".into(), Json::UInt(self.errors)),
            ("undetected".into(), Json::UInt(self.undetected)),
            ("recovery_cycles".into(), Json::UInt(self.recovery_cycles)),
            (
                "retired_nodes".into(),
                Json::UInt(self.retired_nodes as u64),
            ),
            (
                "lifetime_epochs".into(),
                match self.lifetime_epochs {
                    Some(e) => Json::UInt(u64::from(e)),
                    None => Json::Null,
                },
            ),
            ("makespan_fs".into(), Json::UInt(self.makespan_fs)),
            (
                "throughput_ops_per_us".into(),
                Json::Num(self.throughput_ops_per_us),
            ),
            ("log_records".into(), Json::UInt(self.log_records)),
            ("log_hash".into(), Json::UInt(self.log_hash)),
            (
                "node_reports".into(),
                Json::Arr(self.node_reports.iter().map(NodeReport::to_json).collect()),
            ),
        ])
    }

    /// Deserializes a [`to_json`](Self::to_json) summary.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<FleetSummary, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fleet summary: missing or non-integer field {key:?}"))
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fleet summary: missing or non-string field {key:?}"))
        };
        Ok(FleetSummary {
            policy: s("policy")?,
            trace: s("trace")?,
            nodes: u("nodes")? as usize,
            epochs: u32::try_from(u("epochs")?)
                .map_err(|_| "fleet summary: epochs out of range".to_string())?,
            quorum: u("quorum")? as usize,
            completed_ops: u("completed_ops")?,
            dropped_ops: u("dropped_ops")?,
            cycles: u("cycles")?,
            one_cycle_ops: u("one_cycle_ops")?,
            two_cycle_ops: u("two_cycle_ops")?,
            errors: u("errors")?,
            undetected: u("undetected")?,
            recovery_cycles: u("recovery_cycles")?,
            retired_nodes: u("retired_nodes")? as usize,
            lifetime_epochs: match v.get("lifetime_epochs") {
                None | Some(Json::Null) => None,
                Some(x) => {
                    Some(
                        u32::try_from(x.as_u64().ok_or_else(|| {
                            "fleet summary: non-integer lifetime_epochs".to_string()
                        })?)
                        .map_err(|_| "fleet summary: lifetime_epochs out of range".to_string())?,
                    )
                }
            },
            makespan_fs: u("makespan_fs")?,
            throughput_ops_per_us: v
                .get("throughput_ops_per_us")
                .and_then(Json::as_f64)
                .ok_or_else(|| "fleet summary: missing throughput_ops_per_us".to_string())?,
            log_records: u("log_records")?,
            log_hash: u("log_hash")?,
            node_reports: v
                .get("node_reports")
                .and_then(Json::as_arr)
                .ok_or_else(|| "fleet summary: missing node_reports".to_string())?
                .iter()
                .map(NodeReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agemul_circuits::MultiplierKind;
    use agemul_logic::Technology;

    fn design() -> MultiplierDesign {
        MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap()
    }

    fn bti() -> BtiModel {
        BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132)
    }

    fn quick_config() -> FleetConfig {
        let mut config = FleetConfig::new(4, 2, 96, 0x0A6E_0005);
        config.years_per_epoch = 1.0;
        config
    }

    #[test]
    fn repeated_runs_are_identical() {
        let design = design();
        let bti = bti();
        let run = || {
            let campaign = FleetCampaign::new(&design, &bti, quick_config()).unwrap();
            let mut sim = FleetSim::new(&campaign);
            let summary = sim.run(SimEngine::Level, None).unwrap();
            (sim.log().bytes().to_vec(), summary)
        };
        let (log_a, summary_a) = run();
        let (log_b, summary_b) = run();
        assert_eq!(log_a, log_b, "event logs must be byte-identical");
        assert_eq!(summary_a, summary_b);
        assert!(summary_a.completed_ops > 0);
    }

    #[test]
    fn cycle_identity_holds_per_node_and_fleet_wide() {
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, quick_config()).unwrap();
        let mut sim = FleetSim::new(&campaign);
        let summary = sim.run(SimEngine::Level, None).unwrap();
        let penalty = u64::from(campaign.config().error_penalty_cycles);
        for report in &summary.node_reports {
            let c = &report.counters;
            assert_eq!(
                c.cycles,
                c.one_cycle_ops + 2 * c.two_cycle_ops + penalty * c.errors,
                "node {}",
                report.id
            );
        }
        assert_eq!(
            summary.cycles,
            summary.one_cycle_ops + 2 * summary.two_cycle_ops + penalty * summary.errors
        );
        assert_eq!(summary.recovery_cycles, penalty * summary.errors);
    }

    #[test]
    fn snapshot_resumes_to_the_same_state() {
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, quick_config()).unwrap();

        let mut uninterrupted = FleetSim::new(&campaign);
        uninterrupted.run_epoch(SimEngine::Level, None).unwrap();
        let snapshot = uninterrupted.snapshot();
        let prefix = uninterrupted.log().bytes().to_vec();
        uninterrupted.run_epoch(SimEngine::Level, None).unwrap();

        let mut resumed = FleetSim::restore(&campaign, &snapshot).unwrap();
        resumed.run_epoch(SimEngine::Level, None).unwrap();

        let mut stitched = prefix;
        stitched.extend_from_slice(resumed.log().bytes());
        assert_eq!(
            stitched,
            uninterrupted.log().bytes(),
            "resumed log must continue the uninterrupted byte stream"
        );
        let a = uninterrupted.summary();
        let mut b = resumed.summary();
        // The resumed sim's log counters cover only the suffix; everything
        // else must match exactly.
        b.log_records = a.log_records;
        b.log_hash = a.log_hash;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_rejects_a_different_campaign() {
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, quick_config()).unwrap();
        let sim = FleetSim::new(&campaign);
        let snapshot = sim.snapshot();

        let mut other_config = quick_config();
        other_config.seed ^= 1;
        let other = FleetCampaign::new(&design, &bti, other_config).unwrap();
        let err = match FleetSim::restore(&other, &snapshot) {
            Ok(_) => panic!("restore under a different campaign must fail"),
            Err(e) => e,
        };
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn summary_round_trips_through_json() {
        let design = design();
        let bti = bti();
        let campaign = FleetCampaign::new(&design, &bti, quick_config()).unwrap();
        let mut sim = FleetSim::new(&campaign);
        let summary = sim.run(SimEngine::Level, None).unwrap();
        let back = FleetSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn engines_agree_on_the_event_log() {
        let design = design();
        let bti = bti();
        let mut config = quick_config();
        config.epochs = 1;
        let run = |engine: SimEngine| {
            let campaign = FleetCampaign::new(&design, &bti, config.clone()).unwrap();
            let mut sim = FleetSim::new(&campaign);
            sim.run(engine, None).unwrap();
            sim.log().bytes().to_vec()
        };
        assert_eq!(run(SimEngine::Level), run(SimEngine::Event));
    }
}
