//! Per-node state: one multiplier instance in the fleet.
//!
//! A node is a full deployment of the paper's architecture — its own
//! process corner, its own BTI aging trajectory, its own AHL/Razor state,
//! and its own (possibly down-clocked) cycle — plus the operational
//! bookkeeping the schedulers and health policies read. Everything here
//! round-trips losslessly through the dependency-free `Json` model, which
//! is what makes mid-campaign checkpoint/resume byte-identical.

use agemul::{Ahl, AhlConfig, AhlState};
use agemul_conformance::Json;

/// A node's operational status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Serving traffic.
    Active,
    /// Resting this epoch under the rejuvenation rotation — no traffic,
    /// partial BTI recovery.
    Resting,
    /// Permanently withdrawn by the retirement policy.
    Retired,
}

impl NodeStatus {
    /// A stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            NodeStatus::Active => "active",
            NodeStatus::Resting => "resting",
            NodeStatus::Retired => "retired",
        }
    }

    fn parse(label: &str) -> Result<NodeStatus, String> {
        match label {
            "active" => Ok(NodeStatus::Active),
            "resting" => Ok(NodeStatus::Resting),
            "retired" => Ok(NodeStatus::Retired),
            other => Err(format!("unknown node status {other:?}")),
        }
    }
}

/// Cumulative execution counters of one node — the per-node ledger the
/// paper's cycle-accounting identity is asserted over:
/// `cycles = one_cycle_ops + 2·two_cycle_ops + penalty·errors`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Operations completed.
    pub ops: u64,
    /// Operations the AHL classified one-cycle (errors and undetected
    /// violations included, matching [`agemul::RunMetrics`]).
    pub one_cycle_ops: u64,
    /// Operations the AHL classified two-cycle.
    pub two_cycle_ops: u64,
    /// Razor-detected timing violations.
    pub errors: u64,
    /// Violations that escaped the Razor window.
    pub undetected: u64,
    /// Total clock cycles consumed, penalties included.
    pub cycles: u64,
    /// Total busy time, femtoseconds.
    pub busy_fs: u64,
}

impl NodeCounters {
    /// Razor error-recovery overhead in cycles: the penalty cycles spent
    /// re-executing detected violations (beyond the one cycle every
    /// one-cycle operation pays anyway).
    pub fn recovery_cycles(&self, penalty: u32) -> u64 {
        self.errors * u64::from(penalty)
    }
}

/// One multiplier instance.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// Fleet-local id (also the deterministic routing tie-breaker).
    pub id: u32,
    /// Derived variation seed of this node's process corner.
    pub corner_seed: u64,
    /// Effective BTI age, years. Advances with utilization; rejuvenation
    /// rest subtracts from it.
    pub age_years: f64,
    /// Operational status.
    pub status: NodeStatus,
    /// Epoch at which the node retired (if it did).
    pub retired_at_epoch: Option<u32>,
    /// Down-clock actions applied so far.
    pub downclocks: u32,
    /// Current clock period, femtoseconds (stretched by down-clocking).
    pub cycle_fs: u64,
    /// The node is busy until this simulated instant.
    pub busy_until_fs: u64,
    /// The node's AHL (aging indicator state persists across epochs).
    pub ahl: Ahl,
    /// Cumulative execution counters.
    pub counters: NodeCounters,
    /// Longest observed delay of the node's current epoch profile,
    /// nanoseconds — the degradation metric aging-aware routing reads.
    pub profile_max_delay_ns: f64,
    /// Operations routed to the node this epoch (policy window).
    pub epoch_ops: u64,
    /// Razor errors this epoch (policy window).
    pub epoch_errors: u64,
    /// Undetected violations this epoch (policy window).
    pub epoch_undetected: u64,
}

impl NodeState {
    /// A fresh active node with its corner seed, base cycle, and AHL.
    pub fn new(id: u32, corner_seed: u64, age_years: f64, cycle_fs: u64, skip: u32) -> Self {
        NodeState {
            id,
            corner_seed,
            age_years,
            status: NodeStatus::Active,
            retired_at_epoch: None,
            downclocks: 0,
            cycle_fs,
            busy_until_fs: 0,
            ahl: Ahl::adaptive(skip, AhlConfig::paper()),
            counters: NodeCounters::default(),
            profile_max_delay_ns: 0.0,
            epoch_ops: 0,
            epoch_errors: 0,
            epoch_undetected: 0,
        }
    }

    /// The node's current clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        self.cycle_fs as f64 / 1.0e6
    }

    /// Whether the node can be routed to right now.
    pub fn is_routable(&self) -> bool {
        self.status == NodeStatus::Active
    }

    /// Clears the per-epoch policy window.
    pub fn reset_epoch_window(&mut self) {
        self.epoch_ops = 0;
        self.epoch_errors = 0;
        self.epoch_undetected = 0;
    }

    /// Serializes the node for a checkpoint. Lossless: `f64` fields ride
    /// the shortest-round-trip float encoding, `u64` fields the distinct
    /// unsigned variant.
    pub fn to_json(&self) -> Json {
        let ahl = self.ahl.snapshot();
        let mut pairs = vec![
            ("id".into(), Json::UInt(u64::from(self.id))),
            ("corner_seed".into(), Json::UInt(self.corner_seed)),
            ("age_years".into(), Json::Num(self.age_years)),
            ("status".into(), Json::Str(self.status.label().into())),
            ("downclocks".into(), Json::UInt(u64::from(self.downclocks))),
            ("cycle_fs".into(), Json::UInt(self.cycle_fs)),
            ("busy_until_fs".into(), Json::UInt(self.busy_until_fs)),
            ("ahl_aged".into(), Json::Bool(ahl.aged)),
            ("ahl_ops".into(), Json::UInt(u64::from(ahl.ops_in_window))),
            (
                "ahl_errors".into(),
                Json::UInt(u64::from(ahl.errors_in_window)),
            ),
            ("ahl_transitions".into(), Json::UInt(ahl.transitions)),
            ("ops".into(), Json::UInt(self.counters.ops)),
            (
                "one_cycle_ops".into(),
                Json::UInt(self.counters.one_cycle_ops),
            ),
            (
                "two_cycle_ops".into(),
                Json::UInt(self.counters.two_cycle_ops),
            ),
            ("errors".into(), Json::UInt(self.counters.errors)),
            ("undetected".into(), Json::UInt(self.counters.undetected)),
            ("cycles".into(), Json::UInt(self.counters.cycles)),
            ("busy_fs".into(), Json::UInt(self.counters.busy_fs)),
            (
                "profile_max_delay_ns".into(),
                Json::Num(self.profile_max_delay_ns),
            ),
        ];
        if let Some(epoch) = self.retired_at_epoch {
            pairs.push(("retired_at_epoch".into(), Json::UInt(u64::from(epoch))));
        }
        Json::Obj(pairs)
    }

    /// Reconstructs a node from its checkpoint object. `skip` must match
    /// the fleet configuration the snapshot was taken under (the AHL's
    /// judging blocks are construction parameters, not snapshot state).
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json, skip: u32) -> Result<NodeState, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("node: missing or non-integer field {key:?}"))
        };
        let f = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("node: missing or non-numeric field {key:?}"))
        };
        let status = NodeStatus::parse(
            v.get("status")
                .and_then(Json::as_str)
                .ok_or_else(|| "node: missing or non-string field \"status\"".to_string())?,
        )?;
        let mut ahl = Ahl::adaptive(skip, AhlConfig::paper());
        ahl.restore(AhlState {
            aged: v
                .get("ahl_aged")
                .and_then(Json::as_bool)
                .ok_or_else(|| "node: missing or non-bool field \"ahl_aged\"".to_string())?,
            ops_in_window: u32::try_from(u("ahl_ops")?)
                .map_err(|_| "node: ahl_ops out of range".to_string())?,
            errors_in_window: u32::try_from(u("ahl_errors")?)
                .map_err(|_| "node: ahl_errors out of range".to_string())?,
            transitions: u("ahl_transitions")?,
        });
        Ok(NodeState {
            id: u32::try_from(u("id")?).map_err(|_| "node: id out of range".to_string())?,
            corner_seed: u("corner_seed")?,
            age_years: f("age_years")?,
            status,
            retired_at_epoch: match v.get("retired_at_epoch") {
                None | Some(Json::Null) => None,
                Some(x) => Some(
                    u32::try_from(x.as_u64().ok_or_else(|| {
                        "node: non-integer field \"retired_at_epoch\"".to_string()
                    })?)
                    .map_err(|_| "node: retired_at_epoch out of range".to_string())?,
                ),
            },
            downclocks: u32::try_from(u("downclocks")?)
                .map_err(|_| "node: downclocks out of range".to_string())?,
            cycle_fs: u("cycle_fs")?,
            busy_until_fs: u("busy_until_fs")?,
            ahl,
            counters: NodeCounters {
                ops: u("ops")?,
                one_cycle_ops: u("one_cycle_ops")?,
                two_cycle_ops: u("two_cycle_ops")?,
                errors: u("errors")?,
                undetected: u("undetected")?,
                cycles: u("cycles")?,
                busy_fs: u("busy_fs")?,
            },
            profile_max_delay_ns: f("profile_max_delay_ns")?,
            // Snapshots are taken at epoch boundaries, where the policy
            // window is always empty.
            epoch_ops: 0,
            epoch_errors: 0,
            epoch_undetected: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_round_trips_through_json() {
        let mut node = NodeState::new(3, 0xDEAD_BEEF, 1.75, 950_000, 7);
        node.status = NodeStatus::Resting;
        node.downclocks = 2;
        node.cycle_fs = 1_047_375;
        node.busy_until_fs = 123_456_789;
        node.counters = NodeCounters {
            ops: 4096,
            one_cycle_ops: 3000,
            two_cycle_ops: 1096,
            errors: 17,
            undetected: 1,
            cycles: 5243,
            busy_fs: 999_999,
        };
        node.profile_max_delay_ns = 1.3321;
        for i in 0..137 {
            node.ahl.record(i % 11 == 0);
        }
        let back = NodeState::from_json(&node.to_json(), 7).unwrap();
        assert_eq!(back.id, node.id);
        assert_eq!(back.corner_seed, node.corner_seed);
        assert_eq!(back.age_years.to_bits(), node.age_years.to_bits());
        assert_eq!(back.status, node.status);
        assert_eq!(back.downclocks, node.downclocks);
        assert_eq!(back.cycle_fs, node.cycle_fs);
        assert_eq!(back.busy_until_fs, node.busy_until_fs);
        assert_eq!(back.counters, node.counters);
        assert_eq!(
            back.profile_max_delay_ns.to_bits(),
            node.profile_max_delay_ns.to_bits()
        );
        assert_eq!(back.ahl.snapshot(), node.ahl.snapshot());
    }

    #[test]
    fn retired_epoch_survives_round_trip() {
        let mut node = NodeState::new(0, 1, 0.0, 1_000_000, 7);
        node.status = NodeStatus::Retired;
        node.retired_at_epoch = Some(5);
        let back = NodeState::from_json(&node.to_json(), 7).unwrap();
        assert_eq!(back.retired_at_epoch, Some(5));
        assert_eq!(back.status, NodeStatus::Retired);
    }

    #[test]
    fn recovery_cycles_follow_the_penalty() {
        let counters = NodeCounters {
            errors: 5,
            ..NodeCounters::default()
        };
        assert_eq!(counters.recovery_cycles(3), 15);
    }
}
