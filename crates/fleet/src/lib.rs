//! Fleet-scale discrete-event simulation of aging multiplier
//! datacenters.
//!
//! The workspace's lower layers answer "how does *one* aging-aware
//! multiplier behave?" — this crate scales the question to a *fleet*:
//! many multiplier instances (each with its own process corner, its own
//! BTI trajectory, its own AHL/Razor state and clock), a seeded workload
//! flowing through a deterministic event queue, and pluggable routing +
//! health policies deciding where operations execute and when nodes
//! retire, down-clock, or rest.
//!
//! The load-bearing property is **determinism**: a campaign is a pure
//! function of its configuration, the parallel per-node profile sweep is
//! bit-identical to serial, and a run resumed from a mid-campaign
//! checkpoint continues the uninterrupted run's event log byte for byte.
//! The replay test layer (`tests/`) pins all three.
//!
//! Layering: [`EventQueue`] (total, seed-stable event order) →
//! [`epoch_trace`] (pure seeded workloads) → [`NodeState`] (one
//! instance) → [`route`]/[`FleetPolicy`] (schedulers and health) →
//! [`FleetCampaign`]/[`FleetSim`] (the epoch loop, checkpointing, and
//! summaries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod node;
mod policy;
mod sim;
mod trace;

pub use event::{fnv1a64, Event, EventKind, EventQueue};
pub use node::{NodeCounters, NodeState, NodeStatus};
pub use policy::{route, FleetPolicy, RoutingPolicy};
pub use sim::{
    node_corner_seed, EventLog, FleetCampaign, FleetConfig, FleetSim, FleetSummary, NodeReport,
};
pub use trace::{epoch_seed, epoch_trace, trace_pairs, TraceKind, TraceOp};
