//! Seeded workload flows: the operand streams a fleet serves.
//!
//! Every generator is a *pure function* of `(seed, epoch, config)` — no
//! RNG state survives between epochs, so a run resumed from a checkpoint
//! regenerates exactly the trace the uninterrupted run saw. Per-epoch
//! streams are decorrelated with the same SplitMix64 finalizer the Monte
//! Carlo campaign uses for corner seeds.

/// The flavours of traffic a fleet can be driven with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Uniform operands, one arrival per nominal cycle — the steady
    /// baseline matching the workspace's uniform `PatternSet` workloads.
    Uniform,
    /// Bursts of eight simultaneous arrivals separated by idle gaps —
    /// exercises queueing (and the event queue's simultaneous-timestamp
    /// tie-break) without changing the operand distribution.
    Bursty,
    /// Three quarters of the operands drawn from a low-zero-count "hot"
    /// band of the multiplicand space: mostly two-cycle, high-switching
    /// traffic that stresses whichever nodes the scheduler favours.
    HotSpot,
    /// The adversarial stress trace (after the aging-attack line of
    /// Heidary & Joardar): near-zero-free operands arriving at twice the
    /// nominal rate — maximum utilization, maximum BTI stress.
    Adversarial,
}

impl TraceKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Uniform,
        TraceKind::Bursty,
        TraceKind::HotSpot,
        TraceKind::Adversarial,
    ];

    /// A stable lowercase label (wire format, CSV cells, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Uniform => "uniform",
            TraceKind::Bursty => "bursty",
            TraceKind::HotSpot => "hotspot",
            TraceKind::Adversarial => "adversarial",
        }
    }

    /// Parses a [`label`](Self::label).
    ///
    /// # Errors
    ///
    /// Names the unknown label and lists the valid ones.
    pub fn parse(label: &str) -> Result<TraceKind, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = Self::ALL.iter().map(|k| k.label()).collect();
                format!("unknown trace {label:?} (want one of {})", valid.join(", "))
            })
    }

    /// A stable numeric tag (run-key fingerprints).
    pub fn tag(self) -> u64 {
        match self {
            TraceKind::Uniform => 0,
            TraceKind::Bursty => 1,
            TraceKind::HotSpot => 2,
            TraceKind::Adversarial => 3,
        }
    }
}

/// One traced operation: when it arrives and what it multiplies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival offset from the epoch start, femtoseconds.
    pub at_fs: u64,
    /// Multiplicand.
    pub a: u64,
    /// Multiplicator.
    pub b: u64,
}

/// SplitMix64 — the workspace's seed-derivation PRNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives the decorrelated seed of one epoch's stream from the base seed
/// (the same finalizer `agemul`'s Monte Carlo campaign applies to corner
/// indices).
pub fn epoch_seed(base: u64, epoch: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((epoch as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates epoch `epoch` of a trace: `ops` operations over `width`-bit
/// operands, with arrival spacing derived from the fleet's nominal cycle
/// `cycle_fs`.
///
/// Pure in `(kind, seed, epoch, ops, width, cycle_fs)`; two calls with
/// equal arguments return identical traces.
///
/// # Panics
///
/// Panics if `width` is zero or exceeds 63, or if `cycle_fs` is zero.
pub fn epoch_trace(
    kind: TraceKind,
    seed: u64,
    epoch: usize,
    ops: usize,
    width: usize,
    cycle_fs: u64,
) -> Vec<TraceOp> {
    assert!(
        width > 0 && width < 64,
        "operand width must be in 1..=63, got {width}"
    );
    assert!(cycle_fs > 0, "nominal cycle must be positive");
    let mask: u64 = (1 << width) - 1;
    let mut rng = SplitMix64::new(epoch_seed(seed, epoch));
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        let i = i as u64;
        let (at_fs, a, b) = match kind {
            TraceKind::Uniform => (i * cycle_fs, rng.next_u64() & mask, rng.next_u64() & mask),
            TraceKind::Bursty => {
                // Bursts of 8 back-to-back arrivals, then a gap long
                // enough for the queue to drain (12 nominal cycles per
                // burst slot).
                let burst = i / 8;
                (
                    burst * 12 * cycle_fs,
                    rng.next_u64() & mask,
                    rng.next_u64() & mask,
                )
            }
            TraceKind::HotSpot => {
                let roll = rng.next_u64();
                let b = rng.next_u64() & mask;
                // 3/4 of arrivals take the multiplicand from a hot band:
                // all bits set except two pseudorandom positions — a
                // near-zero-free judged operand.
                let a = if !roll.is_multiple_of(4) {
                    let z0 = (roll >> 8) % width as u64;
                    let z1 = (roll >> 24) % width as u64;
                    mask & !(1 << z0) & !(1 << z1)
                } else {
                    rng.next_u64() & mask
                };
                (i * cycle_fs, a, b)
            }
            TraceKind::Adversarial => {
                // Twice the nominal arrival rate, operands with at most
                // one zero bit each: the judged zero count pins the AHL
                // to its stressed region while switching activity (and
                // therefore BTI stress) is maximal.
                let roll = rng.next_u64();
                let a = mask & !(1 << (roll % width as u64));
                let b = mask & !(1 << ((roll >> 16) % width as u64));
                (i * (cycle_fs / 2).max(1), a, b)
            }
        };
        out.push(TraceOp { at_fs, a, b });
    }
    out
}

/// The operand pairs of a trace, in arrival order — what the node
/// profiling step feeds the timing kernels.
pub fn trace_pairs(trace: &[TraceOp]) -> Vec<(u64, u64)> {
    trace.iter().map(|op| (op.a, op.b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_pure_functions_of_their_arguments() {
        for kind in TraceKind::ALL {
            let a = epoch_trace(kind, 42, 3, 200, 16, 1_000_000);
            let b = epoch_trace(kind, 42, 3, 200, 16, 1_000_000);
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn epochs_are_decorrelated() {
        let a = epoch_trace(TraceKind::Uniform, 42, 0, 64, 16, 1_000_000);
        let b = epoch_trace(TraceKind::Uniform, 42, 1, 64, 16, 1_000_000);
        assert_ne!(trace_pairs(&a), trace_pairs(&b));
    }

    #[test]
    fn operands_respect_width() {
        for kind in TraceKind::ALL {
            for op in epoch_trace(kind, 7, 2, 500, 8, 1_000_000) {
                assert!(op.a < 256 && op.b < 256, "{kind:?}: {op:?}");
            }
        }
    }

    #[test]
    fn adversarial_operands_have_at_most_one_zero() {
        for op in epoch_trace(TraceKind::Adversarial, 9, 0, 300, 16, 1_000_000) {
            assert!((op.a.count_ones()) >= 15, "{op:?}");
            assert!((op.b.count_ones()) >= 15, "{op:?}");
        }
    }

    #[test]
    fn bursty_arrivals_share_timestamps() {
        let trace = epoch_trace(TraceKind::Bursty, 11, 0, 16, 16, 1_000_000);
        assert_eq!(trace[0].at_fs, trace[7].at_fs);
        assert!(trace[8].at_fs > trace[7].at_fs);
    }

    #[test]
    fn labels_round_trip() {
        for kind in TraceKind::ALL {
            assert_eq!(TraceKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(TraceKind::parse("nope").is_err());
    }
}
