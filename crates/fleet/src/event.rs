//! The discrete-event core: a priority queue with a *total*,
//! seed-stable order.
//!
//! Scheduler comparisons are only meaningful if the event order is a pure
//! function of the pushed events — two policies replayed over the same
//! trace must see arrivals in exactly the same sequence, and a resumed
//! run must pop exactly what the uninterrupted run popped. The queue
//! therefore orders events by `(time_fs, seq)`: femtosecond timestamps
//! first, and for simultaneous events the monotonically assigned push
//! sequence number breaks the tie. `seq` is unique per queue lifetime, so
//! the order is total — no two distinct events ever compare equal, and
//! `BinaryHeap`'s internal layout can never leak into the pop order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happened (or is scheduled to happen) at an event's timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Operation `op` of the current epoch's trace arrives at the fleet
    /// front-end and must be routed.
    Arrival {
        /// Index of the operation in the epoch trace.
        op: u32,
    },
    /// Node `node` finishes executing operation `op`.
    Completion {
        /// The executing node.
        node: u32,
        /// Index of the operation in the epoch trace.
        op: u32,
    },
}

impl EventKind {
    /// A stable one-byte tag for the wire/log encoding.
    pub fn tag(self) -> u8 {
        match self {
            EventKind::Arrival { .. } => 1,
            EventKind::Completion { .. } => 2,
        }
    }
}

/// One scheduled event: timestamp, tie-breaking sequence number, payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Simulated time, femtoseconds.
    pub time_fs: u64,
    /// Push order within the owning queue — the simultaneous-timestamp
    /// tie-breaker. Unique per queue, so `(time_fs, seq)` is a total
    /// order. Field order matters: the derived `Ord` compares `time_fs`
    /// first, then `seq`; `kind` is never reached.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Appends the event's fixed-width little-endian encoding (17 bytes:
    /// time, seq, tag) plus the payload fields to `out` — the byte stream
    /// the replay suite's golden hashes are computed over.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time_fs.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.kind.tag());
        match self.kind {
            EventKind::Arrival { op } => {
                out.extend_from_slice(&op.to_le_bytes());
            }
            EventKind::Completion { node, op } => {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&op.to_le_bytes());
            }
        }
    }
}

/// A deterministic event queue: min-heap over `(time_fs, seq)`.
///
/// # Example
///
/// ```
/// use agemul_fleet::{EventKind, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(20, EventKind::Arrival { op: 1 });
/// q.push(10, EventKind::Arrival { op: 0 });
/// q.push(10, EventKind::Completion { node: 3, op: 9 });
/// // Earlier time first; equal times pop in push order.
/// assert_eq!(q.pop().unwrap().kind, EventKind::Arrival { op: 0 });
/// assert_eq!(q.pop().unwrap().kind, EventKind::Completion { node: 3, op: 9 });
/// assert_eq!(q.pop().unwrap().kind, EventKind::Arrival { op: 1 });
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue with the sequence counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time_fs` and returns the assigned sequence
    /// number (monotone across the queue's lifetime — pops never recycle
    /// sequence numbers).
    pub fn push(&mut self, time_fs: u64, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time_fs, seq, kind }));
        seq
    }

    /// Pops the next event: smallest `time_fs`, then smallest `seq`.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// FNV-1a over a byte stream — the workspace's standard tiny,
/// dependency-free fingerprint (the same construction `agemul`'s profile
/// cache and `agemul-harness`'s run keys use).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [50u64, 10, 40, 20, 30] {
            q.push(t, EventKind::Arrival { op: t as u32 });
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time_fs).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn simultaneous_events_pop_in_push_order() {
        let mut q = EventQueue::new();
        for op in 0..100u32 {
            q.push(7, EventKind::Arrival { op });
        }
        let ops: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { op } => op,
                EventKind::Completion { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(ops, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_are_monotone_across_interleaved_pops() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrival { op: 0 });
        q.pop();
        let seq = q.push(5, EventKind::Arrival { op: 1 });
        assert_eq!(seq, 1, "pops must not recycle sequence numbers");
    }

    #[test]
    fn encoding_distinguishes_kinds_and_fields() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Event {
            time_fs: 1,
            seq: 2,
            kind: EventKind::Arrival { op: 3 },
        }
        .encode(&mut a);
        Event {
            time_fs: 1,
            seq: 2,
            kind: EventKind::Completion { node: 0, op: 3 },
        }
        .encode(&mut b);
        assert_ne!(a, b);
        assert_ne!(fnv1a64(&a), fnv1a64(&b));
    }
}
