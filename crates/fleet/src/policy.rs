//! Routing and node-health policies.
//!
//! Routing decides where each arriving operation executes; the health
//! policy decides, at epoch boundaries, which nodes retire, down-clock,
//! or rest. Both are deliberately *deterministic*: every tie falls back
//! to the node id, so a policy comparison is a pure function of the seed
//! and the replay suite can pin it.

use crate::node::NodeState;

/// How arriving operations are routed across active nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Cyclic assignment over active nodes — the oblivious baseline.
    RoundRobin,
    /// The active node that frees up earliest (smallest `busy_until`),
    /// ties broken by id.
    LeastLoaded,
    /// Aging-aware least-degraded: the *healthiest half* of the active
    /// nodes (smallest current profile max delay) is eligible, and the
    /// least-loaded eligible node wins. Degraded nodes therefore see
    /// less traffic, age more slowly (BTI stress follows utilization),
    /// and hold their error rates under the retirement cliff longer —
    /// wear-leveling applied to transistor aging.
    AgingAware,
}

impl RoutingPolicy {
    /// Every policy, in comparison order.
    pub const ALL: [RoutingPolicy; 3] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::AgingAware,
    ];

    /// A stable label (wire format, CSV cells, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::AgingAware => "aging-aware",
        }
    }

    /// Parses a [`label`](Self::label).
    ///
    /// # Errors
    ///
    /// Names the unknown label and lists the valid ones.
    pub fn parse(label: &str) -> Result<RoutingPolicy, String> {
        Self::ALL
            .into_iter()
            .find(|p| p.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = Self::ALL.iter().map(|p| p.label()).collect();
                format!(
                    "unknown policy {label:?} (want one of {})",
                    valid.join(", ")
                )
            })
    }

    /// A stable numeric tag (run-key fingerprints).
    pub fn tag(self) -> u64 {
        match self {
            RoutingPolicy::RoundRobin => 0,
            RoutingPolicy::LeastLoaded => 1,
            RoutingPolicy::AgingAware => 2,
        }
    }
}

/// The complete per-node management policy of a fleet scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetPolicy {
    /// Routing discipline.
    pub routing: RoutingPolicy,
    /// Retire a node whose per-epoch Razor error rate exceeds this many
    /// errors per 10 000 operations (`f64::INFINITY` disables). A node
    /// with any undetected violation retires unconditionally — silent
    /// corruption is never load-balanced away.
    pub retire_error_per_10k: f64,
    /// Below the retirement cliff, stretch the node's clock when its
    /// per-epoch error rate exceeds this (`f64::INFINITY` disables).
    pub downclock_error_per_10k: f64,
    /// Clock stretch per down-clock action, percent.
    pub downclock_percent: u32,
    /// Maximum down-clock actions per node.
    pub max_downclocks: u32,
    /// Rejuvenation rotation period in epochs: every `rotation_epochs`
    /// epochs the next node in id order rests for that window (0
    /// disables). After Gürsoy et al., resting partially rejuvenates.
    pub rotation_epochs: u32,
    /// BTI age recovered per rested epoch, years.
    pub rest_recovery_years: f64,
}

impl FleetPolicy {
    /// The workspace baseline for a routing discipline: retirement at
    /// 600 errors / 10 k ops, down-clocking (two 5 % steps) at 250, no
    /// rotation.
    pub fn baseline(routing: RoutingPolicy) -> Self {
        FleetPolicy {
            routing,
            retire_error_per_10k: 600.0,
            downclock_error_per_10k: 250.0,
            downclock_percent: 5,
            max_downclocks: 2,
            rotation_epochs: 0,
            rest_recovery_years: 0.0,
        }
    }

    /// [`baseline`](Self::baseline) with the rejuvenation rotation on:
    /// one node rests per `rotation` epochs, recovering `recovery` years
    /// of effective age per rested epoch.
    pub fn with_rotation(routing: RoutingPolicy, rotation: u32, recovery: f64) -> Self {
        FleetPolicy {
            rotation_epochs: rotation,
            rest_recovery_years: recovery,
            ..Self::baseline(routing)
        }
    }

    /// A scenario label: the routing label, plus `+rotation` when the
    /// rejuvenation rotation is enabled.
    pub fn label(&self) -> String {
        if self.rotation_epochs > 0 {
            format!("{}+rotation", self.routing.label())
        } else {
            self.routing.label().to_string()
        }
    }

    /// The `u64` words this policy contributes to a run-key fingerprint.
    pub fn fingerprint_words(&self) -> Vec<u64> {
        vec![
            self.routing.tag(),
            self.retire_error_per_10k.to_bits(),
            self.downclock_error_per_10k.to_bits(),
            u64::from(self.downclock_percent),
            u64::from(self.max_downclocks),
            u64::from(self.rotation_epochs),
            self.rest_recovery_years.to_bits(),
        ]
    }
}

/// Routes one arrival: returns the chosen node id, or `None` if no node
/// is routable. `rr_cursor` is the round-robin scan position, advanced
/// only by the round-robin discipline.
///
/// Determinism: every comparison ends in the node id, and the candidate
/// scan runs in id order, so the decision is a pure function of the node
/// states — never of map iteration order or heap layout.
pub fn route(policy: &FleetPolicy, nodes: &[NodeState], rr_cursor: &mut u32) -> Option<u32> {
    let routable = nodes.iter().filter(|n| n.is_routable()).count();
    if routable == 0 {
        return None;
    }
    match policy.routing {
        RoutingPolicy::RoundRobin => {
            // Scan up to one full cycle from the cursor for the next
            // routable node.
            let n = nodes.len() as u32;
            for step in 0..n {
                let id = (*rr_cursor + step) % n;
                if nodes[id as usize].is_routable() {
                    *rr_cursor = (id + 1) % n;
                    return Some(id);
                }
            }
            None
        }
        RoutingPolicy::LeastLoaded => nodes
            .iter()
            .filter(|n| n.is_routable())
            .min_by_key(|n| (n.busy_until_fs, n.id))
            .map(|n| n.id),
        RoutingPolicy::AgingAware => {
            // Healthiest ceil(half) by current profile max delay (bit
            // comparison is total: delays are finite non-negative), then
            // least-loaded among them.
            let mut active: Vec<&NodeState> = nodes.iter().filter(|n| n.is_routable()).collect();
            active.sort_by_key(|n| (n.profile_max_delay_ns.to_bits(), n.id));
            let eligible = active.len().div_ceil(2);
            active[..eligible]
                .iter()
                .min_by_key(|n| (n.busy_until_fs, n.id))
                .map(|n| n.id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeStatus;

    fn fleet(n: u32) -> Vec<NodeState> {
        (0..n)
            .map(|id| NodeState::new(id, u64::from(id) + 1, 0.0, 1_000_000, 7))
            .collect()
    }

    #[test]
    fn round_robin_cycles_over_active_nodes() {
        let mut nodes = fleet(4);
        nodes[2].status = NodeStatus::Retired;
        let policy = FleetPolicy::baseline(RoutingPolicy::RoundRobin);
        let mut cursor = 0;
        let picks: Vec<u32> = (0..6)
            .map(|_| route(&policy, &nodes, &mut cursor).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 3, 0, 1, 3]);
    }

    #[test]
    fn least_loaded_prefers_earliest_free_then_id() {
        let mut nodes = fleet(3);
        nodes[0].busy_until_fs = 50;
        nodes[1].busy_until_fs = 10;
        nodes[2].busy_until_fs = 10;
        let policy = FleetPolicy::baseline(RoutingPolicy::LeastLoaded);
        let mut cursor = 0;
        assert_eq!(route(&policy, &nodes, &mut cursor), Some(1));
    }

    #[test]
    fn aging_aware_excludes_the_degraded_half() {
        let mut nodes = fleet(4);
        nodes[0].profile_max_delay_ns = 1.40; // most degraded
        nodes[1].profile_max_delay_ns = 1.10;
        nodes[2].profile_max_delay_ns = 1.35;
        nodes[3].profile_max_delay_ns = 1.20;
        // The degraded node is idle, the healthy ones busy: an oblivious
        // least-loaded pick would choose node 0; aging-aware must not.
        nodes[1].busy_until_fs = 100;
        nodes[3].busy_until_fs = 50;
        let policy = FleetPolicy::baseline(RoutingPolicy::AgingAware);
        let mut cursor = 0;
        assert_eq!(route(&policy, &nodes, &mut cursor), Some(3));
    }

    #[test]
    fn no_routable_node_yields_none() {
        let mut nodes = fleet(2);
        nodes[0].status = NodeStatus::Retired;
        nodes[1].status = NodeStatus::Resting;
        for routing in RoutingPolicy::ALL {
            let mut cursor = 0;
            assert_eq!(
                route(&FleetPolicy::baseline(routing), &nodes, &mut cursor),
                None
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for p in RoutingPolicy::ALL {
            assert_eq!(RoutingPolicy::parse(p.label()).unwrap(), p);
        }
        assert!(RoutingPolicy::parse("psychic").is_err());
        assert_eq!(
            FleetPolicy::with_rotation(RoutingPolicy::AgingAware, 2, 0.25).label(),
            "aging-aware+rotation"
        );
    }
}
