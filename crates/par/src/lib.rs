//! Deterministic fork-join helpers for the workspace's embarrassingly
//! parallel loops (rayon stand-in).
//!
//! The build container cannot fetch rayon, so the `parallel` cargo feature
//! is backed by this tiny crate instead: `std::thread::scope` fork-join
//! over contiguous chunks, with results stitched back **in input order**.
//! That ordering guarantee is what lets callers promise bit-identical
//! results between serial and parallel runs — the parallel path changes
//! *where* work executes, never the order in which results are combined.
//!
//! Only order-independent workloads belong here. In `agemul` that means
//! period sweeps (each period replays an immutable profile), functional
//! batch-simulation chunks (stateless per pattern), and whole repro figures
//! (each gets its own context). The event-driven timing simulator is
//! deliberately *not* fanned out per-chunk: its tri-state hold semantics
//! make every pattern depend on simulator history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the machine's available parallelism,
/// clamped to the job count (at least 1).
pub fn thread_count(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(jobs).max(1)
}

/// Maps `f` over `items` on scoped worker threads, returning results in
/// input order.
///
/// Contiguous chunks of `items` are assigned to threads; panics in `f`
/// propagate to the caller (the scope re-raises them). With one item, one
/// hardware thread, or an empty input, this degrades to a plain serial
/// map — same results, no thread spawn.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    // Ceil-divided contiguous chunks; chunk i starts at i * chunk_len, so
    // concatenating per-chunk outputs reproduces input order exactly.
    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        results = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    results.into_iter().flatten().collect()
}

/// Maps `f` over owned `items` on scoped worker threads, returning results
/// in input order.
///
/// Like [`par_map`] but consumes the items, for workloads whose tasks are
/// built per-call (e.g. one repro figure id + fresh context per task).
pub fn par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk_len.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }

    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| chunk.into_iter().map(&f).collect::<Vec<R>>()))
            .collect();
        results = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    results.into_iter().flatten().collect()
}

/// Maps `f` over `items` with **dynamic chunk scheduling**: workers claim
/// fixed-size chunks from a shared atomic counter, so a thread that drew
/// cheap items immediately steals the next chunk instead of idling while a
/// neighbour grinds through expensive ones. Results are stitched back in
/// input order (chunks are indexed), preserving the crate's bit-identity
/// contract.
///
/// Use this instead of [`par_map`] when per-item cost is *uneven* — Monte
/// Carlo corners whose dirty cones differ wildly, fault cases of mixed
/// severity. For uniform work the static split has slightly less
/// coordination overhead.
///
/// `chunk` is the claim granularity (clamped to ≥ 1): small enough to
/// balance, large enough to amortize the atomic claim. Panics in `f`
/// propagate to the caller.
pub fn par_map_stealing<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_stealing_with(items, chunk, || (), |(), item| f(item))
}

/// [`par_map_stealing`] with **per-worker state**: each worker thread calls
/// `init` once and threads the resulting scratch through every item it
/// claims. This is the shape the plan-reuse Monte Carlo driver needs — one
/// retimeable simulation kernel per worker, reused across every corner
/// that worker steals, instead of one kernel per corner.
///
/// `f` must produce a result that depends only on the item (the state is
/// *scratch*, not an accumulator); under that contract the output is
/// bit-identical to a serial map regardless of how chunks land on workers.
/// With one thread or an empty input this degrades to a serial map over a
/// single state, no threads spawned.
pub fn par_map_stealing_with<T, R, S, I, F>(items: &[T], chunk: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let chunk = chunk.max(1);
    let chunk_count = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<(usize, Vec<R>)> = Vec::with_capacity(chunk_count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(chunk_count))
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut claimed: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunk_count {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(items.len());
                        claimed.push((
                            c,
                            items[start..end]
                                .iter()
                                .map(|item| f(&mut state, item))
                                .collect(),
                        ));
                    }
                    claimed
                })
            })
            .collect();
        for h in handles {
            buckets.extend(h.join().unwrap());
        }
    });
    // Reassemble in input order: chunk indices are a permutation of
    // 0..chunk_count, so sorting restores the serial result layout.
    buckets.sort_unstable_by_key(|(c, _)| *c);
    buckets.into_iter().flat_map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn owned_variant_preserves_order() {
        let items: Vec<String> = (0..57).map(|i| format!("job{i}")).collect();
        let out = par_map_owned(items.clone(), |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[9u8], |&x| x + 1), vec![10]);
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<f64> = (0..321).map(|i| f64::from(i) * 0.37).collect();
        let serial: Vec<f64> = items.iter().map(|x| x.sin() * x.cos()).collect();
        let parallel = par_map(&items, |x| x.sin() * x.cos());
        // Bit-identical, not approximately equal: same code on same input.
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(64) >= 1);
    }

    #[test]
    fn stealing_preserves_input_order() {
        let items: Vec<u64> = (0..1003).collect();
        for chunk in [1, 3, 16, 64, 5000] {
            let out = par_map_stealing(&items, chunk, |&x| x * 7 + 1);
            assert_eq!(out, items.iter().map(|&x| x * 7 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stealing_balances_uneven_work() {
        // Items with wildly different costs still produce ordered results.
        let items: Vec<u32> = (0..257)
            .map(|i| if i % 17 == 0 { 20_000 } else { 10 })
            .collect();
        let spin = |n: u32| (0..n).fold(0u64, |acc, i| acc.wrapping_add(u64::from(i) * 31));
        let serial: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        let stolen = par_map_stealing(&items, 4, |&n| spin(n));
        assert_eq!(serial, stolen);
    }

    #[test]
    fn stealing_with_state_reuses_worker_scratch() {
        // Each worker's state counts how many items it processed; results
        // must not depend on that distribution.
        let items: Vec<u64> = (0..500).collect();
        let out = par_map_stealing_with(
            &items,
            8,
            || 0u64,
            |seen, &x| {
                *seen += 1;
                assert!(*seen > 0, "state threads through every claimed item");
                x * 2
            },
        );
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_handles_empty_single_and_zero_chunk() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_stealing(&empty, 0, |&x| x).is_empty());
        assert_eq!(par_map_stealing(&[5u8], 0, |&x| x + 1), vec![6]);
    }
}
