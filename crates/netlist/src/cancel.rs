//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a supervisor
//! and a worker. The supervisor either calls [`CancelToken::cancel`] or arms
//! the token with a wall-clock deadline; the worker polls
//! [`CancelToken::check`] at loop boundaries and unwinds with
//! [`NetlistError::Cancelled`] when the token fires. Both [`EventSim`] and
//! [`LevelSim`] poll a token installed via their `set_cancel_token` methods,
//! which makes every profiling and sweep path in the workspace cancellable
//! without busy-killing threads.
//!
//! [`EventSim`]: crate::EventSim
//! [`LevelSim`]: crate::LevelSim

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::NetlistError;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A clonable cancellation handle with an optional wall-clock deadline.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same state.
/// A token fires when either [`cancel`](CancelToken::cancel) has been called
/// on any clone or the deadline (if armed) has passed.
///
/// # Example
///
/// ```
/// use agemul_netlist::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.check().is_ok());
/// token.cancel();
/// assert!(token.check().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Creates a token that only fires on an explicit [`cancel`] call.
    ///
    /// [`cancel`]: CancelToken::cancel
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// Creates a token that fires once `budget` wall-clock time has elapsed
    /// (or earlier, on an explicit [`cancel`] call).
    ///
    /// [`cancel`]: CancelToken::cancel
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Fires the token; all clones observe the cancellation.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once the token has fired (explicitly or by deadline).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Polls the token: `Err(NetlistError::Cancelled)` once it has fired.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cancelled`] after [`cancel`] or past the
    /// deadline.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn check(&self) -> Result<(), NetlistError> {
        if self.is_cancelled() {
            Err(NetlistError::Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_clear() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(NetlistError::Cancelled));
    }

    #[test]
    fn deadline_fires_after_budget() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // A zero budget is already expired by the time we poll.
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_matches_new() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
