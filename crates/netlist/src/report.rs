//! Structural statistics for generated netlists.

use std::fmt;

use agemul_logic::GateKind;

use crate::{NetId, Netlist, Topology};

/// A structural summary of a netlist: gate population by kind, logic
/// depth, and fanout statistics.
///
/// # Example
///
/// ```
/// use agemul_logic::GateKind;
/// use agemul_netlist::{Netlist, NetlistReport};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::And, &[a, b])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
/// let report = NetlistReport::new(&n, &topo);
/// assert_eq!(report.gate_count(GateKind::And), 1);
/// assert_eq!(report.depth(), 1);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetlistReport {
    kind_counts: Vec<(GateKind, usize)>,
    depth: u32,
    max_fanout: usize,
    avg_fanout: f64,
    nets: usize,
    inputs: usize,
    outputs: usize,
}

impl NetlistReport {
    /// Summarizes `netlist`.
    pub fn new(netlist: &Netlist, topology: &Topology) -> Self {
        let mut kind_counts: Vec<(GateKind, usize)> =
            GateKind::ALL.iter().map(|&k| (k, 0usize)).collect();
        for gate in netlist.gates() {
            if let Some(slot) = kind_counts.iter_mut().find(|(k, _)| *k == gate.kind()) {
                slot.1 += 1;
            }
        }
        let mut max_fanout = 0usize;
        let mut total_fanout = 0usize;
        let mut driven = 0usize;
        for idx in 0..netlist.net_count() {
            let f = topology.fanout(NetId::from_index(idx)).len();
            max_fanout = max_fanout.max(f);
            if f > 0 {
                total_fanout += f;
                driven += 1;
            }
        }
        NetlistReport {
            kind_counts,
            depth: topology.max_level(),
            max_fanout,
            avg_fanout: if driven == 0 {
                0.0
            } else {
                total_fanout as f64 / driven as f64
            },
            nets: netlist.net_count(),
            inputs: netlist.input_count(),
            outputs: netlist.output_count(),
        }
    }

    /// Instances of the given gate kind.
    pub fn gate_count(&self, kind: GateKind) -> usize {
        self.kind_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, c)| *c)
    }

    /// Total gate instances.
    pub fn total_gates(&self) -> usize {
        self.kind_counts.iter().map(|(_, c)| c).sum()
    }

    /// Deepest logic level.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The largest fanout of any net.
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Mean fanout over nets with at least one reader.
    pub fn avg_fanout(&self) -> f64 {
        self.avg_fanout
    }

    /// Net / input / output counts.
    pub fn io(&self) -> (usize, usize, usize) {
        (self.nets, self.inputs, self.outputs)
    }
}

impl fmt::Display for NetlistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist: {} gates, {} nets, {} inputs, {} outputs, depth {}",
            self.total_gates(),
            self.nets,
            self.inputs,
            self.outputs,
            self.depth
        )?;
        writeln!(
            f,
            "fanout: max {}, avg {:.2}",
            self.max_fanout, self.avg_fanout
        )?;
        for (kind, count) in &self.kind_counts {
            if *count > 0 {
                writeln!(f, "  {kind:>5}: {count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_a_small_circuit() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::And, &[x, a]).unwrap();
        n.mark_output(y, "y");
        let topo = n.topology().unwrap();
        let r = NetlistReport::new(&n, &topo);
        assert_eq!(r.total_gates(), 2);
        assert_eq!(r.gate_count(GateKind::Xor), 1);
        assert_eq!(r.gate_count(GateKind::Mux2), 0);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.max_fanout(), 2); // `a` feeds two gates
        let (nets, ins, outs) = r.io();
        assert_eq!((nets, ins, outs), (4, 2, 1));
        let text = r.to_string();
        assert!(text.contains("2 gates"));
        assert!(text.contains("XOR: 1"));
    }

    #[test]
    fn empty_netlist_report() {
        let n = Netlist::new();
        let topo = n.topology().unwrap();
        let r = NetlistReport::new(&n, &topo);
        assert_eq!(r.total_gates(), 0);
        assert_eq!(r.avg_fanout(), 0.0);
    }
}
