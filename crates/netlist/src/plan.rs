//! Flattened gate-evaluation plan shared by the simulators.
//!
//! [`FuncSim`](crate::FuncSim) and [`BatchSim`](crate::BatchSim) both sweep
//! the gates in builder order; the plan precomputes everything that sweep
//! needs — gate kind, output slot, and a *flat* input-index array — once at
//! simulator construction instead of chasing `Gate` structs and `NetId`
//! wrappers on every pattern. On wide multipliers this removes one pointer
//! indirection per gate input per pattern from the hottest loop in the
//! workspace.

use agemul_logic::GateKind;

use crate::Netlist;

/// Precomputed, cache-friendly sweep order over a netlist's gates.
#[derive(Clone, Debug)]
pub(crate) struct GatePlan {
    kinds: Vec<GateKind>,
    outputs: Vec<u32>,
    /// `offsets[g]..offsets[g + 1]` indexes `inputs` for gate `g`.
    offsets: Vec<u32>,
    inputs: Vec<u32>,
    max_arity: usize,
}

impl GatePlan {
    /// Flattens `netlist`'s gates (builder order, which is topological by
    /// construction: every gate reads previously created nets).
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let gates = netlist.gates();
        let mut kinds = Vec::with_capacity(gates.len());
        let mut outputs = Vec::with_capacity(gates.len());
        let mut offsets = Vec::with_capacity(gates.len() + 1);
        let mut inputs = Vec::new();
        let mut max_arity = 0;
        offsets.push(0);
        for gate in gates {
            kinds.push(gate.kind());
            outputs.push(gate.output().index() as u32);
            max_arity = max_arity.max(gate.inputs().len());
            inputs.extend(gate.inputs().iter().map(|n| n.index() as u32));
            offsets.push(inputs.len() as u32);
        }
        GatePlan {
            kinds,
            outputs,
            offsets,
            inputs,
            max_arity,
        }
    }

    /// Number of gates in the plan.
    #[inline]
    pub(crate) fn gate_count(&self) -> usize {
        self.kinds.len()
    }

    /// The widest gate's input count (scratch sizing).
    #[inline]
    pub(crate) fn max_arity(&self) -> usize {
        self.max_arity
    }

    /// Gate `g`'s kind.
    #[inline]
    pub(crate) fn kind(&self, g: usize) -> GateKind {
        self.kinds[g]
    }

    /// Gate `g`'s output net index.
    #[inline]
    pub(crate) fn output(&self, g: usize) -> usize {
        self.outputs[g] as usize
    }

    /// Gate `g`'s input net indices.
    #[inline]
    pub(crate) fn inputs_of(&self, g: usize) -> &[u32] {
        &self.inputs[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;
    use crate::Netlist;

    #[test]
    fn plan_mirrors_builder_order() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Mux2, &[a, b, x]).unwrap();
        n.mark_output(y, "y");

        let plan = GatePlan::new(&n);
        assert_eq!(plan.gate_count(), 2);
        assert_eq!(plan.max_arity(), 3);
        assert_eq!(plan.kind(0), GateKind::Xor);
        assert_eq!(plan.kind(1), GateKind::Mux2);
        assert_eq!(plan.inputs_of(0), [a.index() as u32, b.index() as u32]);
        assert_eq!(plan.output(0), x.index());
        assert_eq!(
            plan.inputs_of(1),
            [a.index() as u32, b.index() as u32, x.index() as u32]
        );
        assert_eq!(plan.output(1), y.index());
    }
}
