//! Flattened gate-evaluation plans shared by the simulators.
//!
//! [`FuncSim`](crate::FuncSim) and [`BatchSim`](crate::BatchSim) both sweep
//! the gates in builder order; the plan precomputes everything that sweep
//! needs — gate kind, output slot, and a *flat* input-index array — once at
//! simulator construction instead of chasing `Gate` structs and `NetId`
//! wrappers on every pattern. On wide multipliers this removes one pointer
//! indirection per gate input per pattern from the hottest loop in the
//! workspace.
//!
//! [`TimedPlan`] extends the functional [`GatePlan`] into a levelized
//! *timing* schedule for [`LevelSim`](crate::LevelSim): the same flat
//! arrays plus each gate instance's propagation delay in integer
//! femtoseconds and its topological level, so the timed kernel can sweep
//! dirty gates level by level in linear memory instead of popping a
//! priority queue.

use agemul_logic::GateKind;

use crate::{DelayAssignment, GateId, Netlist, Topology};

/// Precomputed, cache-friendly sweep order over a netlist's gates.
#[derive(Clone, Debug)]
pub(crate) struct GatePlan {
    kinds: Vec<GateKind>,
    outputs: Vec<u32>,
    /// `offsets[g]..offsets[g + 1]` indexes `inputs` for gate `g`.
    offsets: Vec<u32>,
    inputs: Vec<u32>,
    max_arity: usize,
}

impl GatePlan {
    /// Flattens `netlist`'s gates (builder order, which is topological by
    /// construction: every gate reads previously created nets).
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let gates = netlist.gates();
        let mut kinds = Vec::with_capacity(gates.len());
        let mut outputs = Vec::with_capacity(gates.len());
        let mut offsets = Vec::with_capacity(gates.len() + 1);
        let mut inputs = Vec::new();
        let mut max_arity = 0;
        offsets.push(0);
        for gate in gates {
            kinds.push(gate.kind());
            outputs.push(gate.output().index() as u32);
            max_arity = max_arity.max(gate.inputs().len());
            inputs.extend(gate.inputs().iter().map(|n| n.index() as u32));
            offsets.push(inputs.len() as u32);
        }
        GatePlan {
            kinds,
            outputs,
            offsets,
            inputs,
            max_arity,
        }
    }

    /// Number of gates in the plan.
    #[inline]
    pub(crate) fn gate_count(&self) -> usize {
        self.kinds.len()
    }

    /// The widest gate's input count (scratch sizing).
    #[inline]
    pub(crate) fn max_arity(&self) -> usize {
        self.max_arity
    }

    /// Gate `g`'s kind.
    #[inline]
    pub(crate) fn kind(&self, g: usize) -> GateKind {
        self.kinds[g]
    }

    /// Gate `g`'s output net index.
    #[inline]
    pub(crate) fn output(&self, g: usize) -> usize {
        self.outputs[g] as usize
    }

    /// Gate `g`'s input net indices.
    #[inline]
    pub(crate) fn inputs_of(&self, g: usize) -> &[u32] {
        &self.inputs[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }
}

/// A levelized timing schedule: the flat [`GatePlan`] arrays plus per-gate
/// integer-femtosecond delays and topological levels.
///
/// This is the compiled form [`LevelSim`](crate::LevelSim) executes. The
/// level of a gate (copied from [`Topology`]) is strictly greater than the
/// level of every gate driving one of its inputs, so sweeping levels in
/// ascending order guarantees that when a gate is evaluated, the complete
/// step waveform of each of its input nets is already final.
#[derive(Clone, Debug)]
pub(crate) struct TimedPlan {
    gates: GatePlan,
    delays_fs: Vec<u64>,
    level_of: Vec<u32>,
    max_level: u32,
    /// Flattened fanout adjacency: `fan_dat[fan_off[n]..fan_off[n + 1]]`
    /// are the gates reading net `n` (contiguous, unlike the per-net
    /// `Vec`s in [`Topology`] — one pointer chase less in the dirty-
    /// propagation loop).
    fan_off: Vec<u32>,
    fan_dat: Vec<u32>,
}

impl TimedPlan {
    /// Compiles `netlist` + `delays` into a levelized schedule.
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover exactly the netlist's gates (the
    /// same contract as [`EventSim::new`](crate::EventSim::new)).
    pub(crate) fn new(netlist: &Netlist, topology: &Topology, delays: &DelayAssignment) -> Self {
        assert_eq!(
            delays.len(),
            netlist.gate_count(),
            "delay assignment covers {} gates, netlist has {}",
            delays.len(),
            netlist.gate_count()
        );
        let gates = GatePlan::new(netlist);
        let delays_fs = (0..netlist.gate_count())
            .map(|g| delays.delay_fs(GateId::from_index(g)))
            .collect();
        let level_of = (0..netlist.gate_count())
            .map(|g| topology.level(GateId::from_index(g)))
            .collect();
        let mut fan_off = Vec::with_capacity(netlist.net_count() + 1);
        let mut fan_dat = Vec::new();
        fan_off.push(0);
        for n in 0..netlist.net_count() {
            fan_dat.extend(
                topology
                    .fanout(crate::NetId::from_index(n))
                    .iter()
                    .map(|g| g.index() as u32),
            );
            fan_off.push(fan_dat.len() as u32);
        }
        TimedPlan {
            gates,
            delays_fs,
            level_of,
            max_level: topology.max_level(),
            fan_off,
            fan_dat,
        }
    }

    /// Swaps in a new per-gate delay vector, leaving every
    /// topology-invariant part (flat gate arrays, levels, CSR fanout)
    /// untouched. The in-place rewrite is what makes corner-batched
    /// Monte Carlo profiling cheap: only the delay-dependent slice of the
    /// schedule changes between corners, with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover exactly the schedule's gates (the
    /// same contract as [`new`](Self::new)).
    pub(crate) fn set_delays(&mut self, delays: &DelayAssignment) {
        assert_eq!(
            delays.len(),
            self.gate_count(),
            "delay assignment covers {} gates, schedule has {}",
            delays.len(),
            self.gate_count()
        );
        for (g, slot) in self.delays_fs.iter_mut().enumerate() {
            *slot = delays.delay_fs(GateId::from_index(g));
        }
    }

    /// Number of gates in the schedule.
    #[inline]
    pub(crate) fn gate_count(&self) -> usize {
        self.gates.gate_count()
    }

    /// The widest gate's input count (scratch sizing).
    #[inline]
    pub(crate) fn max_arity(&self) -> usize {
        self.gates.max_arity()
    }

    /// Gate `g`'s kind.
    #[inline]
    pub(crate) fn kind(&self, g: usize) -> GateKind {
        self.gates.kind(g)
    }

    /// Gate `g`'s output net index.
    #[inline]
    pub(crate) fn output(&self, g: usize) -> usize {
        self.gates.output(g)
    }

    /// Gate `g`'s input net indices.
    #[inline]
    pub(crate) fn inputs_of(&self, g: usize) -> &[u32] {
        self.gates.inputs_of(g)
    }

    /// Gate `g`'s propagation delay in femtoseconds.
    #[inline]
    pub(crate) fn delay_fs(&self, g: usize) -> u64 {
        self.delays_fs[g]
    }

    /// Gate `g`'s topological level (1 = reads only inputs/constants).
    #[inline]
    pub(crate) fn level_of(&self, g: usize) -> u32 {
        self.level_of[g]
    }

    /// The deepest level in the schedule (0 for a gate-free netlist).
    #[inline]
    pub(crate) fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The gates reading net `n` (flattened fanout adjacency).
    #[inline]
    pub(crate) fn fanout_of(&self, n: usize) -> &[u32] {
        &self.fan_dat[self.fan_off[n] as usize..self.fan_off[n + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;
    use crate::Netlist;

    #[test]
    fn plan_mirrors_builder_order() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Mux2, &[a, b, x]).unwrap();
        n.mark_output(y, "y");

        let plan = GatePlan::new(&n);
        assert_eq!(plan.gate_count(), 2);
        assert_eq!(plan.max_arity(), 3);
        assert_eq!(plan.kind(0), GateKind::Xor);
        assert_eq!(plan.kind(1), GateKind::Mux2);
        assert_eq!(plan.inputs_of(0), [a.index() as u32, b.index() as u32]);
        assert_eq!(plan.output(0), x.index());
        assert_eq!(
            plan.inputs_of(1),
            [a.index() as u32, b.index() as u32, x.index() as u32]
        );
        assert_eq!(plan.output(1), y.index());
    }

    #[test]
    fn timed_plan_carries_delays_and_levels() {
        use agemul_logic::DelayModel;

        use crate::DelayAssignment;

        let mut n = Netlist::new();
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Not, &[x]).unwrap();
        n.mark_output(y, "y");
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());

        let plan = TimedPlan::new(&n, &topo, &delays);
        assert_eq!(plan.gate_count(), 2);
        assert_eq!(plan.max_level(), 2);
        assert_eq!(plan.level_of(0), 1);
        assert_eq!(plan.level_of(1), 2);
        for g in 0..2 {
            assert_eq!(plan.delay_fs(g), delays.delay_fs(GateId::from_index(g)));
            assert_eq!(plan.kind(g), GateKind::Not);
        }
        assert_eq!(plan.inputs_of(1), [x.index() as u32]);
        assert_eq!(plan.output(1), y.index());
    }
}
