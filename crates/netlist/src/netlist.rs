//! The netlist graph and its builder API.

use agemul_logic::{AreaModel, GateKind, Logic};

use crate::{GateId, NetId, NetlistError, Topology};

/// One combinational gate instance.
///
/// Gates are created through [`Netlist::add_gate`]; each gate drives exactly
/// one freshly allocated net, so the graph is single-driver by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's kind.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's input nets, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this gate.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Driver {
    /// Driven by a primary input pin.
    Input,
    /// Driven by a gate.
    Gate(GateId),
    /// Tied to a constant level.
    Const(Logic),
}

#[derive(Clone, Debug)]
pub(crate) struct NetInfo {
    pub(crate) name: Option<String>,
    pub(crate) driver: Option<Driver>,
}

/// A combinational gate-level netlist.
///
/// `Netlist` is both the data structure and its builder: nets and gates are
/// appended through [`add_input`](Netlist::add_input),
/// [`add_gate`](Netlist::add_gate), [`const_zero`](Netlist::const_zero) /
/// [`const_one`](Netlist::const_one), and
/// [`mark_output`](Netlist::mark_output). Once built, call
/// [`topology`](Netlist::topology) to validate the graph and obtain the
/// levelized view the simulators require.
///
/// Sequential elements (input flip-flops, Razor flip-flops, the AHL's D
/// flip-flop) are deliberately *not* part of the netlist: the `agemul` core
/// crate models them behaviourally around the combinational cloud, exactly
/// as the paper's architecture wraps the multiplier array.
///
/// # Example
///
/// ```
/// use agemul_logic::GateKind;
/// use agemul_netlist::Netlist;
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::And, &[a, b])?;
/// n.mark_output(y, "y");
/// assert_eq!(n.gate_count(), 1);
/// assert_eq!(n.input_count(), 2);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    pub(crate) nets: Vec<NetInfo>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    const_zero: Option<NetId>,
    const_one: Option<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh net driven by a primary input pin.
    ///
    /// Input order is significant: the simulators accept input vectors whose
    /// positions correspond to the order of `add_input` calls.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.alloc_net(Some(name.into()), Some(Driver::Input));
        self.inputs.push(id);
        id
    }

    /// Adds a gate of `kind` reading `inputs`, returning the net it drives.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the input count is illegal for
    /// `kind`, or [`NetlistError::UnknownNet`] if any input id is foreign.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if !kind.accepts_arity(inputs.len()) {
            return Err(NetlistError::BadArity {
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        for &i in inputs {
            if i.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet { net: i });
            }
        }
        let gate_id = GateId(self.gates.len() as u32);
        let out = self.alloc_net(None, Some(Driver::Gate(gate_id)));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// The net tied to constant `0`, allocating it on first use.
    pub fn const_zero(&mut self) -> NetId {
        if let Some(id) = self.const_zero {
            return id;
        }
        let id = self.alloc_net(Some("const0".into()), Some(Driver::Const(Logic::Zero)));
        self.const_zero = Some(id);
        id
    }

    /// The net tied to constant `1`, allocating it on first use.
    pub fn const_one(&mut self) -> NetId {
        if let Some(id) = self.const_one {
            return id;
        }
        let id = self.alloc_net(Some("const1".into()), Some(Driver::Const(Logic::One)));
        self.const_one = Some(id);
        id
    }

    /// Marks `net` as a primary output, giving it a name.
    ///
    /// Output order is significant and follows the order of `mark_output`
    /// calls. A net may be marked as output at most once; marking it again
    /// is ignored (the first name wins).
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        assert!(
            net.index() < self.nets.len(),
            "mark_output on unknown net {net}"
        );
        if self.outputs.contains(&net) {
            return;
        }
        let info = &mut self.nets[net.index()];
        if info.name.is_none() {
            info.name = Some(name.into());
        }
        self.outputs.push(net);
    }

    /// Validates the netlist and computes its topological structure.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenOutput`] if a primary output has no
    /// driver, or [`NetlistError::CombinationalCycle`] if the gate graph is
    /// cyclic (impossible through this builder, but `Topology` re-checks so
    /// the simulators can rely on it).
    pub fn topology(&self) -> Result<Topology, NetlistError> {
        Topology::build(self)
    }

    /// Number of nets (including constants).
    #[inline]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Primary inputs in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates, indexable by [`GateId::index`].
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The name of `net`, if any was assigned.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.nets.get(net.index()).and_then(|n| n.name.as_deref())
    }

    /// The constant level driven onto `net`, if it is a constant net.
    pub fn const_level(&self, net: NetId) -> Option<Logic> {
        match self.nets.get(net.index())?.driver {
            Some(Driver::Const(v)) => Some(v),
            _ => None,
        }
    }

    /// Returns the gate driving `net`, if it is gate-driven.
    pub fn driver_gate(&self, net: NetId) -> Option<GateId> {
        match self.nets.get(net.index())?.driver {
            Some(Driver::Gate(g)) => Some(g),
            _ => None,
        }
    }

    /// Returns `true` if `net` is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        matches!(
            self.nets.get(net.index()).and_then(|n| n.driver.as_ref()),
            Some(Driver::Input)
        )
    }

    /// Total transistor count of the combinational cloud under `area`.
    ///
    /// Sequential overhead (input flops, Razor flops, AHL) is added by the
    /// architecture-level area accounting in the `agemul` core crate.
    pub fn transistor_count(&self, area: &AreaModel) -> u64 {
        self.gates
            .iter()
            .map(|g| u64::from(area.gate_transistors(g.kind, g.inputs.len())))
            .sum()
    }

    fn alloc_net(&mut self, name: Option<String>, driver: Option<Driver>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(NetInfo { name, driver });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let y = n.add_gate(GateKind::And, &[a, b]).unwrap();
        assert_eq!(y.index(), 2);
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.driver_gate(y), Some(GateId(0)));
    }

    #[test]
    fn constants_are_interned() {
        let mut n = Netlist::new();
        let z1 = n.const_zero();
        let z2 = n.const_zero();
        let o = n.const_one();
        assert_eq!(z1, z2);
        assert_ne!(z1, o);
        assert_eq!(n.const_level(z1), Some(Logic::Zero));
        assert_eq!(n.const_level(o), Some(Logic::One));
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let err = n.add_gate(GateKind::Not, &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
    }

    #[test]
    fn foreign_net_is_rejected() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let bogus = NetId(99);
        let err = n.add_gate(GateKind::And, &[a, bogus]).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet { net: bogus });
    }

    #[test]
    fn outputs_preserve_order_and_dedupe() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(y, "y");
        n.mark_output(a, "a_out");
        n.mark_output(y, "y_again");
        assert_eq!(n.outputs(), &[y, a]);
        assert_eq!(n.net_name(y), Some("y"));
    }

    #[test]
    fn names_round_trip() {
        let mut n = Netlist::new();
        let a = n.add_input("alpha");
        assert_eq!(n.net_name(a), Some("alpha"));
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        assert_eq!(n.net_name(y), None);
    }

    #[test]
    fn transistor_count_sums_gates() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap(); // 8T
        let _ = n.add_gate(GateKind::Not, &[x]).unwrap(); // 2T
        assert_eq!(n.transistor_count(&AreaModel::standard_cell()), 10);
    }

    #[test]
    fn input_flags() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        assert!(n.is_input(a));
        assert!(!n.is_input(y));
    }
}
