//! Zero-delay functional simulator.

use agemul_logic::Logic;

use crate::plan::GatePlan;
use crate::{NetId, Netlist, NetlistError, Topology};

/// A zero-delay functional simulator: one topological sweep per pattern.
///
/// `FuncSim` computes the settled value of every net for a given primary
/// input assignment. It is the reference model for correctness tests (the
/// multipliers are checked against integer multiplication through it) and
/// the workhorse for signal-probability collection, where tens of thousands
/// of patterns must be evaluated cheaply.
///
/// Tri-state buffers are memoryless here: a disabled `TBUF` output reads as
/// [`Logic::Z`]. In the bypassing multipliers every such floating net is
/// masked downstream by a mux with a known select or an AND with a
/// controlling zero, so primary outputs are always defined — a property the
/// test suites assert heavily.
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{FuncSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::Xor, &[a, b])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut sim = FuncSim::new(&n, &topo);
/// sim.eval(&[Logic::One, Logic::Zero])?;
/// assert_eq!(sim.value(y), Logic::One);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct FuncSim<'a> {
    netlist: &'a Netlist,
    plan: GatePlan,
    values: Vec<Logic>,
    scratch: Vec<Logic>,
    /// Constant nets and their levels, preloaded once; used to undo fault
    /// coercion left behind by [`eval_with_overlay`](Self::eval_with_overlay).
    consts: Vec<(u32, Logic)>,
    consts_dirty: bool,
}

impl<'a> FuncSim<'a> {
    /// Creates a simulator for `netlist`.
    ///
    /// The `topology` argument exists to prove the caller validated the
    /// netlist; the functional sweep itself uses builder order. Gate input
    /// indices are flattened into a [`GatePlan`] here, once, so the
    /// per-pattern sweep does no `Gate`/`NetId` indirection.
    pub fn new(netlist: &'a Netlist, _topology: &Topology) -> Self {
        let mut values = vec![Logic::X; netlist.net_count()];
        let mut consts = Vec::new();
        for (idx, info) in netlist.nets.iter().enumerate() {
            if let Some(crate::netlist::Driver::Const(v)) = info.driver {
                values[idx] = v;
                consts.push((idx as u32, v));
            }
        }
        let plan = GatePlan::new(netlist);
        let scratch = Vec::with_capacity(plan.max_arity().max(1));
        FuncSim {
            netlist,
            plan,
            values,
            scratch,
            consts,
            consts_dirty: false,
        }
    }

    /// Evaluates the netlist for one input assignment.
    ///
    /// `inputs[i]` is applied to `netlist.inputs()[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `inputs` does not match the
    /// primary input count.
    pub fn eval(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.input_count(),
                got: inputs.len(),
            });
        }
        if self.consts_dirty {
            for &(idx, v) in &self.consts {
                self.values[idx as usize] = v;
            }
            self.consts_dirty = false;
        }
        for (&net, &v) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = v;
        }
        for g in 0..self.plan.gate_count() {
            self.scratch.clear();
            self.scratch.extend(
                self.plan
                    .inputs_of(g)
                    .iter()
                    .map(|&i| self.values[i as usize]),
            );
            self.values[self.plan.output(g)] = self.plan.kind(g).eval(&self.scratch);
        }
        Ok(())
    }

    /// Evaluates the netlist for one input assignment with a
    /// [`FaultOverlay`] coercing net values as they settle.
    ///
    /// Every net — constant, primary input, or gate output — is passed
    /// through the overlay's scalar (lane-0) view immediately after its
    /// driver resolves, so downstream gates observe the faulted level. An
    /// empty overlay yields bit-identical results to
    /// [`eval`](Self::eval), which remains the fault-free fast path.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `inputs` does not match
    /// the primary input count.
    pub fn eval_with_overlay(
        &mut self,
        inputs: &[Logic],
        overlay: &crate::FaultOverlay,
    ) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.input_count(),
                got: inputs.len(),
            });
        }
        // Constants are preloaded in `new`; re-coerce the faulted ones and
        // let the next plain `eval` restore them.
        for &(idx, v) in &self.consts {
            self.values[idx as usize] = overlay.apply_scalar(idx as usize, v);
        }
        self.consts_dirty = !overlay.is_empty();
        for (&net, &v) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = overlay.apply_scalar(net.index(), v);
        }
        for g in 0..self.plan.gate_count() {
            self.scratch.clear();
            self.scratch.extend(
                self.plan
                    .inputs_of(g)
                    .iter()
                    .map(|&i| self.values[i as usize]),
            );
            let out = self.plan.output(g);
            self.values[out] = overlay.apply_scalar(out, self.plan.kind(g).eval(&self.scratch));
        }
        Ok(())
    }

    /// The settled value of `net` after the most recent [`eval`](Self::eval).
    #[inline]
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// All settled net values, indexable by [`NetId::index`].
    #[inline]
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// The settled primary output values in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Writes the settled primary output values into `out` (declaration
    /// order) without allocating — the per-pattern companion of
    /// [`output_values`](Self::output_values) for profiling loops.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `out.len()` is not the
    /// primary output count.
    pub fn write_outputs(&self, out: &mut [Logic]) -> Result<(), NetlistError> {
        if out.len() != self.netlist.output_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.output_count(),
                got: out.len(),
            });
        }
        for (slot, &o) in out.iter_mut().zip(self.netlist.outputs()) {
            *slot = self.values[o.index()];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn evaluates_truth_table() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.eval(&[Logic::from(a), Logic::from(b)]).unwrap();
            assert_eq!(sim.output_values(), vec![Logic::from(a ^ b)]);
        }
    }

    #[test]
    fn width_mismatch_detected() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        let err = sim.eval(&[Logic::One]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::WidthMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn constants_preloaded() {
        let mut n = Netlist::new();
        let z = n.const_zero();
        let o = n.const_one();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::And, &[o, a]).unwrap();
        let w = n.add_gate(GateKind::Or, &[z, a]).unwrap();
        n.mark_output(y, "y");
        n.mark_output(w, "w");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(sim.value(w), Logic::One);
    }

    #[test]
    fn disabled_tbuf_floats_but_mux_masks() {
        let mut n = Netlist::new();
        let d = n.add_input("d");
        let en = n.add_input("en");
        let bypass = n.add_input("bypass");
        let gated = n.add_gate(GateKind::Tbuf, &[d, en]).unwrap();
        // mux: en selects between the bypass value and the gated value.
        let y = n.add_gate(GateKind::Mux2, &[bypass, gated, en]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);

        // Disabled: gated floats, mux picks bypass — output defined.
        sim.eval(&[Logic::One, Logic::Zero, Logic::Zero]).unwrap();
        assert_eq!(sim.value(gated), Logic::Z);
        assert_eq!(sim.value(y), Logic::Zero);

        // Enabled: gated drives, mux picks it.
        sim.eval(&[Logic::One, Logic::One, Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn write_outputs_matches_output_values() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One, Logic::Zero]).unwrap();
        let mut buf = [Logic::X; 1];
        sim.write_outputs(&mut buf).unwrap();
        assert_eq!(buf.to_vec(), sim.output_values());

        let mut wrong = [Logic::X; 3];
        assert_eq!(
            sim.write_outputs(&mut wrong).unwrap_err(),
            NetlistError::WidthMismatch {
                expected: 1,
                got: 3
            }
        );
    }

    #[test]
    fn overlay_coerces_inputs_gates_and_consts() {
        use crate::{FaultKind, FaultOverlay};
        let mut n = Netlist::new();
        let one = n.const_one();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::And, &[a, one]).unwrap();
        let y = n.add_gate(GateKind::Or, &[x, b]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);

        // Stuck-at-0 on the constant-one net kills the AND.
        let mut o = FaultOverlay::new(&n);
        o.add(one, FaultKind::StuckAt0, 1).unwrap();
        sim.eval_with_overlay(&[Logic::One, Logic::Zero], &o)
            .unwrap();
        assert_eq!(sim.value(x), Logic::Zero);
        assert_eq!(sim.value(y), Logic::Zero);

        // A plain eval afterwards must see the unfaulted constant again.
        sim.eval(&[Logic::One, Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);

        // Flip on a gate output propagates downstream.
        let mut o = FaultOverlay::new(&n);
        o.add(x, FaultKind::Flip, 1).unwrap();
        sim.eval_with_overlay(&[Logic::One, Logic::Zero], &o)
            .unwrap();
        assert_eq!(sim.value(x), Logic::Zero);
        assert_eq!(sim.value(y), Logic::Zero);

        // Stuck-at-1 on an input.
        let mut o = FaultOverlay::new(&n);
        o.add(b, FaultKind::StuckAt1, 1).unwrap();
        sim.eval_with_overlay(&[Logic::Zero, Logic::Zero], &o)
            .unwrap();
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn empty_overlay_matches_plain_eval() {
        use crate::FaultOverlay;
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut plain = FuncSim::new(&n, &t);
        let mut faulted = FuncSim::new(&n, &t);
        let o = FaultOverlay::new(&n);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let pattern = [Logic::from(a), Logic::from(b)];
            plain.eval(&pattern).unwrap();
            faulted.eval_with_overlay(&pattern, &o).unwrap();
            assert_eq!(plain.values(), faulted.values());
        }
    }

    #[test]
    fn repeated_eval_reuses_state_safely() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One, Logic::One]).unwrap();
        sim.eval(&[Logic::Zero, Logic::One]).unwrap();
        assert_eq!(sim.output_values(), vec![Logic::One]);
    }
}
