//! Zero-delay functional simulator.

use agemul_logic::Logic;

use crate::{NetId, Netlist, NetlistError, Topology};

/// A zero-delay functional simulator: one topological sweep per pattern.
///
/// `FuncSim` computes the settled value of every net for a given primary
/// input assignment. It is the reference model for correctness tests (the
/// multipliers are checked against integer multiplication through it) and
/// the workhorse for signal-probability collection, where tens of thousands
/// of patterns must be evaluated cheaply.
///
/// Tri-state buffers are memoryless here: a disabled `TBUF` output reads as
/// [`Logic::Z`]. In the bypassing multipliers every such floating net is
/// masked downstream by a mux with a known select or an AND with a
/// controlling zero, so primary outputs are always defined — a property the
/// test suites assert heavily.
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{FuncSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::Xor, &[a, b])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut sim = FuncSim::new(&n, &topo);
/// sim.eval(&[Logic::One, Logic::Zero])?;
/// assert_eq!(sim.value(y), Logic::One);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct FuncSim<'a> {
    netlist: &'a Netlist,
    values: Vec<Logic>,
    scratch: Vec<Logic>,
}

impl<'a> FuncSim<'a> {
    /// Creates a simulator for `netlist`.
    ///
    /// The `topology` argument exists to prove the caller validated the
    /// netlist; the functional sweep itself uses builder order.
    pub fn new(netlist: &'a Netlist, _topology: &Topology) -> Self {
        let mut values = vec![Logic::X; netlist.net_count()];
        for (idx, info) in netlist.nets.iter().enumerate() {
            if let Some(crate::netlist::Driver::Const(v)) = info.driver {
                values[idx] = v;
            }
        }
        FuncSim {
            netlist,
            values,
            scratch: Vec::with_capacity(8),
        }
    }

    /// Evaluates the netlist for one input assignment.
    ///
    /// `inputs[i]` is applied to `netlist.inputs()[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `inputs` does not match the
    /// primary input count.
    pub fn eval(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.input_count(),
                got: inputs.len(),
            });
        }
        for (&net, &v) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = v;
        }
        for gate in self.netlist.gates() {
            self.scratch.clear();
            self.scratch
                .extend(gate.inputs().iter().map(|i| self.values[i.index()]));
            self.values[gate.output().index()] = gate.kind().eval(&self.scratch);
        }
        Ok(())
    }

    /// The settled value of `net` after the most recent [`eval`](Self::eval).
    #[inline]
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// All settled net values, indexable by [`NetId::index`].
    #[inline]
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// The settled primary output values in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn evaluates_truth_table() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.eval(&[Logic::from(a), Logic::from(b)]).unwrap();
            assert_eq!(sim.output_values(), vec![Logic::from(a ^ b)]);
        }
    }

    #[test]
    fn width_mismatch_detected() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        let err = sim.eval(&[Logic::One]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::WidthMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn constants_preloaded() {
        let mut n = Netlist::new();
        let z = n.const_zero();
        let o = n.const_one();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::And, &[o, a]).unwrap();
        let w = n.add_gate(GateKind::Or, &[z, a]).unwrap();
        n.mark_output(y, "y");
        n.mark_output(w, "w");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(sim.value(w), Logic::One);
    }

    #[test]
    fn disabled_tbuf_floats_but_mux_masks() {
        let mut n = Netlist::new();
        let d = n.add_input("d");
        let en = n.add_input("en");
        let bypass = n.add_input("bypass");
        let gated = n.add_gate(GateKind::Tbuf, &[d, en]).unwrap();
        // mux: en selects between the bypass value and the gated value.
        let y = n.add_gate(GateKind::Mux2, &[bypass, gated, en]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);

        // Disabled: gated floats, mux picks bypass — output defined.
        sim.eval(&[Logic::One, Logic::Zero, Logic::Zero]).unwrap();
        assert_eq!(sim.value(gated), Logic::Z);
        assert_eq!(sim.value(y), Logic::Zero);

        // Enabled: gated drives, mux picks it.
        sim.eval(&[Logic::One, Logic::One, Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn repeated_eval_reuses_state_safely() {
        let n = xor_netlist();
        let t = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &t);
        sim.eval(&[Logic::One, Logic::One]).unwrap();
        sim.eval(&[Logic::Zero, Logic::One]).unwrap();
        assert_eq!(sim.output_values(), vec![Logic::One]);
    }
}
