//! Lane-masked fault-injection overlay for the simulators.
//!
//! A [`FaultOverlay`] is a sparse map from nets to per-lane coercion masks.
//! It is applied *after* a net's driver settles its value, coercing the
//! observed level without modifying the netlist itself: stuck-at faults pin
//! a net, flip faults invert it. Because the masks are per-lane, a single
//! [`BatchSim`](crate::BatchSim) sweep can carry up to 64 *different*
//! faulty variants of the circuit — lane `i` sees only the faults whose
//! mask includes bit `i`.
//!
//! The overlay deliberately lives outside the simulators' fault-free hot
//! paths: [`FuncSim::eval_with_overlay`](crate::FuncSim::eval_with_overlay)
//! and [`BatchSim::eval_batch_with_overlay`](crate::BatchSim::eval_batch_with_overlay)
//! are separate entry points, and [`EventSim`](crate::EventSim) only
//! consults an overlay when one has been attached.

use agemul_logic::{Logic, LogicBlock, LogicWord};

use crate::{NetId, Netlist, NetlistError};

/// Sentinel in the dense per-net slot table: net carries no fault.
const SLOT_NONE: u32 = u32::MAX;

/// The net-level coercion a fault applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The net reads as a constant `0` regardless of its driver.
    StuckAt0,
    /// The net reads as a constant `1` regardless of its driver.
    StuckAt1,
    /// Defined levels on the net are inverted (`X`/`Z` stay unknown) —
    /// the coercion behind transient single-cycle bit-flips.
    Flip,
}

/// Per-net lane masks, kept pairwise disjoint by [`FaultOverlay::add`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct LaneMasks {
    force0: u64,
    force1: u64,
    flip: u64,
}

/// A sparse set of lane-masked net faults.
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{FaultKind, FaultOverlay, FuncSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::And, &[a, b])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut overlay = FaultOverlay::new(&n);
/// overlay.add(a, FaultKind::StuckAt0, 1)?; // lane 0 only
///
/// let mut sim = FuncSim::new(&n, &topo);
/// sim.eval_with_overlay(&[Logic::One, Logic::One], &overlay)?;
/// assert_eq!(sim.value(y), Logic::Zero); // a is stuck at 0
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultOverlay {
    /// Dense per-net index into `masks`; `SLOT_NONE` means unfaulted.
    slot: Vec<u32>,
    masks: Vec<LaneMasks>,
    /// Faulted nets in first-touch order, for reporting.
    nets: Vec<NetId>,
}

impl FaultOverlay {
    /// Creates an empty overlay sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_net_count(netlist.net_count())
    }

    /// Creates an empty overlay for a netlist with `net_count` nets.
    pub fn with_net_count(net_count: usize) -> Self {
        FaultOverlay {
            slot: vec![SLOT_NONE; net_count],
            masks: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Adds a fault on `net` affecting the lanes in `lanes` (bit `i` set →
    /// lane `i` sees the fault). Scalar simulators observe lane 0.
    ///
    /// Later calls win on overlapping lanes, so the three coercion masks of
    /// a net stay pairwise disjoint and their application order is
    /// immaterial.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `net` is out of range for
    /// the netlist this overlay was sized for.
    pub fn add(&mut self, net: NetId, kind: FaultKind, lanes: u64) -> Result<(), NetlistError> {
        let idx = net.index();
        if idx >= self.slot.len() {
            return Err(NetlistError::UnknownNet { net });
        }
        let s = if self.slot[idx] == SLOT_NONE {
            let s = u32::try_from(self.masks.len()).expect("fewer than 2^32 faulted nets");
            self.slot[idx] = s;
            self.masks.push(LaneMasks::default());
            self.nets.push(net);
            s
        } else {
            self.slot[idx]
        };
        let m = &mut self.masks[s as usize];
        m.force0 &= !lanes;
        m.force1 &= !lanes;
        m.flip &= !lanes;
        match kind {
            FaultKind::StuckAt0 => m.force0 |= lanes,
            FaultKind::StuckAt1 => m.force1 |= lanes,
            FaultKind::Flip => m.flip |= lanes,
        }
        Ok(())
    }

    /// `true` if no fault has been added.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// The faulted nets, in first-touch order.
    pub fn faulted_nets(&self) -> &[NetId] {
        &self.nets
    }

    /// `true` if `net` carries at least one fault.
    #[inline]
    pub fn affects(&self, net: NetId) -> bool {
        self.slot.get(net.index()).is_some_and(|&s| s != SLOT_NONE)
    }

    /// Applies the net's coercions to a lane word. Identity for unfaulted
    /// nets and for lanes outside every mask.
    #[inline]
    pub fn apply_word(&self, net_index: usize, w: LogicWord) -> LogicWord {
        let s = self.slot[net_index];
        if s == SLOT_NONE {
            return w;
        }
        let m = self.masks[s as usize];
        w.flip(m.flip).force_one(m.force1).force_zero(m.force0)
    }

    /// Applies the net's coercions to a `64 × W`-lane block, replicating
    /// the 64-bit lane masks per chunk: lane `i` of the block sees the
    /// faults whose mask includes bit `i % 64`. Chunk-for-chunk identical
    /// to [`apply_word`](Self::apply_word), so a wide sweep observes
    /// exactly the faulty variants the 64-lane kernel would.
    #[inline]
    pub fn apply_block<const W: usize>(&self, net_index: usize, b: LogicBlock<W>) -> LogicBlock<W> {
        let s = self.slot[net_index];
        if s == SLOT_NONE {
            return b;
        }
        let m = self.masks[s as usize];
        b.flip(m.flip).force_one(m.force1).force_zero(m.force0)
    }

    /// Applies the net's lane-0 coercion to a scalar level — the view the
    /// scalar simulators ([`FuncSim`](crate::FuncSim),
    /// [`EventSim`](crate::EventSim)) have of the overlay.
    #[inline]
    pub fn apply_scalar(&self, net_index: usize, v: Logic) -> Logic {
        let s = self.slot[net_index];
        if s == SLOT_NONE {
            return v;
        }
        let m = self.masks[s as usize];
        if m.force0 & 1 != 0 {
            Logic::Zero
        } else if m.force1 & 1 != 0 {
            Logic::One
        } else if m.flip & 1 != 0 {
            match v.read() {
                Logic::Zero => Logic::One,
                Logic::One => Logic::Zero,
                other => other, // X stays X
            }
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut n = Netlist::new();
        n.add_input("a");
        n.add_input("b");
        n
    }

    #[test]
    fn rejects_out_of_range_net() {
        let n = tiny();
        let mut o = FaultOverlay::new(&n);
        let bogus = NetId::from_index(99);
        assert_eq!(
            o.add(bogus, FaultKind::StuckAt0, !0).unwrap_err(),
            NetlistError::UnknownNet { net: bogus }
        );
    }

    #[test]
    fn empty_overlay_is_identity() {
        let n = tiny();
        let o = FaultOverlay::new(&n);
        assert!(o.is_empty());
        for level in Logic::ALL {
            assert_eq!(o.apply_scalar(0, level), level);
        }
        let w = LogicWord::from_bits(0xDEAD_BEEF);
        assert_eq!(o.apply_word(1, w), w);
    }

    #[test]
    fn later_adds_win_on_overlapping_lanes() {
        let n = tiny();
        let a = n.inputs()[0];
        let mut o = FaultOverlay::new(&n);
        o.add(a, FaultKind::StuckAt0, 0b11).unwrap();
        o.add(a, FaultKind::StuckAt1, 0b10).unwrap();
        let w = o.apply_word(a.index(), LogicWord::ALL_X);
        assert_eq!(w.get(0), Logic::Zero);
        assert_eq!(w.get(1), Logic::One);
        assert_eq!(w.get(2), Logic::X);
        assert_eq!(o.faulted_nets(), &[a]);
    }

    #[test]
    fn scalar_view_is_lane_zero() {
        let n = tiny();
        let a = n.inputs()[0];
        let b = n.inputs()[1];
        let mut o = FaultOverlay::new(&n);
        o.add(a, FaultKind::Flip, 0b01).unwrap();
        o.add(b, FaultKind::StuckAt1, 0b10).unwrap(); // lane 1 only
        assert_eq!(o.apply_scalar(a.index(), Logic::One), Logic::Zero);
        assert_eq!(o.apply_scalar(a.index(), Logic::Zero), Logic::One);
        assert_eq!(o.apply_scalar(a.index(), Logic::X), Logic::X);
        assert_eq!(o.apply_scalar(a.index(), Logic::Z), Logic::X);
        // b's fault is on lane 1: scalar view unaffected.
        assert_eq!(o.apply_scalar(b.index(), Logic::Zero), Logic::Zero);
        assert!(o.affects(b));
    }

    /// `apply_word` agrees with per-lane `apply_scalar` on lane 0 and with
    /// the scalar coercion semantics on every lane.
    #[test]
    fn word_and_scalar_views_agree() {
        let n = tiny();
        let a = n.inputs()[0];
        for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1, FaultKind::Flip] {
            let mut o = FaultOverlay::new(&n);
            o.add(a, kind, 1).unwrap();
            for level in Logic::ALL {
                let w = o.apply_word(a.index(), LogicWord::splat(level));
                assert_eq!(
                    w.get(0),
                    o.apply_scalar(a.index(), level),
                    "{kind:?} on {level:?}"
                );
                // Lanes outside the mask are untouched (Z included).
                assert_eq!(w.get(1), level, "{kind:?} on {level:?}");
            }
        }
    }
}
