//! Value-change-dump (VCD) waveform export.

use std::io::Write;

use agemul_logic::Logic;

use crate::{NetId, Netlist, NetlistError, TraceEvent};

/// Writes a standard VCD file from a recorded simulation trace.
///
/// Only *named* nets (primary inputs, primary outputs, and any net the
/// builder named) get a variable declaration — internal anonymous nets are
/// omitted to keep waveforms readable. Events are grouped by timestamp in
/// the order recorded by the simulator.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] when writing to `out` fails; the variant
/// carries the rendered I/O error message.
///
/// # Example
///
/// ```
/// use agemul_logic::{DelayModel, GateKind, Logic};
/// use agemul_netlist::{write_vcd, DelayAssignment, EventSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let y = n.add_gate(GateKind::Not, &[a])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
/// let mut sim = EventSim::new(&n, &topo, DelayAssignment::uniform(&n, &DelayModel::nominal()));
/// sim.enable_tracing(1_000_000); // 1 ns between patterns
/// sim.settle(&[Logic::Zero])?;
/// sim.step(&[Logic::One])?;
///
/// let mut vcd = Vec::new();
/// write_vcd(&n, sim.trace(), &mut vcd)?;
/// let text = String::from_utf8(vcd).unwrap();
/// assert!(text.contains("$timescale 1 fs $end"));
/// assert!(text.contains("$var wire 1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_vcd(
    netlist: &Netlist,
    events: &[TraceEvent],
    mut out: impl Write,
) -> Result<(), NetlistError> {
    // Identifier codes: printable ASCII 33..=126, multi-character base-94.
    fn id_code(mut index: usize) -> String {
        let mut s = String::new();
        loop {
            s.push((33 + (index % 94)) as u8 as char);
            index /= 94;
            if index == 0 {
                break;
            }
            index -= 1;
        }
        s
    }

    fn level_char(v: Logic) -> char {
        match v {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::Z => 'z',
            Logic::X => 'x',
        }
    }

    // Collect named nets in id order.
    let mut vars: Vec<(NetId, String, String)> = Vec::new();
    for idx in 0..netlist.net_count() {
        let net = NetId::from_index(idx);
        if let Some(name) = netlist.net_name(net) {
            vars.push((net, name.to_string(), id_code(vars.len())));
        }
    }
    let mut code_of = vec![None::<usize>; netlist.net_count()];
    for (slot, (net, _, _)) in vars.iter().enumerate() {
        code_of[net.index()] = Some(slot);
    }

    writeln!(out, "$timescale 1 fs $end")?;
    writeln!(out, "$scope module agemul $end")?;
    for (_, name, code) in &vars {
        writeln!(out, "$var wire 1 {code} {name} $end")?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    writeln!(out, "$dumpvars")?;
    for (_, _, code) in &vars {
        writeln!(out, "x{code}")?;
    }
    writeln!(out, "$end")?;

    let mut current_time: Option<u64> = None;
    for ev in events {
        let Some(slot) = code_of[ev.net.index()] else {
            continue;
        };
        if current_time != Some(ev.time_fs) {
            writeln!(out, "#{}", ev.time_fs)?;
            current_time = Some(ev.time_fs);
        }
        writeln!(out, "{}{}", level_char(ev.value), vars[slot].2)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, GateKind};

    use crate::{DelayAssignment, EventSim};

    use super::*;

    fn traced_fixture() -> (Netlist, Vec<TraceEvent>) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(y, "y");
        let topo = n.topology().unwrap();
        let mut sim = EventSim::new(
            &n,
            &topo,
            DelayAssignment::uniform(&n, &DelayModel::nominal()),
        );
        sim.enable_tracing(500_000);
        sim.settle(&[Logic::Zero, Logic::Zero]).unwrap();
        sim.step(&[Logic::One, Logic::Zero]).unwrap();
        sim.step(&[Logic::One, Logic::One]).unwrap();
        let events = sim.trace().to_vec();
        (n, events)
    }

    #[test]
    fn header_and_vars_present() {
        let (n, events) = traced_fixture();
        let mut buf = Vec::new();
        write_vcd(&n, &events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("$dumpvars"));
    }

    #[test]
    fn timestamps_are_monotone() {
        let (n, events) = traced_fixture();
        let mut buf = Vec::new();
        write_vcd(&n, &events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let times: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn trace_spans_multiple_steps() {
        let (_, events) = traced_fixture();
        // The second step's events must start after the first step's gap.
        let max_first = events
            .iter()
            .map(|e| e.time_fs)
            .filter(|&t| t < 500_000)
            .count();
        let later = events.iter().filter(|e| e.time_fs >= 500_000).count();
        assert!(max_first > 0 && later > 0, "{events:?}");
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut n = Netlist::new();
        for i in 0..200 {
            let x = n.add_input(format!("in{i}"));
            n.mark_output(x, format!("o{i}"));
        }
        let mut buf = Vec::new();
        write_vcd(&n, &[], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let codes: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        assert_eq!(codes.len(), 200);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 200);
    }

    #[test]
    fn write_failure_surfaces_as_typed_io_error() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink rejected write"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (n, events) = traced_fixture();
        let err = write_vcd(&n, &events, FailingWriter).unwrap_err();
        match err {
            crate::NetlistError::Io { message } => {
                assert!(message.contains("sink rejected write"), "{message}");
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn unnamed_nets_are_omitted() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mid = n.add_gate(GateKind::Not, &[a]).unwrap(); // anonymous
        let y = n.add_gate(GateKind::Not, &[mid]).unwrap();
        n.mark_output(y, "y");
        let mut buf = Vec::new();
        write_vcd(&n, &[], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("$var")).count(), 2);
    }
}
