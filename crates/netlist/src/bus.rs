//! Multi-bit bundle helper for encoding and decoding integers.

use agemul_logic::Logic;

use crate::{NetId, NetlistError};

/// An ordered, little-endian bundle of nets representing a binary word.
///
/// Circuit generators return `Bus` handles for their operand and product
/// ports; tests and experiment harnesses use them to move integers in and
/// out of simulations.
///
/// Bit 0 is the least significant bit.
///
/// # Example
///
/// ```
/// use agemul_logic::Logic;
/// use agemul_netlist::{Bus, Netlist};
///
/// let mut n = Netlist::new();
/// let bits: Vec<_> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
/// let bus = Bus::new(bits);
///
/// let word = bus.encode(0b1010)?;
/// assert_eq!(word[1], Logic::One);
/// assert_eq!(bus.decode(&word), Some(0b1010));
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus {
    nets: Vec<NetId>,
}

impl Bus {
    /// Bundles `nets` into a bus; `nets[0]` is the LSB.
    pub fn new(nets: Vec<NetId>) -> Self {
        Bus { nets }
    }

    /// Bit width of the bus.
    #[inline]
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// The net carrying bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    #[inline]
    pub fn net(&self, i: usize) -> NetId {
        self.nets[i]
    }

    /// The underlying nets, LSB first.
    #[inline]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Encodes `value` as logic levels, LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `value` does not fit in
    /// the bus width.
    pub fn encode(&self, value: u128) -> Result<Vec<Logic>, NetlistError> {
        if self.width() < 128 && value >> self.width() != 0 {
            return Err(NetlistError::WidthMismatch {
                expected: self.width(),
                got: (128 - value.leading_zeros()) as usize,
            });
        }
        Ok((0..self.width())
            .map(|i| Logic::from((value >> i) & 1 == 1))
            .collect())
    }

    /// Decodes this bus from a full per-net value array (indexable by
    /// [`NetId::index`]), returning `None` if any bit is undefined.
    pub fn decode(&self, values: &[Logic]) -> Option<u128> {
        self.decode_with(|net| values.get(net.index()).copied().unwrap_or(Logic::X))
    }

    /// Decodes this bus by querying each bit's level through `lookup`,
    /// returning `None` if any bit is undefined.
    pub fn decode_with(&self, mut lookup: impl FnMut(NetId) -> Logic) -> Option<u128> {
        let mut out: u128 = 0;
        for (i, &net) in self.nets.iter().enumerate() {
            match lookup(net).to_bool() {
                Some(true) => out |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }
}

impl FromIterator<NetId> for Bus {
    fn from_iter<T: IntoIterator<Item = NetId>>(iter: T) -> Self {
        Bus::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::Netlist;

    use super::*;

    fn four_bit_bus(n: &mut Netlist) -> Bus {
        (0..4).map(|i| n.add_input(format!("b{i}"))).collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut n = Netlist::new();
        let bus = four_bit_bus(&mut n);
        for v in 0..16u128 {
            let word = bus.encode(v).unwrap();
            // Build a value array covering all nets.
            let mut values = vec![Logic::X; n.net_count()];
            for (i, &net) in bus.nets().iter().enumerate() {
                values[net.index()] = word[i];
            }
            assert_eq!(bus.decode(&values), Some(v));
        }
    }

    #[test]
    fn encode_rejects_overflow() {
        let mut n = Netlist::new();
        let bus = four_bit_bus(&mut n);
        assert!(bus.encode(16).is_err());
        assert!(bus.encode(15).is_ok());
    }

    #[test]
    fn decode_requires_defined_bits() {
        let mut n = Netlist::new();
        let bus = four_bit_bus(&mut n);
        let mut values = vec![Logic::Zero; n.net_count()];
        values[bus.net(2).index()] = Logic::X;
        assert_eq!(bus.decode(&values), None);
    }

    #[test]
    fn lsb_is_bit_zero() {
        let mut n = Netlist::new();
        let bus = four_bit_bus(&mut n);
        let word = bus.encode(1).unwrap();
        assert_eq!(word[0], Logic::One);
        assert_eq!(word[1], Logic::Zero);
    }
}
