//! Levelized timed simulation kernel.
//!
//! [`LevelSim`] computes the same femtosecond-exact two-vector timing as
//! [`EventSim`](crate::EventSim) without a priority queue: the netlist is
//! compiled once into a [`TimedPlan`](crate::plan::TimedPlan) (flat gate
//! arrays + per-gate integer-femtosecond delays + topological levels), and
//! each pattern is simulated as one ascending sweep over the levels that
//! actually contain *dirty* gates.
//!
//! # Why level order is exact
//!
//! In a combinational DAG every gate's output waveform for a step is a pure
//! function of its input nets' complete waveforms. Every gate driving one of
//! gate `g`'s inputs sits at a strictly lower level, so by the time the
//! sweep reaches `g` each input waveform is final and `g`'s output waveform
//! can be produced in one sequential merge that replays `EventSim`'s exact
//! rules:
//!
//! * **delta-cycle atomicity** — all input events at a timestamp are applied
//!   before the gate re-evaluates, and a pending output transition due at or
//!   before that timestamp commits first;
//! * **inertial filtering** — at most one pending output transition; a
//!   re-evaluation that disagrees retracts it, and a pulse that collapses
//!   back to the committed value schedules nothing;
//! * **tri-state hold** — a disabled `TBUF` evaluates to "no event", leaving
//!   both the committed value and any pending transition untouched;
//! * **fault coercion** — every candidate output value passes through the
//!   attached [`FaultOverlay`](crate::FaultOverlay)'s scalar coercion before
//!   scheduling, exactly where `EventSim` applies it.
//!
//! One `EventSim` behaviour is load-bearing for the proof: with strictly
//! positive gate delays every timestamp runs exactly one delta cycle
//! (commits at `t` only produce events later than `t`), so a net's step
//! waveform has strictly increasing times and the per-gate merge order is
//! well defined. [`LevelSim::new`] therefore rejects zero-delay assignments,
//! which the delay models never produce (`EventSim` tolerates them but the
//! two kernels could then disagree on glitch counts).
//!
//! # Incremental cone re-simulation
//!
//! Between consecutive patterns only the fan-out cones of *changed* input
//! bits are touched: changed inputs seed per-level dirty queues
//! (epoch-deduplicated), gates outside every cone are never visited, and
//! their nets keep their settled values. On bypass multipliers, where a
//! typical workload pattern flips a fraction of the operand bits, this skips
//! most of the array per pattern — the second lever (besides removing heap
//! pops) behind the profiling speedup.
//!
//! Waveforms live in one flat arena reset per step; per-net epoch stamps
//! make "no events this step" a constant-time check instead of a clear.

use agemul_logic::{GateKind, Logic};

use crate::event_sim::FS_PER_NS;
use crate::plan::TimedPlan;
use crate::{DelayAssignment, NetId, Netlist, NetlistError, PatternTiming, Topology};

/// Levelized timing simulator: femtosecond-identical to
/// [`EventSim`](crate::EventSim), built for profiling throughput.
///
/// The public surface mirrors `EventSim` (`settle` / `step` /
/// [`PatternTiming`] / toggle counters / fault overlays) so the profiling
/// call sites can switch kernels without changing semantics; waveform
/// tracing stays `EventSim`-only. See the module docs for the exactness
/// argument.
///
/// # Example
///
/// ```
/// use agemul_logic::{DelayModel, GateKind, Logic};
/// use agemul_netlist::{DelayAssignment, EventSim, LevelSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let x = n.add_gate(GateKind::Not, &[a])?;
/// let y = n.add_gate(GateKind::Not, &[x])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
/// let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
///
/// let mut level = LevelSim::new(&n, &topo, delays.clone());
/// let mut event = EventSim::new(&n, &topo, delays);
/// level.settle(&[Logic::Zero])?;
/// event.settle(&[Logic::Zero])?;
/// assert_eq!(level.step(&[Logic::One])?, event.step(&[Logic::One])?);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct LevelSim<'a> {
    netlist: &'a Netlist,
    topology: &'a Topology,
    plan: TimedPlan,
    /// Settled value of every net (previous-vector state between steps).
    values: Vec<Logic>,
    /// The re-initialized settled state (constants + one functional sweep,
    /// through the overlay if attached), captured by [`reinit_values`]
    /// (Self::reinit_values). [`retime`](Self::retime) restores it with one
    /// memcpy instead of re-running the functional sweep, so a retimed
    /// kernel starts from byte-for-byte the state a freshly constructed
    /// one would — including tri-state hold history, which makes settled
    /// values history-dependent wherever a disabled `TBUF` sits.
    init_values: Vec<Logic>,
    /// Flat per-step waveform storage: `arena[m.start..][..m.len]` for net
    /// `n`'s [`WaveMeta`] `m`, valid iff `m.epoch == epoch`. Each event is
    /// packed as `time_fs << 2 | logic` ([`pack`]/[`unpack`]), halving the
    /// hot loop's memory traffic vs a `(u64, Logic)` pair.
    arena: Vec<u64>,
    /// Per-net arena bookkeeping, one 16-byte record per net so a waveform
    /// lookup touches a single cache line.
    waves: Vec<WaveMeta>,
    /// Nets that received events this step (commit list).
    dirty_nets: Vec<u32>,
    /// Per-gate dirty stamp (dedup for `queues`).
    gate_epoch: Vec<u64>,
    epoch: u64,
    /// Dirty gates per topological level, drained in ascending order.
    queues: Vec<Vec<u32>>,
    toggles_per_gate: Vec<u64>,
    /// Scratch taken out of `self` during a step (borrow split).
    out_scratch: Vec<u64>,
    overlay: Option<crate::FaultOverlay>,
    /// Per-kind truth tables over packed [`Logic`] discriminants (2 bits
    /// per input), tabulated once from [`GateKind::eval`] — the single
    /// source of combinational truth — so the merge loop evaluates a gate
    /// with one load instead of an arity fold.
    lut1: [[Logic; 4]; GateKind::ALL.len()],
    lut2: [[Logic; 16]; GateKind::ALL.len()],
    lut3: [[Logic; 64]; GateKind::ALL.len()],
    /// Cooperative cancellation (None = never cancelled): polled once per
    /// dirty level during a step.
    cancel: Option<crate::CancelToken>,
}

/// All four [`Logic`] levels, indexed by enum discriminant.
const LEVELS: [Logic; 4] = [Logic::Zero, Logic::One, Logic::Z, Logic::X];

/// Per-net waveform bookkeeping: net `n`'s committed events this step are
/// `arena[start..][..len]`, valid iff `epoch` matches the simulator's.
#[derive(Clone, Copy, Debug, Default)]
struct WaveMeta {
    epoch: u64,
    start: u32,
    len: u32,
}

/// Packs an event into one arena word: femtosecond time in the upper 62
/// bits, [`Logic`] discriminant in the lower 2.
#[inline(always)]
fn pack(t: u64, v: Logic) -> u64 {
    (t << 2) | v as u64
}

/// Inverse of [`pack`].
#[inline(always)]
fn unpack(e: u64) -> (u64, Logic) {
    (e >> 2, LEVELS[(e & 3) as usize])
}

/// Asserts the two delay invariants every `LevelSim` schedule must satisfy:
/// strictly positive per-gate delays (exactness; see the module docs) and
/// enough packed-timestamp headroom for the deepest path. Shared by
/// [`LevelSim::new`] and [`LevelSim::retime`] so a retimed kernel can never
/// hold delays a freshly built one would reject.
fn assert_delay_contract(max_level: u32, delays_fs: impl Iterator<Item = u64>) {
    let mut max_delay_fs = 0u64;
    for (g, fs) in delays_fs.enumerate() {
        assert!(
            fs > 0,
            "LevelSim requires strictly positive gate delays; gate {g} has 0 fs"
        );
        max_delay_fs = max_delay_fs.max(fs);
    }
    // Packed-event capacity: the latest possible event time in one step
    // is bounded by depth × max gate delay (every waveform time is some
    // path's delay sum). 62 bits of femtoseconds ≈ 77 simulated
    // minutes — unreachable for any physical delay model.
    assert!(
        (u64::from(max_level) + 1).saturating_mul(max_delay_fs) < (1 << 62),
        "gate delays too large for packed femtosecond timestamps"
    );
}

impl<'a> LevelSim<'a> {
    /// Compiles the netlist + `delays` into a levelized schedule and settles
    /// the initial (constants-only) state, like
    /// [`EventSim::new`](crate::EventSim::new).
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover exactly the netlist's gates, or if
    /// any gate delay rounds to zero femtoseconds (the exactness contract
    /// needs strictly positive delays; see the module docs).
    pub fn new(netlist: &'a Netlist, topology: &'a Topology, delays: DelayAssignment) -> Self {
        let plan = TimedPlan::new(netlist, topology, &delays);
        assert_delay_contract(
            plan.max_level(),
            (0..plan.gate_count()).map(|g| plan.delay_fs(g)),
        );
        let queues = vec![Vec::new(); plan.max_level() as usize + 1];

        let mut lut1 = [[Logic::X; 4]; GateKind::ALL.len()];
        let mut lut2 = [[Logic::X; 16]; GateKind::ALL.len()];
        let mut lut3 = [[Logic::X; 64]; GateKind::ALL.len()];
        for (ki, kind) in GateKind::ALL.into_iter().enumerate() {
            if kind.accepts_arity(1) {
                for a in 0..4 {
                    lut1[ki][a] = kind.eval(&[LEVELS[a]]);
                }
            }
            if kind.accepts_arity(2) {
                for a in 0..4 {
                    for b in 0..4 {
                        lut2[ki][a << 2 | b] = kind.eval(&[LEVELS[a], LEVELS[b]]);
                    }
                }
            }
            if kind.accepts_arity(3) {
                for a in 0..4 {
                    for b in 0..4 {
                        for c in 0..4 {
                            lut3[ki][a << 4 | b << 2 | c] =
                                kind.eval(&[LEVELS[a], LEVELS[b], LEVELS[c]]);
                        }
                    }
                }
            }
        }

        let mut sim = LevelSim {
            netlist,
            topology,
            plan,
            values: vec![Logic::X; netlist.net_count()],
            init_values: Vec::new(),
            arena: Vec::new(),
            waves: vec![WaveMeta::default(); netlist.net_count()],
            dirty_nets: Vec::new(),
            gate_epoch: vec![0; netlist.gate_count()],
            epoch: 0,
            queues,
            toggles_per_gate: vec![0; netlist.gate_count()],
            out_scratch: Vec::new(),
            overlay: None,
            lut1,
            lut2,
            lut3,
            cancel: None,
        };
        sim.reinit_values();
        sim
    }

    /// Swaps in a new per-gate delay assignment **without rebuilding** the
    /// compiled schedule: the levelized gate arrays, CSR fanout, truth-table
    /// LUTs, waveform arena, and dirty-queue scratch are all
    /// topology-invariant and are reused as-is. Only the delay-dependent
    /// slice of the [`TimedPlan`](crate::plan::TimedPlan) is rewritten, in
    /// place, with zero allocation — this is what makes per-corner Monte
    /// Carlo profiling an order of magnitude cheaper than constructing a
    /// fresh kernel per corner.
    ///
    /// After the swap the kernel is in byte-for-byte the state a freshly
    /// constructed `LevelSim::new(netlist, topology, delays)` (plus the
    /// same overlay, if one is attached) would be in: the settled values
    /// are restored from the cached re-initialization snapshot with one
    /// memcpy — tri-state holds make settled values history-dependent, so
    /// carrying the previous corner's state over would not be equivalent —
    /// and the cumulative toggle counters are cleared. A retimed kernel
    /// settled on the same vector as a fresh kernel therefore produces
    /// femtosecond-identical [`step`](Self::step) results (property-pinned
    /// in the `retime_equiv` suite). Any attached
    /// [`FaultOverlay`](crate::FaultOverlay) and cancel token survive.
    ///
    /// # Panics
    ///
    /// Panics under exactly [`new`](Self::new)'s delay contract: `delays`
    /// must cover the netlist's gates, every delay must be strictly
    /// positive, and the packed-timestamp capacity bound must hold. The
    /// checks run *before* the swap, so a rejected assignment leaves the
    /// kernel's previous delays intact.
    pub fn retime(&mut self, delays: &DelayAssignment) {
        assert_eq!(
            delays.len(),
            self.netlist.gate_count(),
            "delay assignment covers {} gates, netlist has {}",
            delays.len(),
            self.netlist.gate_count()
        );
        assert_delay_contract(
            self.plan.max_level(),
            (0..delays.len()).map(|g| delays.delay_fs(crate::GateId::from_index(g))),
        );
        self.plan.set_delays(delays);
        self.reset();
    }

    /// Restores the kernel to its post-construction state under the
    /// *current* delays: settled values come back from the cached
    /// re-initialization snapshot with one memcpy, cumulative toggle
    /// counters clear, and stale waveforms are invalidated. Tri-state
    /// holds make settled values history-dependent, so this is the only
    /// way to make a reused kernel behave exactly like a fresh one — it is
    /// the state-restore half of [`retime`](Self::retime), exposed for
    /// callers that replay workloads without changing delays. Any attached
    /// [`FaultOverlay`](crate::FaultOverlay) and cancel token survive.
    pub fn reset(&mut self) {
        self.values.copy_from_slice(&self.init_values);
        self.toggles_per_gate.iter_mut().for_each(|c| *c = 0);
        // Stale waveforms must not leak into the next step's merges.
        self.epoch += 1;
    }

    /// Installs a [`CancelToken`](crate::CancelToken): subsequent
    /// [`step`](Self::step)/[`settle`](Self::settle) calls poll it once per
    /// dirty level and abort with [`NetlistError::Cancelled`] once it fires.
    /// Pass `None` to detach. After a cancelled step the settled values are
    /// unspecified; [`settle`](Self::settle) before measuring again.
    pub fn set_cancel_token(&mut self, token: Option<crate::CancelToken>) {
        self.cancel = token;
    }

    /// Attaches a [`FaultOverlay`](crate::FaultOverlay); every net value is
    /// passed through its scalar (lane-0) coercion from now on, exactly as
    /// in [`EventSim::set_fault_overlay`](crate::EventSim::set_fault_overlay).
    /// The simulator state is re-initialized; call [`settle`](Self::settle)
    /// before measuring transitions.
    pub fn set_fault_overlay(&mut self, overlay: crate::FaultOverlay) {
        self.overlay = Some(overlay);
        self.reinit_values();
    }

    /// Removes the fault overlay and re-initializes the simulator state.
    pub fn clear_fault_overlay(&mut self) {
        self.overlay = None;
        self.reinit_values();
    }

    /// Re-derives the initial settled values (constants + one functional
    /// sweep, both through the overlay's coercion if one is attached) —
    /// byte-for-byte the `EventSim` re-initialization.
    fn reinit_values(&mut self) {
        self.values.fill(Logic::X);
        for (idx, info) in self.netlist.nets.iter().enumerate() {
            if let Some(crate::netlist::Driver::Const(v)) = info.driver {
                self.values[idx] = v;
            }
        }
        if let Some(o) = &self.overlay {
            for (idx, v) in self.values.iter_mut().enumerate() {
                *v = o.apply_scalar(idx, *v);
            }
        }
        let netlist = self.netlist;
        let mut scratch = Vec::with_capacity(self.plan.max_arity());
        for gate in netlist.gates() {
            scratch.clear();
            scratch.extend(gate.inputs().iter().map(|i| self.values[i.index()]));
            let out = gate.output().index();
            let v = gate.kind().eval(&scratch);
            self.values[out] = match &self.overlay {
                Some(o) => o.apply_scalar(out, v),
                None => v,
            };
        }
        self.init_values.clear();
        self.init_values.extend_from_slice(&self.values);
    }

    /// Applies the overlay's scalar coercion to a candidate value of `net`.
    #[inline]
    fn coerce(&self, net: usize, v: Logic) -> Logic {
        match &self.overlay {
            Some(o) => o.apply_scalar(net, v),
            None => v,
        }
    }

    /// Applies `inputs` and runs to quiescence, discarding timing and
    /// clearing the per-gate toggle counters (the "previous vector" setup).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input count.
    pub fn settle(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        self.step(inputs)?;
        self.reset_toggle_counts();
        Ok(())
    }

    /// Applies `inputs` on top of the current state and reports the
    /// transition's timing, bit-identical to
    /// [`EventSim::step`](crate::EventSim::step).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Result<PatternTiming, NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.input_count(),
                got: inputs.len(),
            });
        }
        self.epoch += 1;
        self.arena.clear();
        self.dirty_nets.clear();

        let mut timing = PatternTiming::default();
        let mut last_out_fs: u64 = 0;

        // Seed: changed inputs become single-event waveforms at t = 0 and
        // mark their fanout cones dirty. Unchanged inputs touch nothing —
        // this is where incremental re-simulation starts.
        for (&net, &v) in self.netlist.inputs().iter().zip(inputs) {
            let idx = net.index();
            let v = self.coerce(idx, v);
            if v == self.values[idx] {
                continue;
            }
            self.waves[idx] = WaveMeta {
                epoch: self.epoch,
                start: self.arena.len() as u32,
                len: 1,
            };
            self.arena.push(pack(0, v));
            self.dirty_nets.push(idx as u32);
            timing.events += 1;
            if self.topology.is_output(net) {
                timing.output_toggles += 1;
            }
            self.mark_fanout(idx);
        }

        let mut out_buf = std::mem::take(&mut self.out_scratch);

        for lvl in 1..=self.plan.max_level() as usize {
            let mut queue = std::mem::take(&mut self.queues[lvl]);
            if queue.is_empty() {
                self.queues[lvl] = queue;
                continue;
            }

            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    // Leave the simulator structurally reusable: drop all
                    // dirty queues and scratch. Settled values are
                    // unspecified until the next `settle`.
                    queue.clear();
                    self.queues[lvl] = queue;
                    for q in &mut self.queues {
                        q.clear();
                    }
                    self.out_scratch = out_buf;
                    return Err(NetlistError::Cancelled);
                }
            }

            // Gates on one level never feed each other, so a level's dirty
            // set can be computed in any order (or in parallel chunks) and
            // applied serially in queue order.
            #[cfg(feature = "parallel")]
            let computed_parallel = {
                const PAR_MIN_GATES: usize = 128;
                if queue.len() >= PAR_MIN_GATES && agemul_par::thread_count(queue.len()) > 1 {
                    let this: &LevelSim<'a> = self;
                    let waves: Vec<Vec<u64>> = agemul_par::par_map(&queue, |&g| {
                        let mut out = Vec::new();
                        this.compute_wave(g as usize, &mut out);
                        out
                    });
                    for (&g, wave) in queue.iter().zip(&waves) {
                        if !wave.is_empty() {
                            self.apply_wave(g as usize, wave, &mut timing, &mut last_out_fs);
                        }
                    }
                    true
                } else {
                    false
                }
            };
            #[cfg(not(feature = "parallel"))]
            let computed_parallel = false;

            if !computed_parallel {
                for &g in &queue {
                    out_buf.clear();
                    self.compute_wave(g as usize, &mut out_buf);
                    if !out_buf.is_empty() {
                        self.apply_wave(g as usize, &out_buf, &mut timing, &mut last_out_fs);
                    }
                }
            }

            queue.clear();
            self.queues[lvl] = queue;
        }

        self.out_scratch = out_buf;

        // Commit: a dirty net's settled value is its last transition.
        // Deferred to the end so `compute_wave` reads previous-vector values.
        for i in 0..self.dirty_nets.len() {
            let n = self.dirty_nets[i] as usize;
            let m = self.waves[n];
            let end = (m.start + m.len) as usize;
            self.values[n] = unpack(self.arena[end - 1]).1;
        }

        timing.delay_ns = last_out_fs as f64 / FS_PER_NS;
        Ok(timing)
    }

    /// Net `n`'s committed transitions this step (empty if untouched),
    /// as packed events.
    #[inline]
    fn wave_of(&self, n: usize) -> &[u64] {
        let m = self.waves[n];
        if m.epoch == self.epoch {
            let start = m.start as usize;
            &self.arena[start..start + m.len as usize]
        } else {
            &[]
        }
    }

    /// Merges gate `g`'s input waveforms into its output waveform (pushed to
    /// `out`), replaying `EventSim`'s commit/evaluate/schedule rules — see
    /// the module docs. Pure read of `self`, so a level's dirty gates can
    /// run concurrently.
    ///
    /// Dispatches on arity so the hot 1–3-input shapes run with fixed-size
    /// cursor/value state in registers and hoisted waveform slices (the
    /// interior of the profiling hot loop); wider gates take the
    /// heap-backed generic path.
    fn compute_wave(&self, g: usize, out: &mut Vec<u64>) {
        match self.plan.inputs_of(g).len() {
            1 => self.merge_wave::<1>(g, out),
            2 => self.merge_wave::<2>(g, out),
            3 => self.merge_wave::<3>(g, out),
            4 => self.merge_wave::<4>(g, out),
            _ => self.merge_wave_dyn(g, out),
        }
    }

    /// The arity-`K` merge. `K` must equal gate `g`'s input count.
    fn merge_wave<const K: usize>(&self, g: usize, out: &mut Vec<u64>) {
        let inputs = self.plan.inputs_of(g);
        debug_assert_eq!(inputs.len(), K);
        let out_net = self.plan.output(g);
        let delay = self.plan.delay_fs(g);
        let kind = self.plan.kind(g);

        let empty: &[u64] = &[];
        let mut waves = [empty; K];
        let mut cur = [Logic::X; K];
        let mut cursors = [0usize; K];
        // `next[i]` caches the packed head event of wave `i` (`u64::MAX`
        // when exhausted), so each loop iteration reads registers instead
        // of re-probing the slices. Packed events order by time when
        // compared whole (time is in the upper bits).
        let mut next = [u64::MAX; K];
        for i in 0..K {
            let n = inputs[i] as usize;
            waves[i] = self.wave_of(n);
            cur[i] = self.values[n];
            next[i] = waves[i].first().copied().unwrap_or(u64::MAX);
        }
        let mut committed = self.values[out_net];
        // The pending output transition, packed like an arena event;
        // `u64::MAX` means none (its time field exceeds any real timestamp,
        // so the due-commit comparison needs no separate branch).
        let mut pending: u64 = u64::MAX;
        let ki = kind as usize;
        let is_tbuf = kind == GateKind::Tbuf;
        let overlay = self.overlay.as_ref();

        loop {
            // Next input-event timestamp across all cursors.
            let mut m = u64::MAX;
            for &e in &next {
                m = m.min(e);
            }
            if m == u64::MAX {
                break;
            }
            let t_now = m >> 2;
            // Delta-cycle order at `t_now`: the pending output transition
            // commits first if due, then all input events at `t_now` apply,
            // then the gate evaluates once.
            if pending >> 2 <= t_now {
                out.push(pending);
                committed = LEVELS[(pending & 3) as usize];
                pending = u64::MAX;
            }
            for i in 0..K {
                while next[i] >> 2 == t_now {
                    cur[i] = LEVELS[(next[i] & 3) as usize];
                    cursors[i] += 1;
                    next[i] = waves[i].get(cursors[i]).copied().unwrap_or(u64::MAX);
                }
            }
            let candidate = if is_tbuf {
                match cur[K - 1].read().to_bool() {
                    Some(true) => Some(cur[0].read()),
                    Some(false) => None, // hold: committed and pending survive
                    None => Some(Logic::X),
                }
            } else {
                let mut idx = 0usize;
                for &c in &cur {
                    idx = (idx << 2) | c as usize;
                }
                Some(match K {
                    1 => self.lut1[ki][idx],
                    2 => self.lut2[ki][idx],
                    3 => self.lut3[ki][idx],
                    _ => kind.eval(&cur),
                })
            };
            let Some(v) = candidate else { continue };
            let v = match overlay {
                Some(o) => o.apply_scalar(out_net, v),
                None => v,
            };
            // EventSim::schedule, minus the queue: at most one pending
            // transition, same-value keeps the earlier arrival, a
            // disagreement retracts, a collapse back to `committed` cancels.
            let cand = pack(t_now + delay, v);
            if pending != u64::MAX {
                if pending & 3 == cand & 3 {
                    // Same value: packed compare is a time compare here.
                    pending = pending.min(cand);
                } else if v == committed {
                    pending = u64::MAX;
                } else {
                    pending = cand;
                }
            } else if v != committed {
                pending = cand;
            }
        }
        // Inputs exhausted: a surviving pending transition commits when the
        // event queue would have drained to it.
        if pending != u64::MAX {
            out.push(pending);
        }
    }

    /// The rare wide-gate merge (arity > 4): identical rules, heap-backed
    /// per-call state.
    fn merge_wave_dyn(&self, g: usize, out: &mut Vec<u64>) {
        let inputs = self.plan.inputs_of(g);
        let out_net = self.plan.output(g);
        let delay = self.plan.delay_fs(g);
        let kind = self.plan.kind(g);

        let waves: Vec<&[u64]> = inputs.iter().map(|&n| self.wave_of(n as usize)).collect();
        let mut cur: Vec<Logic> = inputs.iter().map(|&n| self.values[n as usize]).collect();
        let mut cursors = vec![0usize; inputs.len()];
        let mut committed = self.values[out_net];
        let mut pending: Option<(u64, Logic)> = None;

        loop {
            let mut t_now = u64::MAX;
            for (w, &c) in waves.iter().zip(&cursors) {
                if let Some(&e) = w.get(c) {
                    t_now = t_now.min(e >> 2);
                }
            }
            if t_now == u64::MAX {
                break;
            }
            if let Some((pt, pv)) = pending {
                if pt <= t_now {
                    out.push(pack(pt, pv));
                    committed = pv;
                    pending = None;
                }
            }
            for i in 0..waves.len() {
                while let Some(&e) = waves[i].get(cursors[i]) {
                    if e >> 2 != t_now {
                        break;
                    }
                    cur[i] = LEVELS[(e & 3) as usize];
                    cursors[i] += 1;
                }
            }
            // Tbuf is always arity 2, so no tri-state case here.
            let v = self.coerce(out_net, kind.eval(&cur));
            let t = t_now + delay;
            match pending {
                Some((pt, pv)) => {
                    if pv == v {
                        if t < pt {
                            pending = Some((t, v));
                        }
                    } else if v == committed {
                        pending = None;
                    } else {
                        pending = Some((t, v));
                    }
                }
                None => {
                    if v != committed {
                        pending = Some((t, v));
                    }
                }
            }
        }
        if let Some((pt, pv)) = pending {
            out.push(pack(pt, pv));
        }
    }

    /// Publishes gate `g`'s output waveform: arena bookkeeping, toggle and
    /// event counters, output-delay tracking, and fanout dirtying.
    fn apply_wave(
        &mut self,
        g: usize,
        events: &[u64],
        timing: &mut PatternTiming,
        last_out_fs: &mut u64,
    ) {
        debug_assert!(!events.is_empty());
        let out_net = self.plan.output(g);
        self.waves[out_net] = WaveMeta {
            epoch: self.epoch,
            start: self.arena.len() as u32,
            len: events.len() as u32,
        };
        self.arena.extend_from_slice(events);
        self.dirty_nets.push(out_net as u32);

        let n = events.len() as u64;
        self.toggles_per_gate[g] += n;
        timing.gate_toggles += n;
        timing.events += n;
        if self.topology.is_output(NetId::from_index(out_net)) {
            timing.output_toggles += n;
            *last_out_fs = (*last_out_fs).max(events[events.len() - 1] >> 2);
        }
        self.mark_fanout(out_net);
    }

    /// Marks `net`'s fanout gates dirty (once per step, via epoch stamps).
    fn mark_fanout(&mut self, net: usize) {
        for &g in self.plan.fanout_of(net) {
            let gi = g as usize;
            if self.gate_epoch[gi] != self.epoch {
                self.gate_epoch[gi] = self.epoch;
                let lvl = self.plan.level_of(gi) as usize;
                self.queues[lvl].push(gi as u32);
            }
        }
    }

    /// The current settled value of `net`.
    #[inline]
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Packs every net's settled value into 2 bits (the [`Logic`]
    /// discriminant), 32 nets per `u64` — the compact state record the
    /// incremental aging sweep stores per pattern so it can
    /// [`restore_values`](Self::restore_values) across skipped patterns.
    pub fn snapshot_values(&self) -> Vec<u64> {
        let mut packed = vec![0u64; self.values.len().div_ceil(32)];
        for (idx, &v) in self.values.iter().enumerate() {
            packed[idx / 32] |= (v as u64) << ((idx % 32) * 2);
        }
        packed
    }

    /// Restores every net's settled value from a
    /// [`snapshot_values`](Self::snapshot_values) record taken on a
    /// simulator over the same netlist. Pending per-step scratch is
    /// invalidated; the next [`step`](Self::step) treats the restored
    /// values as the previous vector.
    ///
    /// # Panics
    ///
    /// Panics if `packed` was taken from a different-sized netlist.
    pub fn restore_values(&mut self, packed: &[u64]) {
        assert_eq!(
            packed.len(),
            self.values.len().div_ceil(32),
            "snapshot size mismatch"
        );
        for (idx, v) in self.values.iter_mut().enumerate() {
            *v = LEVELS[((packed[idx / 32] >> ((idx % 32) * 2)) & 3) as usize];
        }
        // Stale waveforms must not leak into the next step's merges.
        self.epoch += 1;
    }

    /// Calls `f` with the index of every gate whose output waveform was
    /// (re)computed during the most recent [`step`](Self::step) — the
    /// pattern's *touched set*. A gate outside this set saw no input event,
    /// so its contribution to timing and toggles is independent of its own
    /// delay; the incremental aging sweep uses this to prove a pattern's
    /// profile is unchanged when no touched gate's delay changed.
    pub fn for_each_touched_gate(&self, mut f: impl FnMut(usize)) {
        for (g, &e) in self.gate_epoch.iter().enumerate() {
            if e == self.epoch {
                f(g);
            }
        }
    }

    /// Settled primary output values in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Cumulative output-toggle count per gate since the last reset,
    /// indexable by [`GateId::index`](crate::GateId::index); glitches
    /// included, same as
    /// [`EventSim::gate_toggle_counts`](crate::EventSim::gate_toggle_counts).
    #[inline]
    pub fn gate_toggle_counts(&self) -> &[u64] {
        &self.toggles_per_gate
    }

    /// Clears the cumulative per-gate toggle counters.
    pub fn reset_toggle_counts(&mut self) {
        self.toggles_per_gate.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::DelayModel;

    use super::*;
    use crate::{EventSim, GateId};

    fn inverter_chain() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Not, &[x]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn chain_delay_is_sum_of_gate_delays() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let d = DelayAssignment::uniform(&n, &model);
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        let expect = 2.0 * model.delay_ns(GateKind::Not);
        assert!((timing.delay_ns - expect).abs() < 1e-9, "{timing:?}");
        assert_eq!(sim.value(n.outputs()[0]), Logic::One);
    }

    #[test]
    fn unchanged_input_touches_nothing() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::One]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(timing.events, 0);
        assert_eq!(timing.delay_ns, 0.0);
    }

    #[test]
    fn short_hazard_pulses_are_inertially_filtered() {
        // Same circuit as the EventSim test: a 1-inverter skew (8 ps) into
        // an XOR (24 ps) never develops the pulse.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let inv = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Xor, &[a, inv]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(timing.output_toggles, 0, "{timing:?}");
        assert_eq!(timing.delay_ns, 0.0, "{timing:?}");
    }

    #[test]
    fn wide_hazard_pulses_propagate() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut x = a;
        for _ in 0..5 {
            x = n.add_gate(GateKind::Not, &[x]).unwrap();
        }
        let y = n.add_gate(GateKind::Xor, &[a, x]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(timing.output_toggles, 2, "{timing:?}");
        assert!(timing.delay_ns > 0.0);
    }

    #[test]
    fn disabled_tbuf_holds_through_pending() {
        let mut n = Netlist::new();
        let dta = n.add_input("d");
        let en = n.add_input("en");
        let g = n.add_gate(GateKind::Tbuf, &[dta, en]).unwrap();
        n.mark_output(g, "g");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);

        sim.settle(&[Logic::Zero, Logic::One]).unwrap();
        assert_eq!(sim.value(g), Logic::Zero);
        let timing = sim.step(&[Logic::One, Logic::Zero]).unwrap();
        assert_eq!(sim.value(g), Logic::Zero, "tri-state must hold");
        assert_eq!(timing.output_toggles, 0);
        sim.step(&[Logic::One, Logic::One]).unwrap();
        assert_eq!(sim.value(g), Logic::One);
    }

    #[test]
    fn stuck_net_produces_no_events() {
        use crate::{FaultKind, FaultOverlay};
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        let a = n.inputs()[0];
        let y = n.outputs()[0];

        let mut o = FaultOverlay::new(&n);
        o.add(a, FaultKind::StuckAt0, 1).unwrap();
        sim.set_fault_overlay(o);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(timing.events, 0, "{timing:?}");
        assert_eq!(sim.value(y), Logic::Zero);

        sim.clear_fault_overlay();
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert!(timing.events > 0);
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn flip_overlay_inverts_with_normal_delay() {
        use crate::{FaultKind, FaultOverlay};
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let d = DelayAssignment::uniform(&n, &model);
        let mut sim = LevelSim::new(&n, &t, d);
        let x = n.gates()[0].output();
        let y = n.outputs()[0];

        let mut o = FaultOverlay::new(&n);
        o.add(x, FaultKind::Flip, 1).unwrap();
        sim.set_fault_overlay(o);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        let expect = 2.0 * model.delay_ns(GateKind::Not);
        assert!((timing.delay_ns - expect).abs() < 1e-9, "{timing:?}");
    }

    #[test]
    fn toggle_counters_match_event_sim() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut level = LevelSim::new(&n, &t, d.clone());
        let mut event = EventSim::new(&n, &t, d);
        for sim_step in [
            &[Logic::Zero][..],
            &[Logic::One][..],
            &[Logic::Zero][..],
            &[Logic::One][..],
        ] {
            let tl = level.step(sim_step).unwrap();
            let te = event.step(sim_step).unwrap();
            assert_eq!(tl, te);
        }
        assert_eq!(level.gate_toggle_counts(), event.gate_toggle_counts());
        level.reset_toggle_counts();
        assert_eq!(level.gate_toggle_counts(), &[0, 0]);
    }

    #[test]
    fn inflated_gate_matches_event_sim() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let mut d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        d.inflate(GateId::from_index(0), 2.5);
        let mut level = LevelSim::new(&n, &t, d.clone());
        let mut event = EventSim::new(&n, &t, d);
        level.settle(&[Logic::Zero]).unwrap();
        event.settle(&[Logic::Zero]).unwrap();
        let tl = level.step(&[Logic::One]).unwrap();
        let te = event.step(&[Logic::One]).unwrap();
        assert_eq!(tl, te);
    }

    #[test]
    fn cancelled_token_aborts_step_and_sim_recovers() {
        use crate::CancelToken;
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();

        let token = CancelToken::new();
        token.cancel();
        sim.set_cancel_token(Some(token));
        let err = sim.step(&[Logic::One]).unwrap_err();
        assert_eq!(err, NetlistError::Cancelled);

        sim.set_cancel_token(None);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert!(timing.delay_ns > 0.0);
        assert_eq!(sim.value(n.outputs()[0]), Logic::One);
    }

    #[test]
    fn snapshot_restore_round_trips_settled_state() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        let snap = sim.snapshot_values();
        let before: Vec<Logic> = (0..n.net_count())
            .map(|i| sim.value(NetId::from_index(i)))
            .collect();

        // Perturb the state, then restore: the next step must behave as if
        // the perturbation never happened.
        sim.step(&[Logic::One]).unwrap();
        sim.restore_values(&snap);
        for (i, &v) in before.iter().enumerate() {
            assert_eq!(sim.value(NetId::from_index(i)), v);
        }
        let t_restored = sim.step(&[Logic::One]).unwrap();

        let mut fresh = LevelSim::new(&n, &t, DelayAssignment::uniform(&n, &DelayModel::nominal()));
        fresh.settle(&[Logic::Zero]).unwrap();
        let t_fresh = fresh.step(&[Logic::One]).unwrap();
        assert_eq!(t_restored, t_fresh);
    }

    #[test]
    fn touched_gates_cover_exactly_the_resimulated_cone() {
        // Two independent inverter chains; toggling only the first input
        // must touch only the first chain's gates.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Not, &[b]).unwrap();
        n.mark_output(x, "x");
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero, Logic::Zero]).unwrap();
        sim.step(&[Logic::One, Logic::Zero]).unwrap();
        let mut touched = Vec::new();
        sim.for_each_touched_gate(|g| touched.push(g));
        assert_eq!(touched, vec![0]);
    }

    #[test]
    fn retime_matches_fresh_kernel() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let nominal = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut inflated = nominal.clone();
        inflated.inflate(GateId::from_index(0), 3.0);
        inflated.inflate(GateId::from_index(1), 1.5);

        // One kernel retimed across assignments vs a fresh kernel per
        // assignment: identical timings both directions (nominal →
        // inflated → nominal).
        let mut retimed = LevelSim::new(&n, &t, nominal.clone());
        for delays in [&inflated, &nominal, &inflated] {
            retimed.retime(delays);
            retimed.settle(&[Logic::Zero]).unwrap();
            let tr = retimed.step(&[Logic::One]).unwrap();

            let mut fresh = LevelSim::new(&n, &t, (*delays).clone());
            fresh.settle(&[Logic::Zero]).unwrap();
            let tf = fresh.step(&[Logic::One]).unwrap();
            assert_eq!(tr, tf);
            assert_eq!(retimed.value(n.outputs()[0]), fresh.value(n.outputs()[0]));
        }
    }

    #[test]
    fn retime_preserves_fault_overlay() {
        use crate::{FaultKind, FaultOverlay};
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let nominal = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut slow = nominal.clone();
        slow.inflate(GateId::from_index(1), 2.0);

        let mut o = FaultOverlay::new(&n);
        o.add(n.gates()[0].output(), FaultKind::Flip, 1).unwrap();

        let mut retimed = LevelSim::new(&n, &t, nominal);
        retimed.set_fault_overlay(o.clone());
        retimed.retime(&slow);
        retimed.settle(&[Logic::Zero]).unwrap();
        let tr = retimed.step(&[Logic::One]).unwrap();

        let mut fresh = LevelSim::new(&n, &t, slow);
        fresh.set_fault_overlay(o);
        fresh.settle(&[Logic::Zero]).unwrap();
        let tf = fresh.step(&[Logic::One]).unwrap();
        assert_eq!(tr, tf);
        assert_eq!(retimed.value(n.outputs()[0]), fresh.value(n.outputs()[0]));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn retime_rejects_zero_delay() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let good = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let bad = DelayAssignment::with_factors(&n, &DelayModel::nominal(), &[1e-12, 1.0]).unwrap();
        let mut sim = LevelSim::new(&n, &t, good);
        sim.retime(&bad);
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn retime_rejects_wrong_gate_count() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let mut other = Netlist::new();
        let a = other.add_input("a");
        let x = other.add_gate(GateKind::Not, &[a]).unwrap();
        other.mark_output(x, "y");
        let foreign = DelayAssignment::uniform(&other, &DelayModel::nominal());
        let mut sim = LevelSim::new(&n, &t, DelayAssignment::uniform(&n, &DelayModel::nominal()));
        sim.retime(&foreign);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_delay_rejected() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        // A sub-femtosecond per-kind delay rounds to 0 fs.
        let d = DelayAssignment::with_factors(&n, &DelayModel::nominal(), &[1e-12, 1.0]).unwrap();
        LevelSim::new(&n, &t, d);
    }
}
