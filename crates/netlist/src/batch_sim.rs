//! Bit-parallel batch functional simulator: `64 × W` patterns per sweep.
//!
//! [`BatchSim`] is the throughput counterpart of [`FuncSim`](crate::FuncSim).
//! Where `FuncSim` walks one [`Logic`] value per gate per pattern, `BatchSim`
//! packs input assignments into [`LogicBlock`] lane blocks — lane `i` of
//! every net belongs to pattern `i` — and performs **one** topological sweep
//! per batch, evaluating each gate with block-wide bitwise operations
//! ([`agemul_logic::GateKind::eval_block`]). The lane width is a const
//! generic: `BatchSim<'_>` (the default, `W = 1`) is the classic 64-lane
//! kernel, `BatchSim<'_, 4>` sweeps 256 lanes and `BatchSim<'_, 8>` 512
//! lanes with auto-vectorizable `[u64; W]` inner loops.
//!
//! # Lane packing layout
//!
//! ```text
//! patterns[0]  = [a0, b0, c0, ...]        ─┐ lane 0
//! patterns[1]  = [a1, b1, c1, ...]        ─┤ lane 1   per-net blocks:
//!    ...                                   ├────────▶ block(a) = ⟨a0 a1 ...⟩
//! patterns[N]  = [aN, bN, cN, ...]        ─┘ lane N   block(b) = ⟨b0 b1 ...⟩
//! ```
//!
//! Packing is column-wise: one block per *net*, one lane per *pattern*. A
//! partial batch (fewer than `64 × W` patterns) leaves the surplus lanes at
//! `X`; every accessor takes or masks a lane index so those lanes never
//! leak.
//!
//! # Equivalence guarantee
//!
//! For every net and every lane, `BatchSim` produces exactly the value
//! `FuncSim` produces for that pattern — including [`Logic::Z`] on disabled
//! tri-state outputs and the `X`-masking muxes of the bypassing
//! multipliers — at *every* lane width: a wide batch is bit-identical to
//! the concatenation of 64-lane batches over the same patterns, because
//! every block operation is the per-chunk word operation. The property-test
//! suites (`crates/netlist/tests/batch_equiv.rs`,
//! `crates/conformance/tests/wide_equiv.rs`) assert this over random
//! netlists covering every [`agemul_logic::GateKind`]; the word-level gate
//! formulas are additionally checked exhaustively against the scalar
//! evaluator in `agemul-logic`.

use agemul_logic::{lane_mask, Logic, LogicBlock, LogicWord};

use crate::plan::GatePlan;
use crate::{NetId, Netlist, NetlistError, Topology};

/// A bit-parallel functional simulator evaluating up to `64 × W` patterns
/// per topological sweep (`W = 1`, the default, is the 64-lane kernel).
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{BatchSim, BlockSim, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let y = n.add_gate(GateKind::Xor, &[a, b])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut sim = BatchSim::new(&n, &topo);
/// let patterns = [
///     [Logic::Zero, Logic::Zero],
///     [Logic::Zero, Logic::One],
///     [Logic::One, Logic::One],
/// ];
/// sim.eval_batch(&patterns)?;
/// assert_eq!(sim.value(y, 0), Logic::Zero);
/// assert_eq!(sim.value(y, 1), Logic::One);
/// assert_eq!(sim.value(y, 2), Logic::Zero);
///
/// // The same sweep at 256 lanes — bit-identical per lane.
/// let mut wide = BlockSim::<4>::new(&n, &topo);
/// wide.eval_batch(&patterns)?;
/// assert_eq!(wide.value(y, 1), Logic::One);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct BlockSim<'a, const W: usize> {
    // Struct-of-arrays per net: each LogicBlock is three [u64; W] planes,
    // so the per-gate sweep below is W-length bitwise loops over plane
    // arrays — the auto-vectorizable layout the wide path exists for.
    netlist: &'a Netlist,
    plan: GatePlan,
    blocks: Vec<LogicBlock<W>>,
    scratch: Vec<LogicBlock<W>>,
    lanes: usize,
    /// Constant nets and their splatted blocks, preloaded once; used to undo
    /// fault coercion left behind by
    /// [`eval_batch_with_overlay`](Self::eval_batch_with_overlay).
    consts: Vec<(u32, LogicBlock<W>)>,
    consts_dirty: bool,
}

/// The classic 64-lane batch kernel: [`BlockSim`] at `W = 1`.
///
/// An alias rather than a separate type so the 64-lane and wide paths are
/// one implementation — and so `BatchSim::new(...)` keeps inferring its
/// lane width at every existing call site.
pub type BatchSim<'a> = BlockSim<'a, 1>;

impl<'a, const W: usize> BlockSim<'a, W> {
    /// Number of patterns one sweep evaluates.
    pub const LANES: usize = 64 * W;

    /// Creates a batch simulator for `netlist`.
    ///
    /// As with [`FuncSim`](crate::FuncSim), the `topology` argument proves
    /// the caller validated the netlist; the sweep itself uses builder
    /// order via a flattened [`GatePlan`].
    pub fn new(netlist: &'a Netlist, _topology: &Topology) -> Self {
        let mut blocks = vec![LogicBlock::ALL_X; netlist.net_count()];
        let mut consts = Vec::new();
        for (idx, b) in blocks.iter_mut().enumerate() {
            if let Some(level) = netlist.const_level(NetId(idx as u32)) {
                *b = LogicBlock::splat(level);
                consts.push((idx as u32, *b));
            }
        }
        let plan = GatePlan::new(netlist);
        let scratch = Vec::with_capacity(plan.max_arity().max(1));
        BlockSim {
            netlist,
            plan,
            blocks,
            scratch,
            lanes: 0,
            consts,
            consts_dirty: false,
        }
    }

    /// Evaluates up to `64 × W` input assignments in one topological sweep
    /// and returns the number of valid lanes.
    ///
    /// `patterns[i]` becomes lane `i`; each pattern must supply one
    /// [`Logic`] per primary input, in `netlist.inputs()` order (exactly
    /// the slice [`FuncSim::eval`](crate::FuncSim::eval) accepts). Lanes
    /// beyond `patterns.len()` are driven to `X` and excluded by the lane
    /// masks of the accessors.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::BatchSize`] if `patterns` is empty or longer than
    ///   [`Self::LANES`].
    /// * [`NetlistError::WidthMismatch`] if any pattern's width is not the
    ///   primary input count.
    pub fn eval_batch<P: AsRef<[Logic]>>(&mut self, patterns: &[P]) -> Result<usize, NetlistError> {
        self.check_batch(patterns)?;

        if self.consts_dirty {
            for &(idx, b) in &self.consts {
                self.blocks[idx as usize] = b;
            }
            self.consts_dirty = false;
        }

        // Pack column-wise: per input net, gather that input's column
        // across all patterns into one block.
        for (j, &net) in self.netlist.inputs().iter().enumerate() {
            let mut b = LogicBlock::ALL_X;
            for (lane, p) in patterns.iter().enumerate() {
                b.set(lane, p.as_ref()[j]);
            }
            self.blocks[net.index()] = b;
        }

        // One bit-parallel sweep over the flattened plan.
        for g in 0..self.plan.gate_count() {
            self.scratch.clear();
            self.scratch.extend(
                self.plan
                    .inputs_of(g)
                    .iter()
                    .map(|&i| self.blocks[i as usize]),
            );
            self.blocks[self.plan.output(g)] = self.plan.kind(g).eval_block(&self.scratch);
        }

        self.lanes = patterns.len();
        Ok(self.lanes)
    }

    /// Evaluates up to `64 × W` input assignments with a
    /// [`FaultOverlay`](crate::FaultOverlay) coercing net blocks as they
    /// settle; returns the number of valid lanes.
    ///
    /// The overlay's 64-bit lane masks are replicated per 64-lane chunk:
    /// lane `i` observes the faults whose mask includes bit `i % 64`, so
    /// each *chunk* carries the same up-to-64 faulty variants the 64-lane
    /// kernel would. Replicating one input pattern across the lanes of one
    /// chunk therefore simulates up to 64 fault candidates in a single
    /// sweep — the core trick of the fault campaigns. An empty overlay
    /// yields bit-identical blocks to [`eval_batch`](Self::eval_batch),
    /// which remains the fault-free fast path.
    ///
    /// # Errors
    ///
    /// Same contract as [`eval_batch`](Self::eval_batch).
    pub fn eval_batch_with_overlay<P: AsRef<[Logic]>>(
        &mut self,
        patterns: &[P],
        overlay: &crate::FaultOverlay,
    ) -> Result<usize, NetlistError> {
        self.check_batch(patterns)?;

        // Constants are preloaded in `new`; re-coerce the faulted ones and
        // let the next plain `eval_batch` restore them.
        for &(idx, b) in &self.consts {
            self.blocks[idx as usize] = overlay.apply_block(idx as usize, b);
        }
        self.consts_dirty = !overlay.is_empty();

        for (j, &net) in self.netlist.inputs().iter().enumerate() {
            let mut b = LogicBlock::ALL_X;
            for (lane, p) in patterns.iter().enumerate() {
                b.set(lane, p.as_ref()[j]);
            }
            self.blocks[net.index()] = overlay.apply_block(net.index(), b);
        }

        for g in 0..self.plan.gate_count() {
            self.scratch.clear();
            self.scratch.extend(
                self.plan
                    .inputs_of(g)
                    .iter()
                    .map(|&i| self.blocks[i as usize]),
            );
            let out = self.plan.output(g);
            self.blocks[out] =
                overlay.apply_block(out, self.plan.kind(g).eval_block(&self.scratch));
        }

        self.lanes = patterns.len();
        Ok(self.lanes)
    }

    /// Shared size/width validation for the two batch entry points.
    fn check_batch<P: AsRef<[Logic]>>(&self, patterns: &[P]) -> Result<(), NetlistError> {
        if patterns.is_empty() || patterns.len() > Self::LANES {
            return Err(NetlistError::BatchSize {
                got: patterns.len(),
            });
        }
        let input_count = self.netlist.input_count();
        for p in patterns {
            if p.as_ref().len() != input_count {
                return Err(NetlistError::WidthMismatch {
                    expected: input_count,
                    got: p.as_ref().len(),
                });
            }
        }
        Ok(())
    }

    /// Number of valid lanes in the most recent batch (0 before the first
    /// [`eval_batch`](Self::eval_batch)).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The settled lane block of `net` after the most recent batch.
    #[inline]
    pub fn block(&self, net: NetId) -> LogicBlock<W> {
        self.blocks[net.index()]
    }

    /// All settled lane blocks, indexable by [`NetId::index`].
    #[inline]
    pub fn blocks(&self) -> &[LogicBlock<W>] {
        &self.blocks
    }

    /// The settled value of `net` for pattern `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a valid lane of the most recent batch.
    #[inline]
    pub fn value(&self, net: NetId, lane: usize) -> Logic {
        assert!(lane < self.lanes, "lane {lane} of {} evaluated", self.lanes);
        self.blocks[net.index()].get(lane)
    }

    /// Writes pattern `lane`'s primary output values into `out`
    /// (declaration order) without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `out.len()` is not the
    /// primary output count.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a valid lane of the most recent batch.
    pub fn write_outputs(&self, lane: usize, out: &mut [Logic]) -> Result<(), NetlistError> {
        assert!(lane < self.lanes, "lane {lane} of {} evaluated", self.lanes);
        if out.len() != self.netlist.output_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.output_count(),
                got: out.len(),
            });
        }
        for (slot, &o) in out.iter_mut().zip(self.netlist.outputs()) {
            *slot = self.blocks[o.index()].get(lane);
        }
        Ok(())
    }

    /// Sum of [`Logic::high_weight`] over the valid lanes of `net` — the
    /// batched building block of signal-probability collection.
    #[inline]
    pub fn high_weight_sum(&self, net: NetId) -> f64 {
        self.blocks[net.index()].high_weight_sum(self.lanes)
    }
}

/// 64-lane (`W = 1`) conveniences kept for the scalar-word call sites.
impl BlockSim<'_, 1> {
    /// Bit mask selecting the valid lanes of the most recent batch.
    #[inline]
    pub fn valid_mask(&self) -> u64 {
        lane_mask(self.lanes)
    }

    /// The settled lane word of `net` after the most recent batch.
    #[inline]
    pub fn word(&self, net: NetId) -> LogicWord {
        self.blocks[net.index()].chunk(0)
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;
    use crate::FuncSim;

    fn bypass_netlist() -> Netlist {
        // Tbuf + masking mux + constants: the shapes that exercise the
        // four-valued planes.
        let mut n = Netlist::new();
        let d = n.add_input("d");
        let en = n.add_input("en");
        let bypass = n.add_input("bypass");
        let one = n.const_one();
        let gated = n.add_gate(GateKind::Tbuf, &[d, en]).unwrap();
        let picked = n.add_gate(GateKind::Mux2, &[bypass, gated, en]).unwrap();
        let y = n.add_gate(GateKind::And, &[picked, one]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn matches_funcsim_on_bypass_shapes() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let mut scalar = FuncSim::new(&n, &topo);

        // All 4^3 = 64 input combinations in a single batch.
        let patterns: Vec<[Logic; 3]> = (0..64)
            .map(|c| {
                [
                    Logic::ALL[c % 4],
                    Logic::ALL[(c / 4) % 4],
                    Logic::ALL[(c / 16) % 4],
                ]
            })
            .collect();
        assert_eq!(batch.eval_batch(&patterns).unwrap(), 64);

        for (lane, p) in patterns.iter().enumerate() {
            scalar.eval(p).unwrap();
            for idx in 0..n.net_count() {
                let net = NetId(idx as u32);
                assert_eq!(
                    batch.value(net, lane),
                    scalar.value(net),
                    "net {net} lane {lane} pattern {p:?}"
                );
            }
        }
    }

    #[test]
    fn partial_batches_mask_surplus_lanes() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let patterns = [[Logic::One, Logic::One, Logic::Zero]];
        assert_eq!(batch.eval_batch(&patterns).unwrap(), 1);
        assert_eq!(batch.lanes(), 1);
        assert_eq!(batch.valid_mask(), 1);
        let y = *n.outputs().first().unwrap();
        assert_eq!(batch.value(y, 0), Logic::One);
        assert_eq!(batch.high_weight_sum(y), 1.0);
    }

    #[test]
    fn rejects_bad_batch_sizes_and_widths() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);

        let empty: [[Logic; 3]; 0] = [];
        assert_eq!(
            batch.eval_batch(&empty).unwrap_err(),
            NetlistError::BatchSize { got: 0 }
        );

        let oversized = vec![[Logic::Zero; 3]; 65];
        assert_eq!(
            batch.eval_batch(&oversized).unwrap_err(),
            NetlistError::BatchSize { got: 65 }
        );

        let narrow = [vec![Logic::Zero; 2]];
        assert_eq!(
            batch.eval_batch(&narrow).unwrap_err(),
            NetlistError::WidthMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn write_outputs_round_trips() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let patterns = [
            [Logic::One, Logic::One, Logic::Zero],
            [Logic::Zero, Logic::Zero, Logic::One],
        ];
        batch.eval_batch(&patterns).unwrap();
        let mut out = [Logic::X; 1];
        batch.write_outputs(0, &mut out).unwrap();
        assert_eq!(out[0], Logic::One);
        batch.write_outputs(1, &mut out).unwrap();
        assert_eq!(out[0], Logic::One); // mux picks the bypass value
    }

    #[test]
    fn lane_masked_overlay_runs_distinct_variants_per_lane() {
        use crate::{FaultKind, FaultOverlay};
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(y, "y");
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);

        // One pattern (a=1, b=1) replicated over four lanes; each lane a
        // different fault candidate: lane 0 fault-free, lane 1 sa0 on a,
        // lane 2 sa0 on b, lane 3 flip on y.
        let mut o = FaultOverlay::new(&n);
        o.add(a, FaultKind::StuckAt0, 0b0010).unwrap();
        o.add(b, FaultKind::StuckAt0, 0b0100).unwrap();
        o.add(y, FaultKind::Flip, 0b1000).unwrap();
        let pattern = [Logic::One, Logic::One];
        let patterns = [pattern; 4];
        assert_eq!(batch.eval_batch_with_overlay(&patterns, &o).unwrap(), 4);
        assert_eq!(batch.value(y, 0), Logic::One);
        assert_eq!(batch.value(y, 1), Logic::Zero);
        assert_eq!(batch.value(y, 2), Logic::Zero);
        assert_eq!(batch.value(y, 3), Logic::Zero);

        // A plain batch afterwards is unaffected by the overlay run.
        batch.eval_batch(&patterns).unwrap();
        for lane in 0..4 {
            assert_eq!(batch.value(y, lane), Logic::One);
        }
    }

    #[test]
    fn overlay_on_const_net_is_restored_for_plain_batches() {
        use crate::{FaultKind, FaultOverlay};
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let one = (0..n.net_count())
            .map(|i| NetId(i as u32))
            .find(|&net| n.const_level(net) == Some(Logic::One))
            .unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let mut o = FaultOverlay::new(&n);
        o.add(one, FaultKind::StuckAt0, !0).unwrap();
        let patterns = [[Logic::One, Logic::One, Logic::Zero]];
        batch.eval_batch_with_overlay(&patterns, &o).unwrap();
        let y = *n.outputs().first().unwrap();
        assert_eq!(batch.value(y, 0), Logic::Zero); // AND with stuck-0 one
        batch.eval_batch(&patterns).unwrap();
        assert_eq!(batch.value(y, 0), Logic::One);
    }

    /// A wide batch is the concatenation of 64-lane batches: every net and
    /// every lane agrees bit-for-bit, clean and under a fault overlay.
    #[test]
    fn wide_batch_equals_chunked_64_lane_batches() {
        use crate::{FaultKind, FaultOverlay};
        let n = bypass_netlist();
        let topo = n.topology().unwrap();

        // 150 patterns: two full 64-lane chunks plus a 22-lane remainder,
        // all inside one 256-lane sweep.
        let patterns: Vec<[Logic; 3]> = (0..150)
            .map(|c| {
                [
                    Logic::ALL[c % 4],
                    Logic::ALL[(c / 4) % 4],
                    Logic::ALL[(c / 16) % 4],
                ]
            })
            .collect();
        let mut o = FaultOverlay::new(&n);
        o.add(n.inputs()[0], FaultKind::StuckAt0, 0b10).unwrap();
        o.add(*n.outputs().first().unwrap(), FaultKind::Flip, 0b100)
            .unwrap();

        let mut narrow = BatchSim::new(&n, &topo);
        let mut wide = BlockSim::<4>::new(&n, &topo);
        for overlay in [None, Some(&o)] {
            match overlay {
                None => wide.eval_batch(&patterns).unwrap(),
                Some(o) => wide.eval_batch_with_overlay(&patterns, o).unwrap(),
            };
            for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
                match overlay {
                    None => narrow.eval_batch(chunk).unwrap(),
                    Some(o) => narrow.eval_batch_with_overlay(chunk, o).unwrap(),
                };
                for idx in 0..n.net_count() {
                    let net = NetId(idx as u32);
                    for lane in 0..chunk.len() {
                        assert_eq!(
                            wide.value(net, chunk_idx * 64 + lane),
                            narrow.value(net, lane),
                            "net {net} chunk {chunk_idx} lane {lane} overlay {}",
                            overlay.is_some()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_batch_size_limit_scales_with_width() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut wide = BlockSim::<4>::new(&n, &topo);
        assert_eq!(BlockSim::<4>::LANES, 256);
        let full = vec![[Logic::Zero; 3]; 256];
        assert_eq!(wide.eval_batch(&full).unwrap(), 256);
        let oversized = vec![[Logic::Zero; 3]; 257];
        assert_eq!(
            wide.eval_batch(&oversized).unwrap_err(),
            NetlistError::BatchSize { got: 257 }
        );
    }

    #[test]
    fn reeval_overwrites_previous_batch() {
        let n = bypass_netlist();
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        batch
            .eval_batch(&[[Logic::One, Logic::One, Logic::Zero]])
            .unwrap();
        batch
            .eval_batch(&[[Logic::Zero, Logic::One, Logic::Zero]])
            .unwrap();
        let y = *n.outputs().first().unwrap();
        assert_eq!(batch.value(y, 0), Logic::Zero);
    }
}
