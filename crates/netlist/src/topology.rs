//! Validated structural view of a netlist: fanout, levels, output flags.

use crate::netlist::Driver;
use crate::{GateId, NetId, Netlist, NetlistError};

/// The validated topological structure of a [`Netlist`].
///
/// Building a `Topology` proves the gate graph is a DAG and precomputes the
/// data both simulators need:
///
/// * per-net **fanout lists** (which gates read each net),
/// * per-gate **logic levels** (longest gate-count distance from a primary
///   input or constant),
/// * per-net **output flags** for O(1) "is this a primary output?" checks in
///   the event-driven simulator's inner loop.
///
/// The [`Netlist`] builder allocates every gate's output net *after* its
/// input nets, so gate-id order is already topological; `Topology::build`
/// re-verifies that invariant rather than trusting it.
///
/// # Example
///
/// ```
/// use agemul_logic::GateKind;
/// use agemul_netlist::Netlist;
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let x = n.add_gate(GateKind::Not, &[a])?;
/// let y = n.add_gate(GateKind::Not, &[x])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
/// assert_eq!(topo.max_level(), 2);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    /// `fanout[net.index()]` = gates reading that net.
    fanout: Vec<Vec<GateId>>,
    /// `level[gate.index()]` = 1 + max level over its input drivers.
    level: Vec<u32>,
    /// `is_output[net.index()]`.
    is_output: Vec<bool>,
    max_level: u32,
}

impl Topology {
    pub(crate) fn build(netlist: &Netlist) -> Result<Self, NetlistError> {
        let net_count = netlist.net_count();
        let gate_count = netlist.gate_count();

        // Verify every primary output is driven.
        for &out in netlist.outputs() {
            if netlist.nets[out.index()].driver.is_none() {
                return Err(NetlistError::UndrivenOutput { net: out });
            }
        }

        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); net_count];
        for (idx, gate) in netlist.gates().iter().enumerate() {
            for &i in gate.inputs() {
                fanout[i.index()].push(GateId(idx as u32));
            }
        }

        // Net levels: inputs/constants are level 0; a gate's output is
        // 1 + max input level. Gate-id order must be topological — if a
        // gate reads a net driven by a later gate, the graph was corrupted
        // and we report a cycle.
        let mut net_level: Vec<u32> = vec![0; net_count];
        let mut level: Vec<u32> = vec![0; gate_count];
        let mut max_level = 0;
        for (idx, gate) in netlist.gates().iter().enumerate() {
            let mut lvl = 0;
            for &i in gate.inputs() {
                match &netlist.nets[i.index()].driver {
                    Some(Driver::Gate(g)) if g.index() >= idx => {
                        return Err(NetlistError::CombinationalCycle {
                            gate: GateId(idx as u32),
                        });
                    }
                    _ => {}
                }
                lvl = lvl.max(net_level[i.index()]);
            }
            let gate_level = lvl + 1;
            level[idx] = gate_level;
            net_level[gate.output().index()] = gate_level;
            max_level = max_level.max(gate_level);
        }

        let mut is_output = vec![false; net_count];
        for &out in netlist.outputs() {
            is_output[out.index()] = true;
        }

        Ok(Topology {
            fanout,
            level,
            is_output,
            max_level,
        })
    }

    /// The gates reading `net`.
    #[inline]
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanout[net.index()]
    }

    /// The logic level of `gate` (1 = reads only inputs/constants).
    #[inline]
    pub fn level(&self, gate: GateId) -> u32 {
        self.level[gate.index()]
    }

    /// The deepest logic level in the netlist (0 for a gate-free netlist).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Whether `net` is a primary output.
    #[inline]
    pub fn is_output(&self, net: NetId) -> bool {
        self.is_output[net.index()]
    }

    /// An upper bound on the number of gates along any input→output path,
    /// handy for sizing event queues.
    #[inline]
    pub fn depth(&self) -> usize {
        self.max_level as usize
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;

    use super::*;

    #[test]
    fn levels_count_gate_depth() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let y = n.add_gate(GateKind::Not, &[x]).unwrap();
        let z = n.add_gate(GateKind::Or, &[y, a]).unwrap();
        n.mark_output(z, "z");
        let t = n.topology().unwrap();
        assert_eq!(t.level(GateId(0)), 1);
        assert_eq!(t.level(GateId(1)), 2);
        assert_eq!(t.level(GateId(2)), 3);
        assert_eq!(t.max_level(), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn fanout_lists_cover_all_readers() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Not, &[a]).unwrap();
        let _y = n.add_gate(GateKind::And, &[a, x]).unwrap();
        let t = n.topology().unwrap();
        assert_eq!(t.fanout(a).len(), 2);
        assert_eq!(t.fanout(x), &[GateId(1)]);
    }

    #[test]
    fn output_flags() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        assert!(t.is_output(y));
        assert!(!t.is_output(a));
    }

    #[test]
    fn undriven_output_rejected() {
        // Constructing an undriven output requires poking at internals; the
        // public builder cannot produce one, so emulate by marking an input
        // with its driver erased. Instead, check the closest public path:
        // a netlist with no gates and an output on an input net is fine.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.mark_output(a, "a");
        assert!(n.topology().is_ok());
    }

    #[test]
    fn empty_netlist_topology() {
        let n = Netlist::new();
        let t = n.topology().unwrap();
        assert_eq!(t.max_level(), 0);
    }

    #[test]
    fn constants_are_level_zero_sources() {
        let mut n = Netlist::new();
        let z = n.const_zero();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Or, &[z, a]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        assert_eq!(t.level(GateId(0)), 1);
    }
}
