//! Static timing analysis: the conservative longest-path bound.

use crate::{DelayAssignment, Netlist, NetlistError};

/// Computes the static (topological) critical-path delay in nanoseconds:
/// the longest input→output path with every gate contributing its full
/// propagation delay, regardless of sensitization.
///
/// This is the sign-off quantity a fixed-latency deployment must clock at —
/// no event-driven measurement can ever exceed it (transition times are
/// sums of gate delays along *sensitized* paths, which are a subset). The
/// workspace calibration and the paper's fixed-latency baselines (AM,
/// FLCB, FLRB) use this bound.
///
/// # Errors
///
/// Returns [`NetlistError::WidthMismatch`] if `delays` does not cover the
/// netlist's gates.
///
/// # Example
///
/// ```
/// use agemul_logic::{DelayModel, GateKind};
/// use agemul_netlist::{static_critical_path_ns, DelayAssignment, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let x = n.add_gate(GateKind::Not, &[a])?;
/// let y = n.add_gate(GateKind::Not, &[x])?;
/// n.mark_output(y, "y");
/// let model = DelayModel::nominal();
/// let delays = DelayAssignment::uniform(&n, &model);
/// let crit = static_critical_path_ns(&n, &delays)?;
/// assert!((crit - 2.0 * model.delay_ns(GateKind::Not)).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn static_critical_path_ns(
    netlist: &Netlist,
    delays: &DelayAssignment,
) -> Result<f64, NetlistError> {
    if delays.len() != netlist.gate_count() {
        return Err(NetlistError::WidthMismatch {
            expected: netlist.gate_count(),
            got: delays.len(),
        });
    }
    // Gate-id order is topological by construction.
    let mut arrival_fs: Vec<u64> = vec![0; netlist.net_count()];
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let worst_in = gate
            .inputs()
            .iter()
            .map(|i| arrival_fs[i.index()])
            .max()
            .unwrap_or(0);
        arrival_fs[gate.output().index()] =
            worst_in + delays.delay_fs(crate::GateId::from_index(idx));
    }
    let worst = netlist
        .outputs()
        .iter()
        .map(|o| arrival_fs[o.index()])
        .max()
        .unwrap_or(0);
    Ok(worst as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, GateKind, Logic};

    use crate::EventSim;

    use super::*;

    #[test]
    fn takes_longest_branch() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let short = n.add_gate(GateKind::Not, &[a]).unwrap();
        let mut long = a;
        for _ in 0..4 {
            long = n.add_gate(GateKind::Not, &[long]).unwrap();
        }
        let y = n.add_gate(GateKind::And, &[short, long]).unwrap();
        n.mark_output(y, "y");
        let model = DelayModel::nominal();
        let crit = static_critical_path_ns(&n, &DelayAssignment::uniform(&n, &model)).unwrap();
        let expect = 4.0 * model.delay_ns(GateKind::Not) + model.delay_ns(GateKind::And);
        assert!((crit - expect).abs() < 1e-9);
    }

    #[test]
    fn only_marked_outputs_count() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        let _deep = n.add_gate(GateKind::Not, &[y]).unwrap();
        n.mark_output(y, "y"); // the deeper node is not an output
        let model = DelayModel::nominal();
        let crit = static_critical_path_ns(&n, &DelayAssignment::uniform(&n, &model)).unwrap();
        assert!((crit - model.delay_ns(GateKind::Not)).abs() < 1e-9);
    }

    #[test]
    fn bounds_every_dynamic_measurement() {
        // Random logic: every event-driven delay must stay below the bound.
        let mut n = Netlist::new();
        let ins: Vec<_> = (0..6).map(|i| n.add_input(format!("i{i}"))).collect();
        let x1 = n.add_gate(GateKind::Xor, &[ins[0], ins[1]]).unwrap();
        let x2 = n.add_gate(GateKind::And, &[x1, ins[2]]).unwrap();
        let x3 = n.add_gate(GateKind::Or, &[x2, ins[3]]).unwrap();
        let x4 = n.add_gate(GateKind::Xor, &[x3, ins[4]]).unwrap();
        let x5 = n.add_gate(GateKind::Nand, &[x4, ins[5]]).unwrap();
        n.mark_output(x5, "y");
        let topo = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let crit = static_critical_path_ns(&n, &d).unwrap();

        let mut sim = EventSim::new(&n, &topo, d);
        sim.settle(&[Logic::Zero; 6]).unwrap();
        let mut state = 1u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits: Vec<Logic> = (0..6)
                .map(|b| Logic::from((state >> (b + 7)) & 1 == 1))
                .collect();
            let t = sim.step(&bits).unwrap();
            assert!(t.delay_ns <= crit + 1e-9, "{} > {crit}", t.delay_ns);
        }
    }

    #[test]
    fn empty_netlist_is_zero() {
        let n = Netlist::new();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        assert_eq!(static_critical_path_ns(&n, &d).unwrap(), 0.0);
    }
}
