//! Event-driven two-vector timing simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use agemul_logic::{DelayModel, GateKind, Logic};

use crate::{GateId, NetId, Netlist, NetlistError, Topology};

/// Femtoseconds per nanosecond; event times are integer femtoseconds so the
/// priority queue ordering is exact and deterministic. Shared with
/// [`LevelSim`](crate::LevelSim), whose femtosecond-exactness contract
/// depends on both kernels quantizing time identically.
pub(crate) const FS_PER_NS: f64 = 1.0e6;

/// Per-gate-instance propagation delays, in integer femtoseconds.
///
/// A `DelayAssignment` is the bridge between the per-*kind* [`DelayModel`]
/// and the per-*instance* degradation factors produced by the aging engine:
/// `delay(gate) = model.delay_ns(kind(gate)) × factor(gate)`.
///
/// # Example
///
/// ```
/// use agemul_logic::{DelayModel, GateKind};
/// use agemul_netlist::{DelayAssignment, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let y = n.add_gate(GateKind::Not, &[a])?;
/// n.mark_output(y, "y");
///
/// let fresh = DelayAssignment::uniform(&n, &DelayModel::nominal());
/// let aged = DelayAssignment::with_factors(&n, &DelayModel::nominal(), &[1.10])?;
/// assert!(aged.delay_ns(agemul_netlist::GateId::from_index(0))
///     > fresh.delay_ns(agemul_netlist::GateId::from_index(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayAssignment {
    per_gate_fs: Vec<u64>,
}

impl GateId {
    /// Builds a gate id from a dense index.
    ///
    /// Intended for gluing external per-gate tables (delay factors, stress
    /// probabilities) back onto a netlist; the id is only meaningful for the
    /// netlist whose gate count bounds it.
    #[inline]
    pub fn from_index(index: usize) -> GateId {
        GateId(index as u32)
    }
}

impl NetId {
    /// Builds a net id from a dense index (see [`GateId::from_index`]).
    #[inline]
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }
}

impl DelayAssignment {
    /// Every gate instance gets its kind's nominal delay from `model`.
    pub fn uniform(netlist: &Netlist, model: &DelayModel) -> Self {
        let per_gate_fs = netlist
            .gates()
            .iter()
            .map(|g| (model.delay_ns(g.kind()) * FS_PER_NS).round() as u64)
            .collect();
        DelayAssignment { per_gate_fs }
    }

    /// Per-instance delays: `model` delay of the gate's kind multiplied by
    /// `factors[gate.index()]` (the aging degradation, ≥ 1 in practice).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `factors.len()` differs
    /// from the gate count.
    pub fn with_factors(
        netlist: &Netlist,
        model: &DelayModel,
        factors: &[f64],
    ) -> Result<Self, NetlistError> {
        if factors.len() != netlist.gate_count() {
            return Err(NetlistError::WidthMismatch {
                expected: netlist.gate_count(),
                got: factors.len(),
            });
        }
        let per_gate_fs = netlist
            .gates()
            .iter()
            .zip(factors)
            .map(|(g, &f)| {
                assert!(
                    f.is_finite() && f > 0.0,
                    "delay factor must be finite and positive, got {f}"
                );
                (model.delay_ns(g.kind()) * f * FS_PER_NS).round() as u64
            })
            .collect();
        Ok(DelayAssignment { per_gate_fs })
    }

    /// Multiplies one gate's delay by `factor` — a localized BTI hot spot
    /// for the fault campaigns, as opposed to the whole-netlist factors of
    /// [`with_factors`](Self::with_factors).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range or `factor` is not finite and
    /// positive.
    pub fn inflate(&mut self, gate: GateId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "delay factor must be finite and positive, got {factor}"
        );
        let fs = &mut self.per_gate_fs[gate.index()];
        *fs = (*fs as f64 * factor).round() as u64;
    }

    /// The delay of `gate` in femtoseconds.
    #[inline]
    pub fn delay_fs(&self, gate: GateId) -> u64 {
        self.per_gate_fs[gate.index()]
    }

    /// The delay of `gate` in nanoseconds.
    #[inline]
    pub fn delay_ns(&self, gate: GateId) -> f64 {
        self.per_gate_fs[gate.index()] as f64 / FS_PER_NS
    }

    /// A stable 64-bit fingerprint of the whole assignment (FNV-1a over the
    /// per-gate femtosecond delays).
    ///
    /// Two assignments with the same fingerprint produce — up to hash
    /// collision — identical timing for every workload, so the fingerprint
    /// serves as the *delay epoch* in memoization keys: aging steps,
    /// calibration rescales, and per-gate [`inflate`](Self::inflate)
    /// hot spots all change it, while replaying the same assignment reuses
    /// cached profiles (see `agemul::ProfileCache`).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in (self.per_gate_fs.len() as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for &d in &self.per_gate_fs {
            for b in d.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Number of gates covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.per_gate_fs.len()
    }

    /// Whether the assignment covers zero gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.per_gate_fs.is_empty()
    }
}

/// The timing outcome of applying one input pattern on top of the previous
/// circuit state.
///
/// `delay_ns` is the *sensitized path delay* of the transition: the time of
/// the last primary-output change. Patterns that change no output have zero
/// delay — they are "free" under the variable-latency scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PatternTiming {
    /// Time of the last primary-output value change, in nanoseconds.
    pub delay_ns: f64,
    /// Number of primary-output value changes.
    pub output_toggles: u64,
    /// Number of gate-output value changes (includes glitches).
    pub gate_toggles: u64,
    /// Total events processed (diagnostic; ≥ `gate_toggles`).
    pub events: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_fs: u64,
    seq: u64,
    net: u32,
    value_tag: u8,
    /// Retraction generation: an event whose generation no longer matches
    /// its net's current generation was cancelled by a later evaluation
    /// (inertial-delay pulse filtering).
    generation: u32,
}

fn tag(v: Logic) -> u8 {
    match v {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::Z => 2,
        Logic::X => 3,
    }
}

fn untag(t: u8) -> Logic {
    match t {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::Z,
        _ => Logic::X,
    }
}

/// Event-driven timing simulator with transport delays and tri-state hold.
///
/// `EventSim` models what the paper measures with Nanosim: apply an input
/// vector on top of the circuit's previous state and watch how long the
/// outputs keep moving. Two behaviours matter for the bypassing
/// multipliers:
///
/// * **Input-dependent delay** — only sensitized paths propagate events, so
///   a multiplicand full of zeros finishes much earlier than the critical
///   path, which is precisely the effect Figs. 5/6 of the paper plot.
/// * **Tri-state hold** — a disabled `TBUF` does not propagate input
///   transitions at all (its output *holds*). Skipped full adders therefore
///   neither burn switching power nor contribute timing events, matching
///   the low-power intent of the bypassing designs.
///
/// Cumulative per-gate toggle counters feed the dynamic power model; see
/// [`gate_toggle_counts`](EventSim::gate_toggle_counts).
///
/// # Example
///
/// See the crate-level docs for a full-adder timing walk-through.
#[derive(Debug)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    topology: &'a Topology,
    delays: DelayAssignment,
    values: Vec<Logic>,
    /// Inertial-delay bookkeeping: at most one pending transition per net.
    pending: Vec<Option<(u64, Logic)>>,
    generation: Vec<u32>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    toggles_per_gate: Vec<u64>,
    scratch: Vec<Logic>,
    /// Delta-cycle dedup: gates already queued for the current timestamp.
    gate_mark: Vec<u64>,
    epoch: u64,
    affected: Vec<GateId>,
    /// Waveform tracing (None = off): accumulated events and the time base
    /// offset applied to the next step's events.
    trace: Option<TraceState>,
    /// Fault overlay (None = fault-free): every settled net value is passed
    /// through its scalar (lane-0) coercion.
    overlay: Option<crate::FaultOverlay>,
    /// Cooperative cancellation (None = never cancelled): polled every
    /// [`CANCEL_POLL_INTERVAL`] processed timestamps during a step.
    cancel: Option<crate::CancelToken>,
}

/// Timestamps processed between cancellation polls. Polling reads a clock
/// (`Instant::now`), so it is kept off the per-event fast path; at typical
/// event densities this bounds the overrun past a deadline to well under a
/// millisecond.
const CANCEL_POLL_INTERVAL: u32 = 512;

#[derive(Debug)]
struct TraceState {
    events: Vec<TraceEvent>,
    base_fs: u64,
    gap_fs: u64,
}

/// One recorded value change, for waveform export (see
/// [`crate::write_vcd`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Absolute trace time in femtoseconds (step times are concatenated,
    /// separated by the configured inter-pattern gap).
    pub time_fs: u64,
    /// The net that changed.
    pub net: NetId,
    /// Its new value.
    pub value: agemul_logic::Logic,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator with the given per-instance delays.
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover exactly the netlist's gates.
    pub fn new(netlist: &'a Netlist, topology: &'a Topology, delays: DelayAssignment) -> Self {
        assert_eq!(
            delays.len(),
            netlist.gate_count(),
            "delay assignment covers {} gates, netlist has {}",
            delays.len(),
            netlist.gate_count()
        );
        let mut values = vec![Logic::X; netlist.net_count()];
        for (idx, info) in netlist.nets.iter().enumerate() {
            if let Some(crate::netlist::Driver::Const(v)) = info.driver {
                values[idx] = v;
            }
        }
        // Settle the all-unknown state with one functional sweep so that
        // nets fed only by constants (which never receive events) start at
        // their resolved values rather than sticking at X forever.
        let mut scratch_init = Vec::with_capacity(8);
        for gate in netlist.gates() {
            scratch_init.clear();
            scratch_init.extend(gate.inputs().iter().map(|i| values[i.index()]));
            values[gate.output().index()] = gate.kind().eval(&scratch_init);
        }
        EventSim {
            netlist,
            topology,
            delays,
            values,
            pending: vec![None; netlist.net_count()],
            generation: vec![0; netlist.net_count()],
            queue: BinaryHeap::new(),
            seq: 0,
            toggles_per_gate: vec![0; netlist.gate_count()],
            scratch: Vec::with_capacity(8),
            gate_mark: vec![0; netlist.gate_count()],
            epoch: 0,
            affected: Vec::new(),
            trace: None,
            overlay: None,
            cancel: None,
        }
    }

    /// Installs a [`CancelToken`](crate::CancelToken): subsequent
    /// [`step`](Self::step)/[`settle`](Self::settle) calls poll it
    /// periodically and abort with [`NetlistError::Cancelled`] once it
    /// fires. Pass `None` to detach. After a cancelled step the settled
    /// values are unspecified; [`settle`](Self::settle) (with a fresh or
    /// cleared token) before measuring again.
    pub fn set_cancel_token(&mut self, token: Option<crate::CancelToken>) {
        self.cancel = token;
    }

    /// Attaches a [`FaultOverlay`](crate::FaultOverlay): from now on every
    /// net value — constant, primary input, or gate output — is passed
    /// through the overlay's scalar (lane-0) coercion before it settles. A
    /// stuck net therefore never toggles (producing no downstream events),
    /// and a flipped net propagates its inverted level with the driver's
    /// normal delay.
    ///
    /// The simulator state is re-initialized as if freshly constructed;
    /// call [`settle`](Self::settle) before measuring transitions.
    pub fn set_fault_overlay(&mut self, overlay: crate::FaultOverlay) {
        self.overlay = Some(overlay);
        self.reinit_values();
    }

    /// Removes the fault overlay and re-initializes the simulator state.
    pub fn clear_fault_overlay(&mut self) {
        self.overlay = None;
        self.reinit_values();
    }

    /// Re-derives the initial settled values (constants + one functional
    /// sweep, both through the overlay's coercion if one is attached).
    fn reinit_values(&mut self) {
        self.values.fill(Logic::X);
        for (idx, info) in self.netlist.nets.iter().enumerate() {
            if let Some(crate::netlist::Driver::Const(v)) = info.driver {
                self.values[idx] = v;
            }
        }
        if let Some(o) = &self.overlay {
            for (idx, v) in self.values.iter_mut().enumerate() {
                *v = o.apply_scalar(idx, *v);
            }
        }
        let netlist = self.netlist;
        let mut scratch = std::mem::take(&mut self.scratch);
        for gate in netlist.gates() {
            scratch.clear();
            scratch.extend(gate.inputs().iter().map(|i| self.values[i.index()]));
            let out = gate.output().index();
            let v = gate.kind().eval(&scratch);
            self.values[out] = match &self.overlay {
                Some(o) => o.apply_scalar(out, v),
                None => v,
            };
        }
        self.scratch = scratch;
        self.pending.fill(None);
        self.queue.clear();
    }

    /// Applies the overlay's scalar coercion to a candidate value of `net`.
    #[inline]
    fn coerce(&self, net: NetId, v: Logic) -> Logic {
        match &self.overlay {
            Some(o) => o.apply_scalar(net.index(), v),
            None => v,
        }
    }

    /// Turns on waveform tracing: every applied value change is recorded
    /// with an absolute timestamp. Consecutive [`step`](Self::step)s are
    /// laid out back to back, separated by `inter_pattern_gap_fs` (use the
    /// clock period for realistic waveforms). Export with
    /// [`crate::write_vcd`].
    pub fn enable_tracing(&mut self, inter_pattern_gap_fs: u64) {
        self.trace = Some(TraceState {
            events: Vec::new(),
            base_fs: 0,
            gap_fs: inter_pattern_gap_fs,
        });
    }

    /// The recorded trace, empty unless tracing is enabled.
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_ref().map_or(&[], |t| t.events.as_slice())
    }

    /// Clears recorded trace events (tracing stays enabled).
    pub fn clear_trace(&mut self) {
        if let Some(t) = self.trace.as_mut() {
            t.events.clear();
        }
    }

    /// Applies `inputs` and runs to quiescence, discarding timing.
    ///
    /// Use this to establish the "previous vector" state before measuring a
    /// transition with [`step`](Self::step); it also clears the per-gate
    /// toggle counters so warm-up switching does not pollute power numbers.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input count.
    pub fn settle(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        self.step(inputs)?;
        self.reset_toggle_counts();
        Ok(())
    }

    /// Applies `inputs` on top of the current state, runs to quiescence, and
    /// reports the transition's timing.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Result<PatternTiming, NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::WidthMismatch {
                expected: self.netlist.input_count(),
                got: inputs.len(),
            });
        }
        debug_assert!(self.queue.is_empty());

        let netlist = self.netlist;
        for (&net, &v) in netlist.inputs().iter().zip(inputs) {
            let v = self.coerce(net, v);
            self.schedule(0, net, v);
        }

        let mut timing = PatternTiming::default();
        let mut last_out_fs: u64 = 0;
        // `topology` is a shared reference field, so copying it out lets the
        // loop body coexist with `&mut self` calls.
        let topology = self.topology;

        // Delta-cycle processing: apply *all* value changes scheduled for a
        // timestamp before re-evaluating any fanout gate, so simultaneous
        // transitions (e.g. a tri-state's data and enable flipping on the
        // same input vector) are seen atomically.
        let mut poll_countdown = CANCEL_POLL_INTERVAL;
        while let Some(&Reverse(head)) = self.queue.peek() {
            if let Some(token) = &self.cancel {
                poll_countdown -= 1;
                if poll_countdown == 0 {
                    poll_countdown = CANCEL_POLL_INTERVAL;
                    if token.is_cancelled() {
                        // Leave the simulator structurally reusable (empty
                        // queue, no pending transitions); settled values are
                        // unspecified until the next `settle`.
                        self.queue.clear();
                        self.pending.fill(None);
                        return Err(NetlistError::Cancelled);
                    }
                }
            }
            let now_fs = head.time_fs;
            self.epoch += 1;
            self.affected.clear();
            while let Some(&Reverse(ev)) = self.queue.peek() {
                if ev.time_fs != now_fs {
                    break;
                }
                let Some(Reverse(ev)) = self.queue.pop() else {
                    break;
                };
                let net = NetId(ev.net);
                // Retracted by a later evaluation (inertial filtering).
                if ev.generation != self.generation[net.index()] {
                    continue;
                }
                self.pending[net.index()] = None;
                let value = untag(ev.value_tag);
                if self.values[net.index()] == value {
                    continue;
                }
                self.values[net.index()] = value;
                if let Some(t) = self.trace.as_mut() {
                    t.events.push(TraceEvent {
                        time_fs: t.base_fs + now_fs,
                        net,
                        value,
                    });
                }
                timing.events += 1;
                if let Some(g) = netlist.driver_gate(net) {
                    self.toggles_per_gate[g.index()] += 1;
                    timing.gate_toggles += 1;
                }
                if topology.is_output(net) {
                    timing.output_toggles += 1;
                    last_out_fs = last_out_fs.max(now_fs);
                }
                for &g in topology.fanout(net) {
                    if self.gate_mark[g.index()] != self.epoch {
                        self.gate_mark[g.index()] = self.epoch;
                        self.affected.push(g);
                    }
                }
            }
            let mut affected = std::mem::take(&mut self.affected);
            for &g in &affected {
                if let Some(new_out) = self.eval_gate(g) {
                    let out_net = netlist.gate(g).output();
                    let new_out = self.coerce(out_net, new_out);
                    let t = now_fs + self.delays.delay_fs(g);
                    self.schedule(t, out_net, new_out);
                }
            }
            affected.clear();
            self.affected = affected;
        }

        timing.delay_ns = last_out_fs as f64 / FS_PER_NS;
        if let Some(t) = self.trace.as_mut() {
            let span = t
                .events
                .last()
                .map(|e| e.time_fs.saturating_sub(t.base_fs))
                .unwrap_or(0);
            t.base_fs += span + t.gap_fs;
        }
        Ok(timing)
    }

    /// Evaluates gate `g` against current net values.
    ///
    /// Returns `None` when the gate is a tri-state buffer whose enable is
    /// low: the output *holds* its present value and no event is produced.
    fn eval_gate(&mut self, g: GateId) -> Option<Logic> {
        let gate = self.netlist.gate(g);
        if gate.kind() == GateKind::Tbuf {
            let enable = self.values[gate.inputs()[1].index()].read();
            return match enable.to_bool() {
                Some(true) => Some(self.values[gate.inputs()[0].index()].read()),
                Some(false) => None, // hold
                None => Some(Logic::X),
            };
        }
        self.scratch.clear();
        for &i in gate.inputs() {
            self.scratch.push(self.values[i.index()]);
        }
        Some(gate.kind().eval(&self.scratch))
    }

    /// Inertial-delay scheduling: each net has at most one pending
    /// transition. A fresh evaluation that disagrees with the pending one
    /// *retracts* it — input pulses shorter than the gate's propagation
    /// delay are filtered out, as in an analog (SPICE-level) gate — and a
    /// pulse that collapses back to the current value schedules nothing.
    fn schedule(&mut self, time_fs: u64, net: NetId, value: Logic) {
        let i = net.index();
        match self.pending[i] {
            Some((t, v)) => {
                if v == value {
                    // Same target, keep the earlier arrival.
                    if time_fs >= t {
                        return;
                    }
                    self.generation[i] = self.generation[i].wrapping_add(1);
                }
                // Different target: retract the pending transition.
                else {
                    self.generation[i] = self.generation[i].wrapping_add(1);
                    if value == self.values[i] {
                        // The pulse never develops at the output.
                        self.pending[i] = None;
                        return;
                    }
                }
            }
            None => {
                if value == self.values[i] {
                    return;
                }
            }
        }
        self.pending[i] = Some((time_fs, value));
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time_fs,
            seq: self.seq,
            net: net.0,
            value_tag: tag(value),
            generation: self.generation[i],
        }));
    }

    /// The current settled value of `net`.
    #[inline]
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Settled primary output values in declaration order.
    pub fn output_values(&self) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Cumulative output-toggle count per gate since the last reset,
    /// indexable by [`GateId::index`]. Glitches are included — this is
    /// genuine switching activity, the input to dynamic power.
    #[inline]
    pub fn gate_toggle_counts(&self) -> &[u64] {
        &self.toggles_per_gate
    }

    /// Clears the cumulative per-gate toggle counters.
    pub fn reset_toggle_counts(&mut self) {
        self.toggles_per_gate.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::DelayModel;

    use super::*;

    /// a ─NOT─ x ─NOT─ y   (chain of two inverters)
    fn inverter_chain() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Not, &[x]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn chain_delay_is_sum_of_gate_delays() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let d = DelayAssignment::uniform(&n, &model);
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        let expect = 2.0 * model.delay_ns(GateKind::Not);
        assert!((timing.delay_ns - expect).abs() < 1e-9, "{timing:?}");
        assert_eq!(sim.value(n.outputs()[0]), Logic::One);
    }

    #[test]
    fn unchanged_input_produces_no_events() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::One]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(timing.events, 0);
        assert_eq!(timing.delay_ns, 0.0);
    }

    #[test]
    fn non_sensitized_path_is_fast() {
        // y = a AND b. With b=0, changes on a never reach the output.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero, Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One, Logic::Zero]).unwrap();
        assert_eq!(timing.output_toggles, 0);
        assert_eq!(timing.delay_ns, 0.0);
    }

    #[test]
    fn disabled_tbuf_blocks_propagation() {
        let mut n = Netlist::new();
        let dta = n.add_input("d");
        let en = n.add_input("en");
        let g = n.add_gate(GateKind::Tbuf, &[dta, en]).unwrap();
        n.mark_output(g, "g");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);

        // Enable, drive 0 through.
        sim.settle(&[Logic::Zero, Logic::One]).unwrap();
        assert_eq!(sim.value(g), Logic::Zero);

        // Disable; flip data: output must hold, zero events downstream.
        let timing = sim.step(&[Logic::One, Logic::Zero]).unwrap();
        assert_eq!(sim.value(g), Logic::Zero, "tri-state must hold");
        assert_eq!(timing.output_toggles, 0);

        // Re-enable: the held node updates to the new data.
        sim.step(&[Logic::One, Logic::One]).unwrap();
        assert_eq!(sim.value(g), Logic::One);
    }

    #[test]
    fn short_hazard_pulses_are_inertially_filtered() {
        // y = a XOR a' (via one inverter): a rising edge makes a static-1
        // hazard whose width (one inverter delay, 8 ps) is shorter than the
        // XOR's 24 ps propagation delay — an analog gate never develops the
        // pulse, and neither does the inertial simulator.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let inv = n.add_gate(GateKind::Not, &[a]).unwrap();
        let y = n.add_gate(GateKind::Xor, &[a, inv]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        // Only the inverter toggles; the XOR output stays clean.
        assert_eq!(timing.output_toggles, 0, "{timing:?}");
        assert_eq!(timing.delay_ns, 0.0, "{timing:?}");
    }

    #[test]
    fn wide_hazard_pulses_propagate() {
        // Same hazard but through five inverters: the skew (40 ps) now
        // exceeds the XOR delay (24 ps), so the pulse is real and the
        // output glitches 1→0→1.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut x = a;
        for _ in 0..5 {
            x = n.add_gate(GateKind::Not, &[x]).unwrap();
        }
        let y = n.add_gate(GateKind::Xor, &[a, x]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(timing.output_toggles, 2, "{timing:?}");
        assert!(timing.delay_ns > 0.0);
    }

    #[test]
    fn aged_factors_lengthen_delay() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let fresh = DelayAssignment::uniform(&n, &model);
        let aged = DelayAssignment::with_factors(&n, &model, &[1.2, 1.2]).unwrap();
        let mut s1 = EventSim::new(&n, &t, fresh);
        let mut s2 = EventSim::new(&n, &t, aged);
        s1.settle(&[Logic::Zero]).unwrap();
        s2.settle(&[Logic::Zero]).unwrap();
        let t1 = s1.step(&[Logic::One]).unwrap().delay_ns;
        let t2 = s2.step(&[Logic::One]).unwrap().delay_ns;
        assert!((t2 / t1 - 1.2).abs() < 1e-6, "{t1} vs {t2}");
    }

    #[test]
    fn factor_width_checked() {
        let n = inverter_chain();
        let err = DelayAssignment::with_factors(&n, &DelayModel::nominal(), &[1.0]).unwrap_err();
        assert!(matches!(err, NetlistError::WidthMismatch { .. }));
    }

    #[test]
    fn toggle_counters_accumulate_and_reset() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        sim.step(&[Logic::One]).unwrap();
        sim.step(&[Logic::Zero]).unwrap();
        assert_eq!(sim.gate_toggle_counts(), &[2, 2]);
        sim.reset_toggle_counts();
        assert_eq!(sim.gate_toggle_counts(), &[0, 0]);
    }

    #[test]
    fn inflate_lengthens_exactly_one_gate() {
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let mut d = DelayAssignment::uniform(&n, &model);
        let g0 = GateId::from_index(0);
        let g1 = GateId::from_index(1);
        let base = d.delay_ns(g0);
        d.inflate(g0, 2.5);
        assert!((d.delay_ns(g0) - 2.5 * base).abs() < 1e-9);
        assert!(
            (d.delay_ns(g1) - base).abs() < 1e-9,
            "other gates untouched"
        );

        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert!((timing.delay_ns - 3.5 * base).abs() < 1e-9, "{timing:?}");
    }

    #[test]
    fn stuck_net_produces_no_events() {
        use crate::{FaultKind, FaultOverlay};
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        let a = n.inputs()[0];
        let y = n.outputs()[0];

        let mut o = FaultOverlay::new(&n);
        o.add(a, FaultKind::StuckAt0, 1).unwrap();
        sim.set_fault_overlay(o);
        sim.settle(&[Logic::Zero]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);

        // Input toggles are swallowed by the stuck net: zero events, zero
        // delay — the timing signature of a pinned node.
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(timing.events, 0, "{timing:?}");
        assert_eq!(sim.value(y), Logic::Zero);

        // Clearing the overlay restores normal propagation.
        sim.clear_fault_overlay();
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert!(timing.events > 0);
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn flip_overlay_inverts_with_normal_delay() {
        use crate::{FaultKind, FaultOverlay};
        let n = inverter_chain();
        let t = n.topology().unwrap();
        let model = DelayModel::nominal();
        let d = DelayAssignment::uniform(&n, &model);
        let mut sim = EventSim::new(&n, &t, d);
        let x = n.gates()[0].output(); // first inverter's output
        let y = n.outputs()[0];

        let mut o = FaultOverlay::new(&n);
        o.add(x, FaultKind::Flip, 1).unwrap();
        sim.set_fault_overlay(o);
        sim.settle(&[Logic::Zero]).unwrap();
        // x flipped: NOT(0)=1 reads as 0, so y = NOT(0) = 1... inverted
        // chain output becomes the complement of the fault-free value.
        assert_eq!(sim.value(y), Logic::One);
        let timing = sim.step(&[Logic::One]).unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        let expect = 2.0 * model.delay_ns(GateKind::Not);
        assert!((timing.delay_ns - expect).abs() < 1e-9, "{timing:?}");
    }

    #[test]
    fn cancelled_token_aborts_step_and_sim_recovers() {
        use crate::CancelToken;
        // A chain long enough to cross the poll interval (one timestamp per
        // inverter), so the pre-fired token is observed mid-step.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut x = a;
        for _ in 0..2_000 {
            x = n.add_gate(GateKind::Not, &[x]).unwrap();
        }
        n.mark_output(x, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero]).unwrap();

        let token = CancelToken::new();
        token.cancel();
        sim.set_cancel_token(Some(token));
        let err = sim.step(&[Logic::One]).unwrap_err();
        assert_eq!(err, NetlistError::Cancelled);

        // Detaching the token and re-settling restores normal behaviour.
        sim.set_cancel_token(None);
        sim.settle(&[Logic::Zero]).unwrap();
        let timing = sim.step(&[Logic::One]).unwrap();
        assert!(timing.delay_ns > 0.0);
        assert_eq!(sim.value(n.outputs()[0]), Logic::One);
    }

    #[test]
    fn mux_bypass_is_faster_than_logic_path() {
        // out = MUX(sel; in0 = a, in1 = slow(a)) where slow = 4 inverters.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let sel = n.add_input("sel");
        let mut x = a;
        for _ in 0..4 {
            x = n.add_gate(GateKind::Not, &[x]).unwrap();
        }
        let y = n.add_gate(GateKind::Mux2, &[a, x, sel]).unwrap();
        n.mark_output(y, "y");
        let t = n.topology().unwrap();
        let d = DelayAssignment::uniform(&n, &DelayModel::nominal());

        let mut sim = EventSim::new(&n, &t, d.clone());
        sim.settle(&[Logic::Zero, Logic::Zero]).unwrap();
        let fast = sim.step(&[Logic::One, Logic::Zero]).unwrap().delay_ns;

        let mut sim = EventSim::new(&n, &t, d);
        sim.settle(&[Logic::Zero, Logic::One]).unwrap();
        let slow = sim.step(&[Logic::One, Logic::One]).unwrap().delay_ns;
        assert!(fast < slow, "bypass {fast} vs logic {slow}");
    }
}
