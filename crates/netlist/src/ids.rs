//! Typed identifiers for nets and gates.

use std::fmt;

/// Identifies a net (wire) within one [`Netlist`](crate::Netlist).
///
/// Ids are dense indices assigned in creation order, so they double as
/// indices into per-net value arrays inside the simulators.
///
/// # Example
///
/// ```
/// use agemul_netlist::Netlist;
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifies a gate instance within one [`Netlist`](crate::Netlist).
///
/// Like [`NetId`], gate ids are dense creation-order indices; the aging
/// engine uses them to attach a per-instance delay-degradation factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// The dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(GateId(7).to_string(), "g7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId(1) < NetId(2));
        assert!(GateId(0) < GateId(9));
    }
}
