//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::{GateId, NetId};

/// Errors reported while building or validating a [`Netlist`](crate::Netlist).
///
/// # Example
///
/// ```
/// use agemul_logic::GateKind;
/// use agemul_netlist::{Netlist, NetlistError};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let err = n.add_gate(GateKind::Mux2, &[a, a]).unwrap_err();
/// assert!(matches!(err, NetlistError::BadArity { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with an input count its kind does not accept.
    BadArity {
        /// The offending gate kind, formatted for display.
        kind: String,
        /// The number of inputs supplied.
        got: usize,
    },
    /// A gate referenced a net id that does not exist in this netlist.
    UnknownNet {
        /// The dangling reference.
        net: NetId,
    },
    /// The netlist contains a combinational cycle through the given gate.
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// A net was marked as a primary output but has no driver.
    UndrivenOutput {
        /// The undriven net.
        net: NetId,
    },
    /// Two input/output vectors disagree on width.
    WidthMismatch {
        /// Expected width.
        expected: usize,
        /// Provided width.
        got: usize,
    },
    /// A batch simulation call was given an unusable pattern count (zero,
    /// or more than the 64 available lanes).
    BatchSize {
        /// The number of patterns supplied.
        got: usize,
    },
    /// An export or import path failed on the underlying I/O stream.
    ///
    /// Carries the rendered [`std::io::Error`] message so the error stays
    /// `Clone`/`Eq` (raw `io::Error` is neither).
    Io {
        /// The rendered I/O error message.
        message: String,
    },
    /// A simulation was cooperatively cancelled via a
    /// [`CancelToken`](crate::CancelToken) (explicit cancel or expired
    /// deadline). Simulator state is unspecified after a cancelled step;
    /// re-`settle` before reuse.
    Cancelled,
}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        NetlistError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate {kind} cannot have {got} inputs")
            }
            NetlistError::UnknownNet { net } => {
                write!(f, "reference to unknown net {net}")
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::UndrivenOutput { net } => {
                write!(f, "primary output {net} has no driver")
            }
            NetlistError::WidthMismatch { expected, got } => {
                write!(f, "expected {expected} signals, got {got}")
            }
            NetlistError::BatchSize { got } => {
                write!(f, "batch needs 1..=64 patterns, got {got}")
            }
            NetlistError::Io { message } => {
                write!(f, "i/o failure: {message}")
            }
            NetlistError::Cancelled => {
                write!(
                    f,
                    "simulation cancelled (deadline expired or cancel requested)"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let cases: Vec<NetlistError> = vec![
            NetlistError::BadArity {
                kind: "MUX2".into(),
                got: 2,
            },
            NetlistError::UnknownNet { net: NetId(5) },
            NetlistError::CombinationalCycle { gate: GateId(2) },
            NetlistError::UndrivenOutput { net: NetId(1) },
            NetlistError::WidthMismatch {
                expected: 4,
                got: 3,
            },
            NetlistError::BatchSize { got: 65 },
            NetlistError::Io {
                message: "disk full".into(),
            },
            NetlistError::Cancelled,
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("gate"));
        }
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetlistError>();
    }
}
