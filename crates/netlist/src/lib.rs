//! Gate-level netlist representation and simulation.
//!
//! This crate is the circuit substrate of the `agemul` workspace. It replaces
//! the Verilog + SPICE (Laker/Nanosim) flow used by the paper *"Aging-Aware
//! Reliable Multiplier Design With Adaptive Hold Logic"* with a pure-Rust
//! stack:
//!
//! * [`Netlist`] — an arena-style combinational netlist: nets identified by
//!   [`NetId`], gates by [`GateId`], primary inputs/outputs, and constants.
//! * [`Topology`] — validated structure: single-driver check, combinational
//!   cycle detection, topological levelization, and fanout lists.
//! * [`FuncSim`] — a zero-delay functional simulator (topological sweep),
//!   used for correctness checking and for collecting signal probabilities.
//! * [`BatchSim`] — the bit-parallel batch counterpart of [`FuncSim`]: 64
//!   patterns per sweep packed into `LogicWord` lane words, lane-for-lane
//!   equivalent to the scalar simulator (including `X`/`Z` semantics).
//! * [`EventSim`] — an event-driven *two-vector* timing simulator with
//!   per-gate-instance delays and tri-state **hold** semantics. Applying a
//!   new input vector on top of the previous one yields the input-dependent
//!   sensitized path delay — the quantity the paper's variable-latency
//!   design exploits — along with per-gate toggle counts for power.
//! * [`LevelSim`] — the levelized counterpart of [`EventSim`]: the netlist
//!   is compiled into a flat, topologically-levelized timing schedule and
//!   each pattern touches only the fan-out cones of changed input bits.
//!   Femtosecond-identical to [`EventSim`] (property-tested), an order of
//!   magnitude faster on the profiling hot path.
//! * [`WorkloadStats`] — per-net signal probabilities and per-gate switching
//!   activity accumulated over a workload, feeding the BTI aging model and
//!   the power model.
//! * [`FaultOverlay`] — a lane-masked fault-injection overlay (stuck-at,
//!   bit-flip) applied through dedicated `*_with_overlay` entry points so
//!   the fault-free simulation paths stay untouched.
//!
//! # Example
//!
//! Build a 1-bit full adder and time a carry transition:
//!
//! ```
//! use agemul_logic::{DelayModel, GateKind, Logic};
//! use agemul_netlist::{DelayAssignment, EventSim, Netlist};
//!
//! let mut n = Netlist::new();
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let cin = n.add_input("cin");
//! let axb = n.add_gate(GateKind::Xor, &[a, b])?;
//! let sum = n.add_gate(GateKind::Xor, &[axb, cin])?;
//! let g1 = n.add_gate(GateKind::And, &[a, b])?;
//! let g2 = n.add_gate(GateKind::And, &[axb, cin])?;
//! let cout = n.add_gate(GateKind::Or, &[g1, g2])?;
//! n.mark_output(sum, "sum");
//! n.mark_output(cout, "cout");
//!
//! let topo = n.topology()?;
//! let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
//! let mut sim = EventSim::new(&n, &topo, delays);
//!
//! sim.settle(&[Logic::Zero, Logic::Zero, Logic::Zero])?;
//! let t = sim.step(&[Logic::One, Logic::One, Logic::Zero])?;
//! assert!(t.delay_ns > 0.0); // the 1+1 pattern flips sum and carry
//! # Ok::<(), agemul_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch_sim;
mod bus;
mod cancel;
mod error;
mod event_sim;
mod fault;
mod func_sim;
mod ids;
mod level_sim;
mod netlist;
mod plan;
mod report;
mod sta;
mod stats;
mod topology;
mod vcd;
mod verilog;

pub use batch_sim::{BatchSim, BlockSim};
pub use bus::Bus;
pub use cancel::CancelToken;
pub use error::NetlistError;
pub use event_sim::{DelayAssignment, EventSim, PatternTiming, TraceEvent};
pub use fault::{FaultKind, FaultOverlay};
pub use func_sim::FuncSim;
pub use ids::{GateId, NetId};
pub use level_sim::LevelSim;
pub use netlist::{Gate, Netlist};
pub use report::NetlistReport;
pub use sta::static_critical_path_ns;
pub use stats::WorkloadStats;
pub use topology::Topology;
pub use vcd::write_vcd;
pub use verilog::write_verilog;
