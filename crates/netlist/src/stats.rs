//! Workload statistics: signal probabilities and switching activity.

use agemul_logic::Logic;

use crate::{BlockSim, GateId, NetId, Netlist, NetlistError, Topology};

/// Per-net signal probabilities and per-gate switching activity accumulated
/// over a workload.
///
/// Two downstream consumers:
///
/// * the **BTI aging model** needs the fraction of time each gate's
///   transistors spend under stress, which this type approximates with the
///   settled high-probability of each net (`α(S)` in Eq. 1 of the paper);
/// * the **power model** needs per-gate switching activity, which the
///   event-driven simulator accumulates (including glitches) and hands over
///   via [`WorkloadStats::record_toggles`].
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{Netlist, WorkloadStats};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let y = n.add_gate(GateKind::Not, &[a])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut stats = WorkloadStats::new(&n);
/// stats.observe_patterns(&n, &topo, [[Logic::Zero], [Logic::One], [Logic::One]])?;
/// assert!((stats.net_high_probability(a) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    patterns: u64,
    net_high_weight: Vec<f64>,
    gate_toggles: Vec<u64>,
    toggle_patterns: u64,
}

impl WorkloadStats {
    /// Creates an empty accumulator sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        WorkloadStats {
            patterns: 0,
            net_high_weight: vec![0.0; netlist.net_count()],
            gate_toggles: vec![0; netlist.gate_count()],
            toggle_patterns: 0,
        }
    }

    /// Functionally evaluates each pattern and accumulates settled net
    /// values into the high-probability estimate.
    ///
    /// Internally the patterns run through [`BatchSim`](crate::BatchSim) in chunks of up to
    /// 64: one bit-parallel sweep per chunk instead of one scalar sweep per
    /// pattern, with per-net weights recovered by popcount. The accumulated
    /// weights are *identical* to the scalar path — `high_weight` values
    /// are multiples of 0.5, which f64 sums exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if any pattern width differs
    /// from the netlist's input count.
    pub fn observe_patterns<I, P>(
        &mut self,
        netlist: &Netlist,
        topology: &Topology,
        patterns: I,
    ) -> Result<(), NetlistError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[Logic]>,
    {
        self.observe_patterns_wide::<1, I, P>(netlist, topology, patterns)
    }

    /// [`observe_patterns`](Self::observe_patterns) on a `64 × W`-lane
    /// [`BlockSim`]: fewer, wider sweeps with the same accumulated weights.
    ///
    /// The sums are bit-identical at every lane width — per-lane weights
    /// are exact multiples of 0.5 and the per-net popcounts are summed in
    /// lane order — so lane width is purely a throughput knob.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if any pattern width differs
    /// from the netlist's input count.
    pub fn observe_patterns_wide<const W: usize, I, P>(
        &mut self,
        netlist: &Netlist,
        topology: &Topology,
        patterns: I,
    ) -> Result<(), NetlistError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[Logic]>,
    {
        let mut sim = BlockSim::<W>::new(netlist, topology);
        let mut chunk: Vec<P> = Vec::with_capacity(BlockSim::<W>::LANES);
        for p in patterns {
            chunk.push(p);
            if chunk.len() == BlockSim::<W>::LANES {
                self.observe_chunk(&mut sim, &chunk)?;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            self.observe_chunk(&mut sim, &chunk)?;
        }
        Ok(())
    }

    fn observe_chunk<const W: usize, P: AsRef<[Logic]>>(
        &mut self,
        sim: &mut BlockSim<'_, W>,
        chunk: &[P],
    ) -> Result<(), NetlistError> {
        let lanes = sim.eval_batch(chunk)?;
        self.patterns += lanes as u64;
        for (w, block) in self.net_high_weight.iter_mut().zip(sim.blocks()) {
            *w += block.high_weight_sum(lanes);
        }
        Ok(())
    }

    /// Folds another accumulator over the same netlist into this one —
    /// the reduction step when pattern chunks are observed on parallel
    /// workers. Addition order is fixed by the caller's fold order, and
    /// the weights are multiples of 0.5, so merging chunk accumulators
    /// yields bit-identical sums to serial observation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `other` was sized for a
    /// different netlist.
    pub fn merge(&mut self, other: &WorkloadStats) -> Result<(), NetlistError> {
        // Check each dimension separately so the error reports the one that
        // actually mismatched (nets and gates can disagree independently).
        if other.net_high_weight.len() != self.net_high_weight.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.net_high_weight.len(),
                got: other.net_high_weight.len(),
            });
        }
        if other.gate_toggles.len() != self.gate_toggles.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.gate_toggles.len(),
                got: other.gate_toggles.len(),
            });
        }
        self.patterns += other.patterns;
        self.toggle_patterns += other.toggle_patterns;
        for (w, &o) in self.net_high_weight.iter_mut().zip(&other.net_high_weight) {
            *w += o;
        }
        for (t, &o) in self.gate_toggles.iter_mut().zip(&other.gate_toggles) {
            *t += o;
        }
        Ok(())
    }

    /// Merges per-gate toggle counters from an [`EventSim`] run covering
    /// `patterns` applied input vectors.
    ///
    /// [`EventSim`]: crate::EventSim
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `toggles` does not cover
    /// exactly the gate population this accumulator was sized for.
    pub fn record_toggles(&mut self, toggles: &[u64], patterns: u64) -> Result<(), NetlistError> {
        if toggles.len() != self.gate_toggles.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.gate_toggles.len(),
                got: toggles.len(),
            });
        }
        for (acc, &t) in self.gate_toggles.iter_mut().zip(toggles) {
            *acc += t;
        }
        self.toggle_patterns += patterns;
        Ok(())
    }

    /// Number of patterns observed functionally.
    #[inline]
    pub fn pattern_count(&self) -> u64 {
        self.patterns
    }

    /// The probability that `net` settles high under the observed workload,
    /// or 0.5 if nothing was observed (maximum-uncertainty prior).
    pub fn net_high_probability(&self, net: NetId) -> f64 {
        if self.patterns == 0 {
            return 0.5;
        }
        self.net_high_weight[net.index()] / self.patterns as f64
    }

    /// Average output toggles per applied pattern for `gate` (glitches
    /// included), or 0 if no toggle data was recorded.
    pub fn gate_activity(&self, gate: GateId) -> f64 {
        if self.toggle_patterns == 0 {
            return 0.0;
        }
        self.gate_toggles[gate.index()] as f64 / self.toggle_patterns as f64
    }

    /// Total recorded toggles across all gates.
    pub fn total_toggles(&self) -> u64 {
        self.gate_toggles.iter().sum()
    }

    /// Number of patterns covered by toggle recording.
    #[inline]
    pub fn toggle_pattern_count(&self) -> u64 {
        self.toggle_patterns
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, GateKind};

    use crate::{DelayAssignment, EventSim};

    use super::*;

    fn not_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn probabilities_track_patterns() {
        let n = not_netlist();
        let t = n.topology().unwrap();
        let mut stats = WorkloadStats::new(&n);
        stats
            .observe_patterns(
                &n,
                &t,
                [[Logic::One], [Logic::One], [Logic::One], [Logic::Zero]],
            )
            .unwrap();
        let a = n.inputs()[0];
        let y = n.outputs()[0];
        assert_eq!(stats.pattern_count(), 4);
        assert!((stats.net_high_probability(a) - 0.75).abs() < 1e-12);
        assert!((stats.net_high_probability(y) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_use_uniform_prior() {
        let n = not_netlist();
        let stats = WorkloadStats::new(&n);
        assert_eq!(stats.net_high_probability(n.inputs()[0]), 0.5);
        assert_eq!(stats.gate_activity(GateId::from_index(0)), 0.0);
    }

    #[test]
    fn toggle_merge_from_event_sim() {
        let n = not_netlist();
        let t = n.topology().unwrap();
        let mut sim = EventSim::new(&n, &t, DelayAssignment::uniform(&n, &DelayModel::nominal()));
        sim.settle(&[Logic::Zero]).unwrap();
        sim.step(&[Logic::One]).unwrap();
        sim.step(&[Logic::Zero]).unwrap();

        let mut stats = WorkloadStats::new(&n);
        stats.record_toggles(sim.gate_toggle_counts(), 2).unwrap();
        assert_eq!(stats.total_toggles(), 2);
        assert!((stats.gate_activity(GateId::from_index(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_width_checked() {
        let n = not_netlist();
        let mut stats = WorkloadStats::new(&n);
        assert!(stats.record_toggles(&[1, 2], 1).is_err());
    }

    #[test]
    fn batched_observation_crosses_chunk_boundaries() {
        // 150 patterns = 2 full 64-lane batches + a 22-lane remainder.
        let n = not_netlist();
        let t = n.topology().unwrap();
        let patterns: Vec<[Logic; 1]> = (0..150).map(|i| [Logic::from(i % 3 == 0)]).collect();

        let mut stats = WorkloadStats::new(&n);
        stats.observe_patterns(&n, &t, patterns.iter()).unwrap();
        assert_eq!(stats.pattern_count(), 150);

        let highs = patterns.iter().filter(|p| p[0] == Logic::One).count();
        let a = n.inputs()[0];
        assert!((stats.net_high_probability(a) - highs as f64 / 150.0).abs() < 1e-15);
    }

    #[test]
    fn merge_equals_serial_observation() {
        let n = not_netlist();
        let t = n.topology().unwrap();
        let patterns: Vec<[Logic; 1]> = (0..100)
            .map(|i| {
                [if i % 7 == 0 {
                    Logic::X
                } else {
                    Logic::from(i % 2 == 0)
                }]
            })
            .collect();

        let mut serial = WorkloadStats::new(&n);
        serial.observe_patterns(&n, &t, patterns.iter()).unwrap();

        let mut merged = WorkloadStats::new(&n);
        for chunk in patterns.chunks(33) {
            let mut part = WorkloadStats::new(&n);
            part.observe_patterns(&n, &t, chunk.iter()).unwrap();
            merged.merge(&part).unwrap();
        }

        assert_eq!(merged.pattern_count(), serial.pattern_count());
        for idx in 0..n.net_count() {
            let net = NetId::from_index(idx);
            // Bit-identical, not approximately equal.
            assert_eq!(
                merged.net_high_probability(net).to_bits(),
                serial.net_high_probability(net).to_bits()
            );
        }
    }

    #[test]
    fn wide_observation_is_bit_identical_to_64_lane() {
        // 300 patterns: less than one full 256-lane block, more than four
        // 64-lane chunks' worth of boundary cases at W = 4, plus a partial
        // final block at W = 8.
        let n = not_netlist();
        let t = n.topology().unwrap();
        let patterns: Vec<[Logic; 1]> = (0..300)
            .map(|i| {
                [match i % 5 {
                    0 => Logic::X,
                    1 | 2 => Logic::One,
                    _ => Logic::Zero,
                }]
            })
            .collect();

        let mut narrow = WorkloadStats::new(&n);
        narrow.observe_patterns(&n, &t, patterns.iter()).unwrap();

        let mut wide4 = WorkloadStats::new(&n);
        wide4
            .observe_patterns_wide::<4, _, _>(&n, &t, patterns.iter())
            .unwrap();
        let mut wide8 = WorkloadStats::new(&n);
        wide8
            .observe_patterns_wide::<8, _, _>(&n, &t, patterns.iter())
            .unwrap();

        for wide in [&wide4, &wide8] {
            assert_eq!(wide.pattern_count(), narrow.pattern_count());
            for idx in 0..n.net_count() {
                let net = NetId::from_index(idx);
                assert_eq!(
                    wide.net_high_probability(net).to_bits(),
                    narrow.net_high_probability(net).to_bits()
                );
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_netlists() {
        let n = not_netlist();
        let mut other = Netlist::new();
        other.add_input("a");
        let mut stats = WorkloadStats::new(&n);
        let foreign = WorkloadStats::new(&other);
        assert!(stats.merge(&foreign).is_err());
    }

    #[test]
    fn merge_reports_the_mismatched_dimension() {
        // Netlists engineered so the *net* counts agree (3 each) while the
        // *gate* counts differ (1 vs 2): the reported mismatch must name
        // the gate dimension, not the net dimension.
        let mut a = Netlist::new();
        let a0 = a.add_input("a0");
        let a1 = a.add_input("a1");
        a.add_gate(GateKind::And, &[a0, a1]).unwrap();

        let mut b = Netlist::new();
        let b0 = b.add_input("b0");
        let x = b.add_gate(GateKind::Not, &[b0]).unwrap();
        b.add_gate(GateKind::Not, &[x]).unwrap();

        assert_eq!(a.net_count(), b.net_count());
        assert_ne!(a.gate_count(), b.gate_count());

        let mut stats = WorkloadStats::new(&a);
        let foreign = WorkloadStats::new(&b);
        assert_eq!(
            stats.merge(&foreign).unwrap_err(),
            NetlistError::WidthMismatch {
                expected: a.gate_count(),
                got: b.gate_count(),
            }
        );

        // And when the net dimension is the mismatched one, it is reported.
        let mut c = Netlist::new();
        c.add_input("c0");
        let foreign_nets = WorkloadStats::new(&c);
        assert_eq!(
            stats.merge(&foreign_nets).unwrap_err(),
            NetlistError::WidthMismatch {
                expected: a.net_count(),
                got: c.net_count(),
            }
        );
    }

    #[test]
    fn unknown_values_count_half() {
        // A disabled tri-state's Z output accumulates weight 0.5.
        let mut n = Netlist::new();
        let d = n.add_input("d");
        let en = n.add_input("en");
        let g = n.add_gate(GateKind::Tbuf, &[d, en]).unwrap();
        n.mark_output(g, "g");
        let t = n.topology().unwrap();
        let mut stats = WorkloadStats::new(&n);
        stats
            .observe_patterns(&n, &t, [[Logic::One, Logic::Zero]])
            .unwrap();
        assert!((stats.net_high_probability(g) - 0.5).abs() < 1e-12);
    }
}
