//! Workload statistics: signal probabilities and switching activity.

use agemul_logic::Logic;

use crate::{FuncSim, GateId, NetId, Netlist, NetlistError, Topology};

/// Per-net signal probabilities and per-gate switching activity accumulated
/// over a workload.
///
/// Two downstream consumers:
///
/// * the **BTI aging model** needs the fraction of time each gate's
///   transistors spend under stress, which this type approximates with the
///   settled high-probability of each net (`α(S)` in Eq. 1 of the paper);
/// * the **power model** needs per-gate switching activity, which the
///   event-driven simulator accumulates (including glitches) and hands over
///   via [`WorkloadStats::record_toggles`].
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
/// use agemul_netlist::{Netlist, WorkloadStats};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let y = n.add_gate(GateKind::Not, &[a])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut stats = WorkloadStats::new(&n);
/// stats.observe_patterns(&n, &topo, [[Logic::Zero], [Logic::One], [Logic::One]])?;
/// assert!((stats.net_high_probability(a) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), agemul_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    patterns: u64,
    net_high_weight: Vec<f64>,
    gate_toggles: Vec<u64>,
    toggle_patterns: u64,
}

impl WorkloadStats {
    /// Creates an empty accumulator sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        WorkloadStats {
            patterns: 0,
            net_high_weight: vec![0.0; netlist.net_count()],
            gate_toggles: vec![0; netlist.gate_count()],
            toggle_patterns: 0,
        }
    }

    /// Functionally evaluates each pattern and accumulates settled net
    /// values into the high-probability estimate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if any pattern width differs
    /// from the netlist's input count.
    pub fn observe_patterns<I, P>(
        &mut self,
        netlist: &Netlist,
        topology: &Topology,
        patterns: I,
    ) -> Result<(), NetlistError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[Logic]>,
    {
        let mut sim = FuncSim::new(netlist, topology);
        for p in patterns {
            sim.eval(p.as_ref())?;
            self.patterns += 1;
            for (w, &v) in self.net_high_weight.iter_mut().zip(sim.values()) {
                *w += v.high_weight();
            }
        }
        Ok(())
    }

    /// Merges per-gate toggle counters from an [`EventSim`] run covering
    /// `patterns` applied input vectors.
    ///
    /// [`EventSim`]: crate::EventSim
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] if `toggles` does not cover
    /// exactly the gate population this accumulator was sized for.
    pub fn record_toggles(&mut self, toggles: &[u64], patterns: u64) -> Result<(), NetlistError> {
        if toggles.len() != self.gate_toggles.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.gate_toggles.len(),
                got: toggles.len(),
            });
        }
        for (acc, &t) in self.gate_toggles.iter_mut().zip(toggles) {
            *acc += t;
        }
        self.toggle_patterns += patterns;
        Ok(())
    }

    /// Number of patterns observed functionally.
    #[inline]
    pub fn pattern_count(&self) -> u64 {
        self.patterns
    }

    /// The probability that `net` settles high under the observed workload,
    /// or 0.5 if nothing was observed (maximum-uncertainty prior).
    pub fn net_high_probability(&self, net: NetId) -> f64 {
        if self.patterns == 0 {
            return 0.5;
        }
        self.net_high_weight[net.index()] / self.patterns as f64
    }

    /// Average output toggles per applied pattern for `gate` (glitches
    /// included), or 0 if no toggle data was recorded.
    pub fn gate_activity(&self, gate: GateId) -> f64 {
        if self.toggle_patterns == 0 {
            return 0.0;
        }
        self.gate_toggles[gate.index()] as f64 / self.toggle_patterns as f64
    }

    /// Total recorded toggles across all gates.
    pub fn total_toggles(&self) -> u64 {
        self.gate_toggles.iter().sum()
    }

    /// Number of patterns covered by toggle recording.
    #[inline]
    pub fn toggle_pattern_count(&self) -> u64 {
        self.toggle_patterns
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::{DelayModel, GateKind};

    use crate::{DelayAssignment, EventSim};

    use super::*;

    fn not_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let y = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(y, "y");
        n
    }

    #[test]
    fn probabilities_track_patterns() {
        let n = not_netlist();
        let t = n.topology().unwrap();
        let mut stats = WorkloadStats::new(&n);
        stats
            .observe_patterns(
                &n,
                &t,
                [[Logic::One], [Logic::One], [Logic::One], [Logic::Zero]],
            )
            .unwrap();
        let a = n.inputs()[0];
        let y = n.outputs()[0];
        assert_eq!(stats.pattern_count(), 4);
        assert!((stats.net_high_probability(a) - 0.75).abs() < 1e-12);
        assert!((stats.net_high_probability(y) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_use_uniform_prior() {
        let n = not_netlist();
        let stats = WorkloadStats::new(&n);
        assert_eq!(stats.net_high_probability(n.inputs()[0]), 0.5);
        assert_eq!(stats.gate_activity(GateId::from_index(0)), 0.0);
    }

    #[test]
    fn toggle_merge_from_event_sim() {
        let n = not_netlist();
        let t = n.topology().unwrap();
        let mut sim = EventSim::new(&n, &t, DelayAssignment::uniform(&n, &DelayModel::nominal()));
        sim.settle(&[Logic::Zero]).unwrap();
        sim.step(&[Logic::One]).unwrap();
        sim.step(&[Logic::Zero]).unwrap();

        let mut stats = WorkloadStats::new(&n);
        stats.record_toggles(sim.gate_toggle_counts(), 2).unwrap();
        assert_eq!(stats.total_toggles(), 2);
        assert!((stats.gate_activity(GateId::from_index(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toggle_width_checked() {
        let n = not_netlist();
        let mut stats = WorkloadStats::new(&n);
        assert!(stats.record_toggles(&[1, 2], 1).is_err());
    }

    #[test]
    fn unknown_values_count_half() {
        // A disabled tri-state's Z output accumulates weight 0.5.
        let mut n = Netlist::new();
        let d = n.add_input("d");
        let en = n.add_input("en");
        let g = n.add_gate(GateKind::Tbuf, &[d, en]).unwrap();
        n.mark_output(g, "g");
        let t = n.topology().unwrap();
        let mut stats = WorkloadStats::new(&n);
        stats
            .observe_patterns(&n, &t, [[Logic::One, Logic::Zero]])
            .unwrap();
        assert!((stats.net_high_probability(g) - 0.5).abs() < 1e-12);
    }
}
