//! Femtosecond bit-identity of a *retimed* `LevelSim` against a kernel
//! built from scratch for the same delay assignment.
//!
//! [`LevelSim::retime`] swaps the delay-dependent slice of the compiled
//! schedule in place and reuses every topology-invariant structure. Its
//! contract is exact equivalence with a from-scratch construction: for
//! every circuit, every chain of delay assignments (aged factors, per-gate
//! inflation hot spots), and every fault overlay, a retimed kernel settled
//! on the same vector as a fresh kernel must report identical
//! [`agemul_netlist::PatternTiming`] on every step, identical settled
//! values on **every** net, and identical cumulative toggle counters.
//! This is the property the corner-batched Monte Carlo campaign leans on:
//! the fast path (one kernel, thousands of retimes) is byte-identical to
//! the slow one (one kernel per corner).

use agemul_conformance::gen::{arb_gate, build_netlist, input_vector, GEN_INPUTS};
use agemul_logic::DelayModel;
use agemul_netlist::{DelayAssignment, FaultKind, FaultOverlay, GateId, LevelSim, NetId, Netlist};
use proptest::prelude::*;

/// Builds one delay assignment from a factor vector (cycled over the gate
/// population) plus one inflation hot spot.
fn assignment(n: &Netlist, factors: &[f64], hot_gate: u16, hot_factor: f64) -> DelayAssignment {
    let per_gate: Vec<f64> = (0..n.gate_count())
        .map(|g| factors[g % factors.len()])
        .collect();
    let mut d = DelayAssignment::with_factors(n, &DelayModel::nominal(), &per_gate).unwrap();
    if n.gate_count() > 0 {
        d.inflate(
            GateId::from_index(hot_gate as usize % n.gate_count()),
            hot_factor,
        );
    }
    d
}

/// Settles both kernels on vector 0 of `seqs`, then steps the rest in
/// lockstep asserting full-state identity: timing, every net value,
/// cumulative toggle counters.
fn assert_locked(
    n: &Netlist,
    retimed: &mut LevelSim,
    fresh: &mut LevelSim,
    inputs: usize,
    seqs: &[u64],
) {
    retimed.settle(&input_vector(seqs[0], inputs)).unwrap();
    fresh.settle(&input_vector(seqs[0], inputs)).unwrap();
    for &bits in &seqs[1..] {
        let v = input_vector(bits, inputs);
        let tr = retimed.step(&v).unwrap();
        let tf = fresh.step(&v).unwrap();
        prop_assert_eq!(tr, tf, "timing diverged on bits {:#x}", bits);
        for idx in 0..n.net_count() {
            let net = NetId::from_index(idx);
            prop_assert_eq!(
                retimed.value(net),
                fresh.value(net),
                "net {} diverged on bits {:#x}",
                idx,
                bits
            );
        }
    }
    prop_assert_eq!(retimed.snapshot_values(), fresh.snapshot_values());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A chain of aged + inflated delay assignments replayed through ONE
    /// kernel via `retime` matches a fresh kernel per assignment — the
    /// corner loop's exact shape. Toggle counters are compared per corner
    /// (both sides settle, which resets them).
    #[test]
    fn retimed_kernel_matches_fresh_kernel_per_assignment(
        recipes in proptest::collection::vec(arb_gate(), 1..50),
        seqs in proptest::collection::vec(any::<u64>(), 2..8),
        corner_factors in proptest::collection::vec(
            proptest::collection::vec(0.5f64..4.0, 1..20), 1..5),
        hot_gate in any::<u16>(),
        hot_factor in 1.0f64..8.0,
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let nominal = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut retimed = LevelSim::new(&n, &topo, nominal);
        for factors in &corner_factors {
            let delays = assignment(&n, factors, hot_gate, hot_factor);
            retimed.retime(&delays);
            let mut fresh = LevelSim::new(&n, &topo, delays);
            assert_locked(&n, &mut retimed, &mut fresh, inputs, &seqs);
            retimed.reset_toggle_counts();
            prop_assert_eq!(retimed.gate_toggle_counts(), vec![0u64; n.gate_count()]);
        }
    }

    /// Retiming with a fault overlay attached: the overlay survives the
    /// swap and coerces identically to a fresh kernel that had the same
    /// overlay installed after construction.
    #[test]
    fn retime_under_fault_overlay_matches_fresh(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        seqs in proptest::collection::vec(any::<u64>(), 2..8),
        factors in proptest::collection::vec(0.5f64..4.0, 1..20),
        hot_gate in any::<u16>(),
        fault_net in any::<u16>(),
        fault_kind in prop_oneof![
            Just(FaultKind::StuckAt0),
            Just(FaultKind::StuckAt1),
            Just(FaultKind::Flip),
        ],
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let target = NetId::from_index(fault_net as usize % n.net_count());
        let mut overlay = FaultOverlay::new(&n);
        overlay.add(target, fault_kind, 1).unwrap();

        let nominal = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let delays = assignment(&n, &factors, hot_gate, 2.5);

        // Overlay installed before the retime on one side, after a
        // from-scratch build on the other.
        let mut retimed = LevelSim::new(&n, &topo, nominal);
        retimed.set_fault_overlay(overlay.clone());
        retimed.retime(&delays);
        let mut fresh = LevelSim::new(&n, &topo, delays);
        fresh.set_fault_overlay(overlay);
        assert_locked(&n, &mut retimed, &mut fresh, inputs, &seqs);
    }

    /// Round trip: retime away from nominal and back must reproduce the
    /// original kernel's behaviour exactly (the delay swap leaves no
    /// residue in any topology-invariant structure).
    #[test]
    fn retime_round_trip_is_lossless(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        seqs in proptest::collection::vec(any::<u64>(), 2..8),
        factors in proptest::collection::vec(1.0f64..4.0, 1..20),
        hot_gate in any::<u16>(),
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let nominal = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let perturbed = assignment(&n, &factors, hot_gate, 3.0);

        let mut round_trip = LevelSim::new(&n, &topo, nominal.clone());
        round_trip.retime(&perturbed);
        round_trip.settle(&input_vector(seqs[0], inputs)).unwrap();
        round_trip.step(&input_vector(seqs[seqs.len() - 1], inputs)).unwrap();
        round_trip.retime(&nominal);

        let mut pristine = LevelSim::new(&n, &topo, nominal);
        assert_locked(&n, &mut round_trip, &mut pristine, inputs, &seqs);
    }
}
