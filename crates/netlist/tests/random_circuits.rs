//! Property tests over randomly generated combinational netlists.
//!
//! A small generator builds arbitrary well-formed DAG netlists (including
//! tri-state/mux bypass idioms) and checks simulator invariants that must
//! hold for *every* circuit, not just the multipliers.

use agemul_logic::{DelayModel, GateKind, Logic};
use agemul_netlist::{static_critical_path_ns, DelayAssignment, EventSim, FuncSim, NetId, Netlist};
use proptest::prelude::*;

/// Recipe for one random gate: kind selector and input picks (modulo the
/// number of available nets at build time).
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    picks: [u16; 3],
}

fn arb_gate() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(k, a, b, c)| GateRecipe {
        kind_sel: k,
        picks: [a, b, c],
    })
}

/// Builds a well-formed netlist from recipes; every gate reads existing
/// nets, so the result is a DAG by construction.
fn build(recipes: &[GateRecipe], inputs: usize) -> (Netlist, Vec<NetId>) {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    nets.push(n.const_zero());
    nets.push(n.const_one());
    for r in recipes {
        let pick = |p: u16| nets[p as usize % nets.len()];
        let kind = match r.kind_sel % 10 {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            8 => GateKind::Mux2,
            _ => GateKind::Tbuf,
        };
        let ins: Vec<NetId> = match kind.fixed_arity() {
            Some(1) => vec![pick(r.picks[0])],
            Some(2) => vec![pick(r.picks[0]), pick(r.picks[1])],
            Some(3) => vec![pick(r.picks[0]), pick(r.picks[1]), pick(r.picks[2])],
            _ => vec![pick(r.picks[0]), pick(r.picks[1])],
        };
        let out = n.add_gate(kind, &ins).expect("recipe inputs are valid");
        nets.push(out);
    }
    // Mark the last few nets as outputs.
    let out_nets: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    for (i, &o) in out_nets.iter().enumerate() {
        n.mark_output(o, format!("o{i}"));
    }
    (n, out_nets)
}

fn input_vector(bits: u64, count: usize) -> Vec<Logic> {
    (0..count)
        .map(|i| Logic::from((bits >> i) & 1 == 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven simulator settles to the functional simulator's
    /// values on every output whose value is not tri-state-history
    /// dependent — and on X-free circuits they agree exactly.
    #[test]
    fn settled_values_match_functional(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        bits1 in any::<u64>(),
        bits2 in any::<u64>(),
    ) {
        let inputs = 6;
        let (n, outs) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());

        let mut esim = EventSim::new(&n, &topo, delays);
        esim.settle(&input_vector(bits1, inputs)).unwrap();
        esim.step(&input_vector(bits2, inputs)).unwrap();

        let mut fsim = FuncSim::new(&n, &topo);
        fsim.eval(&input_vector(bits2, inputs)).unwrap();

        for &o in &outs {
            let f = fsim.value(o);
            let e = esim.value(o);
            // A disabled tri-state output is Z functionally but *holds*
            // in the event simulator; only compare when the functional
            // value is defined.
            if f.is_known() {
                // The event sim may retain a defined value where the pure
                // functional view sees X (history), but where both are
                // defined they must agree.
                if e.is_known() {
                    prop_assert_eq!(f, e, "output {} diverged", o);
                }
            }
        }
    }

    /// No event ever lands after the static critical-path bound.
    #[test]
    fn static_bound_holds_for_random_circuits(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        seqs in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let inputs = 6;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let bound = static_critical_path_ns(&n, &delays).unwrap();

        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(0, inputs)).unwrap();
        for &bits in &seqs {
            let t = sim.step(&input_vector(bits, inputs)).unwrap();
            prop_assert!(t.delay_ns <= bound + 1e-9, "{} > {bound}", t.delay_ns);
        }
    }

    /// Applying the same vector twice produces no events the second time.
    #[test]
    fn event_sim_is_quiescent_on_repeat(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        bits in any::<u64>(),
    ) {
        let inputs = 6;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(bits, inputs)).unwrap();
        let t = sim.step(&input_vector(bits, inputs)).unwrap();
        prop_assert_eq!(t.events, 0);
        prop_assert_eq!(t.delay_ns, 0.0);
    }

    /// Functional evaluation is pure: same inputs, same outputs, in any
    /// evaluation order.
    #[test]
    fn functional_sim_is_pure(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let inputs = 6;
        let (n, outs) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        sim.eval(&input_vector(a, inputs)).unwrap();
        let first: Vec<Logic> = outs.iter().map(|&o| sim.value(o)).collect();
        sim.eval(&input_vector(b, inputs)).unwrap();
        sim.eval(&input_vector(a, inputs)).unwrap();
        let second: Vec<Logic> = outs.iter().map(|&o| sim.value(o)).collect();
        prop_assert_eq!(first, second);
    }

    /// Toggle counters are consistent: per-gate counts sum to the totals
    /// reported per step.
    #[test]
    fn toggle_counters_reconcile(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        seqs in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let inputs = 6;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(0, inputs)).unwrap();
        let mut reported = 0u64;
        for &bits in &seqs {
            reported += sim.step(&input_vector(bits, inputs)).unwrap().gate_toggles;
        }
        let counted: u64 = sim.gate_toggle_counts().iter().sum();
        prop_assert_eq!(reported, counted);
    }
}
