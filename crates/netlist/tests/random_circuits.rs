//! Property tests over randomly generated combinational netlists.
//!
//! A small generator builds arbitrary well-formed DAG netlists (including
//! tri-state/mux bypass idioms) and checks simulator invariants that must
//! hold for *every* circuit, not just the multipliers.

use agemul_conformance::gen::{arb_gate, build_netlist, input_vector, GEN_INPUTS};
use agemul_logic::{DelayModel, Logic};
use agemul_netlist::{static_critical_path_ns, DelayAssignment, EventSim, FuncSim, NetId, Netlist};
use proptest::prelude::*;

/// Builds the shared-generator netlist and returns its output nets (the
/// last four nets, in the order the generator marks them).
fn build(recipes: &[agemul_conformance::gen::GateRecipe], inputs: usize) -> (Netlist, Vec<NetId>) {
    let n = build_netlist(recipes, inputs);
    let outs = n.outputs().to_vec();
    (n, outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven simulator settles to the functional simulator's
    /// values on every output whose value is not tri-state-history
    /// dependent — and on X-free circuits they agree exactly.
    #[test]
    fn settled_values_match_functional(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        bits1 in any::<u64>(),
        bits2 in any::<u64>(),
    ) {
        let inputs = GEN_INPUTS;
        let (n, outs) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());

        let mut esim = EventSim::new(&n, &topo, delays);
        esim.settle(&input_vector(bits1, inputs)).unwrap();
        esim.step(&input_vector(bits2, inputs)).unwrap();

        let mut fsim = FuncSim::new(&n, &topo);
        fsim.eval(&input_vector(bits2, inputs)).unwrap();

        for &o in &outs {
            let f = fsim.value(o);
            let e = esim.value(o);
            // A disabled tri-state output is Z functionally but *holds*
            // in the event simulator; only compare when the functional
            // value is defined.
            if f.is_known() {
                // The event sim may retain a defined value where the pure
                // functional view sees X (history), but where both are
                // defined they must agree.
                if e.is_known() {
                    prop_assert_eq!(f, e, "output {} diverged", o);
                }
            }
        }
    }

    /// No event ever lands after the static critical-path bound.
    #[test]
    fn static_bound_holds_for_random_circuits(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        seqs in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let inputs = GEN_INPUTS;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let bound = static_critical_path_ns(&n, &delays).unwrap();

        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(0, inputs)).unwrap();
        for &bits in &seqs {
            let t = sim.step(&input_vector(bits, inputs)).unwrap();
            prop_assert!(t.delay_ns <= bound + 1e-9, "{} > {bound}", t.delay_ns);
        }
    }

    /// Applying the same vector twice produces no events the second time.
    #[test]
    fn event_sim_is_quiescent_on_repeat(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        bits in any::<u64>(),
    ) {
        let inputs = GEN_INPUTS;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(bits, inputs)).unwrap();
        let t = sim.step(&input_vector(bits, inputs)).unwrap();
        prop_assert_eq!(t.events, 0);
        prop_assert_eq!(t.delay_ns, 0.0);
    }

    /// Functional evaluation is pure: same inputs, same outputs, in any
    /// evaluation order.
    #[test]
    fn functional_sim_is_pure(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let inputs = GEN_INPUTS;
        let (n, outs) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let mut sim = FuncSim::new(&n, &topo);
        sim.eval(&input_vector(a, inputs)).unwrap();
        let first: Vec<Logic> = outs.iter().map(|&o| sim.value(o)).collect();
        sim.eval(&input_vector(b, inputs)).unwrap();
        sim.eval(&input_vector(a, inputs)).unwrap();
        let second: Vec<Logic> = outs.iter().map(|&o| sim.value(o)).collect();
        prop_assert_eq!(first, second);
    }

    /// Toggle counters are consistent: per-gate counts sum to the totals
    /// reported per step.
    #[test]
    fn toggle_counters_reconcile(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        seqs in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let inputs = GEN_INPUTS;
        let (n, _) = build(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut sim = EventSim::new(&n, &topo, delays);
        sim.settle(&input_vector(0, inputs)).unwrap();
        let mut reported = 0u64;
        for &bits in &seqs {
            reported += sim.step(&input_vector(bits, inputs)).unwrap().gate_toggles;
        }
        let counted: u64 = sim.gate_toggle_counts().iter().sum();
        prop_assert_eq!(reported, counted);
    }
}
