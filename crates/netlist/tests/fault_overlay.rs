//! Property tests for the fault-injection overlay.
//!
//! Two guarantees back the campaign subsystem:
//!
//! 1. **Zero-fault identity** — an *empty* overlay run is bit-identical to
//!    the fault-free simulators on every net (and every lane, for
//!    `BatchSim`). A campaign with no injected faults therefore reproduces
//!    the plain simulation exactly.
//! 2. **Lane/scalar agreement** — a fault masked to lane `i` of a batch
//!    produces, on that lane, exactly what the scalar `FuncSim` produces
//!    with the same fault on its (lane-0) view, while every other lane
//!    stays fault-free.

use agemul_logic::{GateKind, Logic};
use agemul_netlist::{BatchSim, FaultKind, FaultOverlay, FuncSim, NetId, Netlist};
use proptest::prelude::*;

/// Recipe for one random gate (same scheme as `batch_equiv.rs`).
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    picks: [u16; 3],
}

fn arb_gate() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(k, a, b, c)| GateRecipe {
        kind_sel: k,
        picks: [a, b, c],
    })
}

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::Z),
        Just(Logic::X),
    ]
}

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StuckAt0),
        Just(FaultKind::StuckAt1),
        Just(FaultKind::Flip),
    ]
}

fn build(recipes: &[GateRecipe], inputs: usize) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    nets.push(n.const_zero());
    nets.push(n.const_one());
    for r in recipes {
        let pick = |p: u16| nets[p as usize % nets.len()];
        let kind = match r.kind_sel % 10 {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            8 => GateKind::Mux2,
            _ => GateKind::Tbuf,
        };
        let ins: Vec<NetId> = match kind.fixed_arity() {
            Some(1) => vec![pick(r.picks[0])],
            Some(3) => vec![pick(r.picks[0]), pick(r.picks[1]), pick(r.picks[2])],
            _ => vec![pick(r.picks[0]), pick(r.picks[1])],
        };
        let out = n.add_gate(kind, &ins).expect("recipe inputs are valid");
        nets.push(out);
    }
    for (i, &o) in nets.iter().rev().take(4).enumerate() {
        n.mark_output(o, format!("o{i}"));
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An empty overlay is bit-identical to the fault-free simulators on
    /// every net and every lane — the zero-fault campaign guarantee.
    #[test]
    fn empty_overlay_is_bit_identical(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..65,
        ),
    ) {
        let patterns = &patterns[..patterns.len().min(64)];
        let n = build(&recipes, 6);
        let topo = n.topology().unwrap();
        let overlay = FaultOverlay::new(&n);
        prop_assert!(overlay.is_empty());

        let mut plain_batch = BatchSim::new(&n, &topo);
        let mut fault_batch = BatchSim::new(&n, &topo);
        plain_batch.eval_batch(patterns).unwrap();
        fault_batch.eval_batch_with_overlay(patterns, &overlay).unwrap();
        prop_assert_eq!(plain_batch.blocks(), fault_batch.blocks());

        let mut plain = FuncSim::new(&n, &topo);
        let mut faulted = FuncSim::new(&n, &topo);
        for p in patterns {
            plain.eval(p).unwrap();
            faulted.eval_with_overlay(p, &overlay).unwrap();
            prop_assert_eq!(plain.values(), faulted.values());
        }
    }

    /// A fault masked to one batch lane reproduces, on that lane, the
    /// scalar simulator's view of the same fault — and leaves every other
    /// lane bit-identical to the fault-free run.
    #[test]
    fn lane_masked_fault_matches_scalar_and_isolates_lanes(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..33,
        ),
        net_pick in any::<u16>(),
        kind in arb_fault_kind(),
        lane_pick in any::<u8>(),
    ) {
        let n = build(&recipes, 6);
        let topo = n.topology().unwrap();
        let net = NetId::from_index(net_pick as usize % n.net_count());
        let lane = lane_pick as usize % patterns.len();

        // Batch overlay: the fault on `lane` only.
        let mut batch_overlay = FaultOverlay::new(&n);
        batch_overlay.add(net, kind, 1u64 << lane).unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        batch.eval_batch_with_overlay(&patterns, &batch_overlay).unwrap();

        // Scalar overlay: the same fault on the lane-0 view.
        let mut scalar_overlay = FaultOverlay::new(&n);
        scalar_overlay.add(net, kind, 1).unwrap();
        let mut scalar = FuncSim::new(&n, &topo);
        let mut clean = FuncSim::new(&n, &topo);

        for (i, p) in patterns.iter().enumerate() {
            if i == lane {
                scalar.eval_with_overlay(p, &scalar_overlay).unwrap();
                for (idx, &expected) in scalar.values().iter().enumerate() {
                    prop_assert_eq!(
                        batch.blocks()[idx].get(i),
                        expected,
                        "faulted lane: net {} lane {}", idx, i
                    );
                }
            } else {
                clean.eval(p).unwrap();
                for (idx, &expected) in clean.values().iter().enumerate() {
                    prop_assert_eq!(
                        batch.blocks()[idx].get(i),
                        expected,
                        "clean lane: net {} lane {}", idx, i
                    );
                }
            }
        }
    }
}
