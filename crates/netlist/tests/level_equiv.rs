//! Femtosecond bit-identity of `LevelSim` against `EventSim`.
//!
//! The levelized kernel replaces the priority-queue simulator on the
//! profiling hot path, so its contract is *exact* equivalence, not
//! approximate agreement: for every circuit, every vector sequence, every
//! delay assignment (uniform, aged factors, per-gate inflation), and every
//! fault overlay, both kernels must report identical [`PatternTiming`]
//! (femtosecond-derived delays compare with `==`), identical settled values
//! on **every** net, and identical cumulative per-gate toggle counters.

use agemul_conformance::gen::{arb_gate, build_netlist, input_vector, GEN_INPUTS};
use agemul_logic::DelayModel;
use agemul_netlist::{
    DelayAssignment, EventSim, FaultKind, FaultOverlay, GateId, LevelSim, NetId, Netlist,
};
use proptest::prelude::*;
fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StuckAt0),
        Just(FaultKind::StuckAt1),
        Just(FaultKind::Flip),
    ]
}

/// Steps both kernels through `seqs` and asserts full-state identity after
/// every step: timing, every net value, cumulative toggle counters.
fn assert_locked_steps(
    n: &Netlist,
    level: &mut LevelSim,
    event: &mut EventSim,
    inputs: usize,
    seqs: &[u64],
) {
    for &bits in seqs {
        let v = input_vector(bits, inputs);
        let tl = level.step(&v).unwrap();
        let te = event.step(&v).unwrap();
        prop_assert_eq!(tl, te, "timing diverged on bits {:#x}", bits);
        for idx in 0..n.net_count() {
            let net = NetId::from_index(idx);
            prop_assert_eq!(
                level.value(net),
                event.value(net),
                "net {} diverged on bits {:#x}",
                idx,
                bits
            );
        }
        prop_assert_eq!(level.gate_toggle_counts(), event.gate_toggle_counts());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Uniform nominal delays: both kernels agree femtosecond-for-
    /// femtosecond across whole vector sequences (the incremental cone
    /// path is exercised by every partial bit change in the sequence).
    #[test]
    fn level_sim_matches_event_sim_on_random_circuits(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        seqs in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let mut level = LevelSim::new(&n, &topo, delays.clone());
        let mut event = EventSim::new(&n, &topo, delays);
        assert_locked_steps(&n, &mut level, &mut event, inputs, &seqs);
    }

    /// Aged per-gate factors plus a localized inflation hot spot — the
    /// delay-fault shapes the campaigns replay — keep the kernels locked.
    #[test]
    fn level_sim_matches_event_sim_under_aged_and_inflated_delays(
        recipes in proptest::collection::vec(arb_gate(), 1..50),
        seqs in proptest::collection::vec(any::<u64>(), 1..8),
        factor_seed in proptest::collection::vec(0.5f64..4.0, 1..50),
        hot_gate in any::<u16>(),
        hot_factor in 1.0f64..20.0,
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let factors: Vec<f64> = (0..n.gate_count())
            .map(|g| factor_seed[g % factor_seed.len()])
            .collect();
        let mut delays =
            DelayAssignment::with_factors(&n, &DelayModel::nominal(), &factors).unwrap();
        delays.inflate(GateId::from_index(hot_gate as usize % n.gate_count()), hot_factor);
        let mut level = LevelSim::new(&n, &topo, delays.clone());
        let mut event = EventSim::new(&n, &topo, delays);
        assert_locked_steps(&n, &mut level, &mut event, inputs, &seqs);
    }

    /// Fault overlays (stuck-at / flip on a random net) coerce both kernels
    /// identically, including the re-initialization on attach and detach.
    #[test]
    fn level_sim_matches_event_sim_under_fault_overlay(
        recipes in proptest::collection::vec(arb_gate(), 1..50),
        seqs in proptest::collection::vec(any::<u64>(), 1..8),
        net_pick in any::<u16>(),
        kind in arb_fault_kind(),
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();
        let delays = DelayAssignment::uniform(&n, &DelayModel::nominal());
        let net = NetId::from_index(net_pick as usize % n.net_count());
        let mut overlay = FaultOverlay::new(&n);
        overlay.add(net, kind, 1).unwrap();

        let mut level = LevelSim::new(&n, &topo, delays.clone());
        let mut event = EventSim::new(&n, &topo, delays);
        level.set_fault_overlay(overlay.clone());
        event.set_fault_overlay(overlay);
        assert_locked_steps(&n, &mut level, &mut event, inputs, &seqs);

        // Detach: the faulted state must re-initialize identically too.
        level.clear_fault_overlay();
        event.clear_fault_overlay();
        assert_locked_steps(&n, &mut level, &mut event, inputs, &seqs);
    }
}
