//! Property tests: `BatchSim` is lane-for-lane equivalent to `FuncSim`.
//!
//! Random well-formed DAG netlists covering every `GateKind` — including
//! tri-state buffers that float to `Z` and muxes masking unknown branches —
//! are driven with random batches of up to 64 four-valued patterns, and
//! every net of every lane is compared against a scalar `FuncSim` run of
//! the same pattern.

use agemul_conformance::gen::{arb_gate, build_netlist, GateRecipe, GEN_INPUTS};
use agemul_logic::Logic;
use agemul_netlist::{BatchSim, FuncSim, NetlistError};
use proptest::prelude::*;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::Z),
        Just(Logic::X),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every net of every lane matches the scalar simulator — the
    /// headline equivalence guarantee, over fully four-valued inputs.
    #[test]
    fn batch_matches_scalar_on_every_net_and_lane(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..65,
        ),
    ) {
        let patterns = &patterns[..patterns.len().min(64)];
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        prop_assert_eq!(batch.eval_batch(patterns).unwrap(), patterns.len());

        let mut scalar = FuncSim::new(&n, &topo);
        for (lane, p) in patterns.iter().enumerate() {
            scalar.eval(p).unwrap();
            for (idx, &expected) in scalar.values().iter().enumerate() {
                let got = batch.blocks()[idx].get(lane);
                prop_assert_eq!(
                    got, expected,
                    "net {} lane {} pattern {:?}", idx, lane, p
                );
            }
        }
    }

    /// The batched signal-probability accumulator agrees exactly with the
    /// scalar `high_weight` sum (weights are multiples of 0.5, so this is
    /// an exact f64 comparison, not approximate).
    #[test]
    fn batch_high_weight_is_exact(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..65,
        ),
    ) {
        let patterns = &patterns[..patterns.len().min(64)];
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        batch.eval_batch(patterns).unwrap();

        let mut scalar = FuncSim::new(&n, &topo);
        let mut expected = vec![0.0f64; n.net_count()];
        for p in patterns {
            scalar.eval(p).unwrap();
            for (idx, v) in scalar.values().iter().enumerate() {
                expected[idx] += v.high_weight();
            }
        }
        for (idx, &e) in expected.iter().enumerate() {
            prop_assert_eq!(
                batch.blocks()[idx].high_weight_sum(batch.lanes()),
                e,
                "net {}", idx
            );
        }
    }

    /// `BatchSim::write_outputs` agrees with `FuncSim::write_outputs`
    /// (both non-allocating paths) on every lane.
    #[test]
    fn batched_outputs_match_scalar_outputs(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..33,
        ),
    ) {
        let inputs = GEN_INPUTS;
        let n = build_netlist(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        batch.eval_batch(&patterns).unwrap();

        let mut scalar = FuncSim::new(&n, &topo);
        let mut got = vec![Logic::X; n.output_count()];
        let mut expected = vec![Logic::X; n.output_count()];
        for (lane, p) in patterns.iter().enumerate() {
            scalar.eval(p).unwrap();
            scalar.write_outputs(&mut expected).unwrap();
            batch.write_outputs(lane, &mut got).unwrap();
            prop_assert_eq!(&got, &expected, "lane {}", lane);
        }
    }

    /// Oversized batches are rejected, never truncated silently.
    #[test]
    fn oversized_batches_error(extra in 1usize..16) {
        let n = build_netlist(&[GateRecipe { kind_sel: 6, picks: [0, 1, 2] }], GEN_INPUTS);
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let patterns = vec![vec![Logic::Zero; GEN_INPUTS]; 64 + extra];
        prop_assert_eq!(
            batch.eval_batch(&patterns).unwrap_err(),
            NetlistError::BatchSize { got: 64 + extra }
        );
    }
}
