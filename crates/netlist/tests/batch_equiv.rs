//! Property tests: `BatchSim` is lane-for-lane equivalent to `FuncSim`.
//!
//! Random well-formed DAG netlists covering every `GateKind` — including
//! tri-state buffers that float to `Z` and muxes masking unknown branches —
//! are driven with random batches of up to 64 four-valued patterns, and
//! every net of every lane is compared against a scalar `FuncSim` run of
//! the same pattern.

use agemul_logic::{GateKind, Logic};
use agemul_netlist::{BatchSim, FuncSim, NetId, Netlist, NetlistError};
use proptest::prelude::*;

/// Recipe for one random gate (same scheme as `random_circuits.rs`): kind
/// selector and input picks modulo the nets available at build time.
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    picks: [u16; 3],
}

fn arb_gate() -> impl Strategy<Value = GateRecipe> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(k, a, b, c)| GateRecipe {
        kind_sel: k,
        picks: [a, b, c],
    })
}

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::Z),
        Just(Logic::X),
    ]
}

fn build(recipes: &[GateRecipe], inputs: usize) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    nets.push(n.const_zero());
    nets.push(n.const_one());
    for r in recipes {
        let pick = |p: u16| nets[p as usize % nets.len()];
        let kind = match r.kind_sel % 10 {
            0 => GateKind::Buf,
            1 => GateKind::Not,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            8 => GateKind::Mux2,
            _ => GateKind::Tbuf,
        };
        let ins: Vec<NetId> = match kind.fixed_arity() {
            Some(1) => vec![pick(r.picks[0])],
            Some(3) => vec![pick(r.picks[0]), pick(r.picks[1]), pick(r.picks[2])],
            _ => vec![pick(r.picks[0]), pick(r.picks[1])],
        };
        let out = n.add_gate(kind, &ins).expect("recipe inputs are valid");
        nets.push(out);
    }
    for (i, &o) in nets.iter().rev().take(4).enumerate() {
        n.mark_output(o, format!("o{i}"));
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every net of every lane matches the scalar simulator — the
    /// headline equivalence guarantee, over fully four-valued inputs.
    #[test]
    fn batch_matches_scalar_on_every_net_and_lane(
        recipes in proptest::collection::vec(arb_gate(), 1..60),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..65,
        ),
    ) {
        let patterns = &patterns[..patterns.len().min(64)];
        let inputs = 6;
        let n = build(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        prop_assert_eq!(batch.eval_batch(patterns).unwrap(), patterns.len());

        let mut scalar = FuncSim::new(&n, &topo);
        for (lane, p) in patterns.iter().enumerate() {
            scalar.eval(p).unwrap();
            for (idx, &expected) in scalar.values().iter().enumerate() {
                let got = batch.words()[idx].get(lane);
                prop_assert_eq!(
                    got, expected,
                    "net {} lane {} pattern {:?}", idx, lane, p
                );
            }
        }
    }

    /// The batched signal-probability accumulator agrees exactly with the
    /// scalar `high_weight` sum (weights are multiples of 0.5, so this is
    /// an exact f64 comparison, not approximate).
    #[test]
    fn batch_high_weight_is_exact(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..65,
        ),
    ) {
        let patterns = &patterns[..patterns.len().min(64)];
        let inputs = 6;
        let n = build(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        batch.eval_batch(patterns).unwrap();

        let mut scalar = FuncSim::new(&n, &topo);
        let mut expected = vec![0.0f64; n.net_count()];
        for p in patterns {
            scalar.eval(p).unwrap();
            for (idx, v) in scalar.values().iter().enumerate() {
                expected[idx] += v.high_weight();
            }
        }
        for (idx, &e) in expected.iter().enumerate() {
            prop_assert_eq!(
                batch.words()[idx].high_weight_sum(batch.lanes()),
                e,
                "net {}", idx
            );
        }
    }

    /// `BatchSim::write_outputs` agrees with `FuncSim::write_outputs`
    /// (both non-allocating paths) on every lane.
    #[test]
    fn batched_outputs_match_scalar_outputs(
        recipes in proptest::collection::vec(arb_gate(), 1..40),
        patterns in proptest::collection::vec(
            proptest::collection::vec(arb_logic(), 6),
            1..33,
        ),
    ) {
        let inputs = 6;
        let n = build(&recipes, inputs);
        let topo = n.topology().unwrap();

        let mut batch = BatchSim::new(&n, &topo);
        batch.eval_batch(&patterns).unwrap();

        let mut scalar = FuncSim::new(&n, &topo);
        let mut got = vec![Logic::X; n.output_count()];
        let mut expected = vec![Logic::X; n.output_count()];
        for (lane, p) in patterns.iter().enumerate() {
            scalar.eval(p).unwrap();
            scalar.write_outputs(&mut expected).unwrap();
            batch.write_outputs(lane, &mut got).unwrap();
            prop_assert_eq!(&got, &expected, "lane {}", lane);
        }
    }

    /// Oversized batches are rejected, never truncated silently.
    #[test]
    fn oversized_batches_error(extra in 1usize..16) {
        let n = build(&[GateRecipe { kind_sel: 6, picks: [0, 1, 2] }], 6);
        let topo = n.topology().unwrap();
        let mut batch = BatchSim::new(&n, &topo);
        let patterns = vec![vec![Logic::Zero; 6]; 64 + extra];
        prop_assert_eq!(
            batch.eval_batch(&patterns).unwrap_err(),
            NetlistError::BatchSize { got: 64 + extra }
        );
    }
}
