//! The reaction–diffusion BTI model (paper Eqs. 1–2).

use agemul_logic::Technology;

/// Seconds in a (Julian) year, used to convert the experiment timescale.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// The ac reaction–diffusion BTI model with alpha-power-law delay mapping.
///
/// Threshold drift follows the paper's Eq. (1):
///
/// ```text
/// ΔVth(t) ≈ α(S) · K_DC · tⁿ,     α(S) = Sⁿ
/// ```
///
/// where `S` is the stress signal probability, `n` the RD time exponent
/// (1/6 for H₂ diffusion), and `K_DC` the technology constant of Eq. (2):
///
/// ```text
/// K_DC = A · T_OX · √(C_OX (V_GS − V_th)) · (1 − V_DS/(α_sat(V_GS−V_th)))
///        · exp(E_OX / E₀) · exp(−E_a / kT)
/// ```
///
/// Delay degradation uses the alpha-power law: a gate's drive current goes
/// as `(V_DD − V_th)^α`, so its delay grows by
/// `((V_DD − V_th0) / (V_DD − V_th0 − ΔVth))^α`.
///
/// On 32 nm high-k/metal-gate processes PBTI (nMOS) is comparable to NBTI
/// (pMOS) — the paper's premise — so the model treats the two symmetrically:
/// the pull-up stresses while the output is high (probability `S`), the
/// pull-down while it is low (probability `1 − S`), and
/// [`delay_factor`](BtiModel::delay_factor) averages the rising and falling
/// edge degradations.
///
/// The absolute constant `A` is not meaningfully known outside a fab; use
/// [`BtiModel::calibrated`] to pin it to the paper's observable — ≈13 %
/// critical-path growth after seven years (Fig. 7).
#[derive(Clone, Debug, PartialEq)]
pub struct BtiModel {
    tech: Technology,
    a_const: f64,
}

impl BtiModel {
    /// Creates a model with an explicit Eq.-2 pre-factor `A`
    /// (volts · cm^(−1/2) · F^(−1/2) · s^(−n) scale, absorbed).
    ///
    /// # Panics
    ///
    /// Panics if `a_const` is not finite and non-negative.
    pub fn new(tech: Technology, a_const: f64) -> Self {
        assert!(
            a_const.is_finite() && a_const >= 0.0,
            "A constant must be finite and non-negative, got {a_const}"
        );
        BtiModel { tech, a_const }
    }

    /// Calibrates `A` so that a reference gate with stress probability 0.5
    /// exhibits exactly `seven_year_delay_factor` after seven years.
    ///
    /// The paper's Fig. 7 reports ≈13 % for the 16×16 bypassing
    /// multipliers, so `BtiModel::calibrated(tech, 1.13)` is the standard
    /// configuration throughout this repository.
    ///
    /// # Panics
    ///
    /// Panics if `seven_year_delay_factor ≤ 1` or is not finite, or if it
    /// implies ΔVth beyond the overdrive voltage.
    pub fn calibrated(tech: Technology, seven_year_delay_factor: f64) -> Self {
        assert!(
            seven_year_delay_factor.is_finite() && seven_year_delay_factor > 1.0,
            "delay factor must exceed 1, got {seven_year_delay_factor}"
        );
        // Invert the alpha-power law for the target ΔVth…
        let overdrive = tech.overdrive_v();
        let dvth = overdrive * (1.0 - seven_year_delay_factor.powf(-1.0 / tech.alpha_power));
        assert!(
            dvth < overdrive,
            "unreachable target delay factor {seven_year_delay_factor}"
        );
        // …then divide out everything except A.
        let probe = BtiModel::new(tech.clone(), 1.0);
        let unit = probe.delta_vth_v(7.0, 0.5);
        BtiModel::new(tech, dvth / unit)
    }

    /// The underlying technology constants.
    #[inline]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The K_DC constant of Eq. (2) for this technology and `A`.
    pub fn kdc(&self) -> f64 {
        let t = &self.tech;
        let overdrive = t.overdrive_v();
        // Velocity-saturation correction (1 − V_DS / (α_sat · overdrive)):
        // with V_DS at half rail and α_sat ≈ 1.3 this is a constant < 1.
        let vds = 0.5 * t.vdd_v;
        let sat = (1.0 - vds / (t.alpha_power * overdrive)).max(0.05);
        self.a_const
            * t.tox_cm
            * (t.cox_f_per_cm2 * overdrive).sqrt()
            * sat
            * (t.eox_v_per_cm() / t.e0_v_per_cm).exp()
            * (-t.ea_ev / t.kt_ev()).exp()
    }

    /// Threshold-voltage drift after `years` under stress probability
    /// `stress` (Eq. 1 with `α(S) = Sⁿ`), in volts.
    ///
    /// # Panics
    ///
    /// Panics if `years` is negative/non-finite or `stress` outside `[0,1]`.
    pub fn delta_vth_v(&self, years: f64, stress: f64) -> f64 {
        assert!(
            years.is_finite() && years >= 0.0,
            "years must be finite and non-negative, got {years}"
        );
        assert!(
            (0.0..=1.0).contains(&stress),
            "stress probability must be in [0, 1], got {stress}"
        );
        let n = self.tech.time_exponent;
        let t_sec = years * SECONDS_PER_YEAR;
        // α(S)·tⁿ = (S·t)ⁿ — the RD model's effective-stress-time form.
        self.kdc() * (stress * t_sec).powf(n)
    }

    /// The delay growth factor of a single transistor network whose
    /// threshold drifted by `delta_vth_v` (alpha-power law), ≥ 1.
    ///
    /// Saturates (rather than diverging) once ΔVth consumes 90 % of the
    /// overdrive, so extreme extrapolations stay finite.
    pub fn delay_factor_from_dvth(&self, delta_vth_v: f64) -> f64 {
        let overdrive = self.tech.overdrive_v();
        let dv = delta_vth_v.clamp(0.0, 0.9 * overdrive);
        (overdrive / (overdrive - dv)).powf(self.tech.alpha_power)
    }

    /// The gate-delay growth factor after `years` for a gate whose output
    /// sits high with probability `p_high`.
    ///
    /// The pull-up pMOS network is NBTI-stressed while the output is high
    /// (it is the conducting side), the pull-down nMOS network is
    /// PBTI-stressed while the output is low; rising and falling edges each
    /// see one network, so the path-level factor is the mean of the two.
    ///
    /// # Panics
    ///
    /// Panics on invalid `years` or `p_high` (see
    /// [`delta_vth_v`](Self::delta_vth_v)).
    pub fn delay_factor(&self, years: f64, p_high: f64) -> f64 {
        let up = self.delay_factor_from_dvth(self.delta_vth_v(years, p_high));
        let down = self.delay_factor_from_dvth(self.delta_vth_v(years, 1.0 - p_high));
        0.5 * (up + down)
    }

    /// Threshold drift expressed as a fraction of the zero-time overdrive —
    /// handy for the power model's leakage/current scaling.
    pub fn overdrive_loss(&self, years: f64, p_high: f64) -> f64 {
        let dv = 0.5 * (self.delta_vth_v(years, p_high) + self.delta_vth_v(years, 1.0 - p_high));
        (dv / self.tech.overdrive_v()).clamp(0.0, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BtiModel {
        BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13)
    }

    #[test]
    fn calibration_hits_target() {
        let m = model();
        assert!((m.delay_factor(7.0, 0.5) - 1.13).abs() < 1e-9);
    }

    #[test]
    fn zero_time_means_no_aging() {
        let m = model();
        assert_eq!(m.delta_vth_v(0.0, 0.5), 0.0);
        assert!((m.delay_factor(0.0, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_time() {
        let m = model();
        let mut last = 1.0;
        for y in 1..=10 {
            let f = m.delay_factor(y as f64, 0.5);
            assert!(f > last, "year {y}: {f} ≤ {last}");
            last = f;
        }
    }

    #[test]
    fn sublinear_time_exponent() {
        // tⁿ with n = 1/6: doubling time grows ΔVth by 2^(1/6) ≈ 1.122.
        let m = model();
        let r = m.delta_vth_v(2.0, 0.5) / m.delta_vth_v(1.0, 0.5);
        assert!((r - 2f64.powf(1.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn stress_extremes_balance_out() {
        // A gate stuck high ages its pull-up maximally and its pull-down
        // not at all; by symmetry the mean factor equals the stuck-low one.
        let m = model();
        let hi = m.delay_factor(7.0, 1.0);
        let lo = m.delay_factor(7.0, 0.0);
        assert!((hi - lo).abs() < 1e-12);
        // α(S) = Sⁿ is extremely flat (n = 1/6): a half-duty network ages
        // to 89 % of the always-on drift, so a *balanced* gate — both of
        // whose networks stress half the time — averages worse than a
        // stuck gate, which ages only one network.
        assert!(m.delay_factor(7.0, 0.5) > hi);
    }

    #[test]
    fn hotter_is_worse() {
        let cool = BtiModel::new(Technology::ptm_32nm_hk().at_temperature(300.0), 1.0);
        let hot = BtiModel::new(Technology::ptm_32nm_hk(), 1.0); // 398 K
        assert!(hot.kdc() > cool.kdc());
    }

    #[test]
    fn delay_factor_saturates() {
        let m = BtiModel::new(Technology::ptm_32nm_hk(), 1e6);
        let f = m.delay_factor(1000.0, 1.0);
        assert!(f.is_finite());
    }

    #[test]
    fn overdrive_loss_bounds() {
        let m = model();
        for y in [0.0, 3.0, 7.0] {
            let l = m.overdrive_loss(y, 0.5);
            assert!((0.0..=0.9).contains(&l), "year {y}: {l}");
        }
    }

    #[test]
    #[should_panic(expected = "stress probability")]
    fn rejects_bad_stress() {
        let _ = model().delta_vth_v(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "delay factor must exceed 1")]
    fn rejects_bad_calibration() {
        let _ = BtiModel::calibrated(Technology::ptm_32nm_hk(), 0.9);
    }

    #[test]
    fn seven_year_drift_is_plausible_millivolts() {
        // The calibrated ΔVth at seven years should be tens of millivolts —
        // the range NBTI literature reports for 32 nm-class nodes.
        let m = model();
        let dv = m.delta_vth_v(7.0, 0.5);
        assert!((0.01..=0.12).contains(&dv), "ΔVth = {dv} V");
    }
}
