//! Process-variation delay factors (extension).
//!
//! The paper's related work ([19], Mohapatra et al.) builds
//! variation-tolerant arithmetic on the same elastic-clocking idea the AHL
//! uses for aging. This module supplies the missing ingredient: per-gate
//! *time-zero* delay variation, modeled as independent lognormal factors
//! `exp(N(0, σ))` — the standard first-order treatment of random Vth and
//! channel-length variation. The factors compose multiplicatively with the
//! BTI and electromigration factors.

use agemul_netlist::Netlist;

/// A lognormal per-gate delay variation model.
///
/// Deterministic: the same `(netlist, seed)` pair always produces the same
/// factors (SplitMix64 + Box–Muller, no external RNG dependency).
///
/// # Example
///
/// ```
/// use agemul_aging::VariationModel;
/// use agemul_circuits::{MultiplierCircuit, MultiplierKind};
///
/// let m = MultiplierCircuit::generate(MultiplierKind::Array, 8)?;
/// let var = VariationModel::new(0.05); // σ = 5 %
/// let f = var.factors(m.netlist(), 42);
/// assert_eq!(f.len(), m.netlist().gate_count());
/// assert!(f.iter().all(|&x| x > 0.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariationModel {
    sigma: f64,
}

impl VariationModel {
    /// Creates a model with lognormal σ (0 = no variation).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative, got {sigma}"
        );
        VariationModel { sigma }
    }

    /// The configured σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Samples one delay factor per gate instance.
    pub fn factors(&self, netlist: &Netlist, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..netlist.gate_count())
            .map(|_| (self.sigma * rng.standard_normal()).exp())
            .collect()
    }
}

/// SplitMix64 with a Box–Muller Gaussian tap.
struct SplitMix64 {
    state: u64,
    cached: Option<f64>,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed,
            cached: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let u1 = self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use agemul_logic::GateKind;
    use agemul_netlist::Netlist;

    use super::*;

    fn chain(len: usize) -> Netlist {
        let mut n = Netlist::new();
        let mut x = n.add_input("a");
        for _ in 0..len {
            x = n.add_gate(GateKind::Not, &[x]).unwrap();
        }
        n.mark_output(x, "y");
        n
    }

    #[test]
    fn zero_sigma_is_identity() {
        let n = chain(50);
        let f = VariationModel::new(0.0).factors(&n, 1);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deterministic_per_seed() {
        let n = chain(100);
        let m = VariationModel::new(0.1);
        assert_eq!(m.factors(&n, 7), m.factors(&n, 7));
        assert_ne!(m.factors(&n, 7), m.factors(&n, 8));
    }

    /// The Monte Carlo contract: same seed ⇒ bit-identical factors (the
    /// retimed and from-scratch campaign paths both rely on this), and
    /// every distinct seed ⇒ a distinct stream — including consecutive
    /// seeds, which sit one SplitMix64 gamma apart and would overlap if a
    /// caller walked the raw state instead of reseeding.
    #[test]
    fn seed_streams_are_bit_stable_and_pairwise_distinct() {
        let n = chain(200);
        let m = VariationModel::new(0.08);
        let seeds = [0u64, 1, 2, 7, u64::MAX, 0x9E37_79B9_7F4A_7C15];
        let streams: Vec<Vec<u64>> = seeds
            .iter()
            .map(|&s| m.factors(&n, s).iter().map(|f| f.to_bits()).collect())
            .collect();
        for (i, &seed) in seeds.iter().enumerate() {
            let replay: Vec<u64> = m.factors(&n, seed).iter().map(|f| f.to_bits()).collect();
            assert_eq!(streams[i], replay, "seed {seed} not bit-stable");
            for j in 0..i {
                assert_ne!(
                    streams[i], streams[j],
                    "seeds {seed} and {} collide",
                    seeds[j]
                );
            }
        }
    }

    #[test]
    fn distribution_moments_are_plausible() {
        let n = chain(4000);
        let f = VariationModel::new(0.1).factors(&n, 3);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        // Lognormal mean = exp(σ²/2) ≈ 1.005 for σ = 0.1.
        assert!((mean - 1.005).abs() < 0.01, "mean {mean}");
        let var = f.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / f.len() as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn larger_sigma_spreads_more() {
        let n = chain(2000);
        let spread = |sigma: f64| {
            let f = VariationModel::new(sigma).factors(&n, 5);
            let lo = f.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = f.iter().copied().fold(0.0f64, f64::max);
            hi - lo
        };
        assert!(spread(0.15) > spread(0.05));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_sigma() {
        let _ = VariationModel::new(-0.1);
    }
}
