//! Per-gate stress extraction and netlist-wide aging factors.

use agemul_netlist::{Netlist, WorkloadStats};

use crate::BtiModel;

/// Extracts each gate's output-high probability from workload statistics.
///
/// The returned vector is indexable by [`agemul_netlist::GateId::index`] and is the `S`
/// input of the BTI model: the pull-up network is NBTI-stressed while the
/// output is high, the pull-down PBTI-stressed while it is low.
pub fn stress_probabilities(netlist: &Netlist, stats: &WorkloadStats) -> Vec<f64> {
    netlist
        .gates()
        .iter()
        .map(|g| stats.net_high_probability(g.output()))
        .collect()
}

/// Computes per-gate-instance delay degradation factors after `years` of
/// operation under the workload summarized by `stats`.
///
/// The result plugs into
/// [`agemul_netlist::DelayAssignment::with_factors`] to build an aged
/// timing view of the circuit. Gates that the workload never exercises
/// still age (their stress probability defaults to the 0.5 prior), which
/// mirrors the paper's static/dynamic BTI distinction: an idle gate held at
/// a fixed level experiences *static* stress on one network.
///
/// # Example
///
/// ```
/// use agemul_aging::{aging_factors, BtiModel};
/// use agemul_logic::{GateKind, Logic, Technology};
/// use agemul_netlist::{Netlist, WorkloadStats};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let y = n.add_gate(GateKind::Not, &[a])?;
/// n.mark_output(y, "y");
/// let topo = n.topology()?;
///
/// let mut stats = WorkloadStats::new(&n);
/// stats.observe_patterns(&n, &topo, [[Logic::Zero], [Logic::One]])?;
///
/// let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
/// let factors = aging_factors(&n, &stats, &model, 7.0);
/// assert_eq!(factors.len(), 1);
/// assert!(factors[0] > 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn aging_factors(
    netlist: &Netlist,
    stats: &WorkloadStats,
    model: &BtiModel,
    years: f64,
) -> Vec<f64> {
    stress_probabilities(netlist, stats)
        .into_iter()
        .map(|p_high| model.delay_factor(years, p_high))
        .collect()
}

/// Convenience: the single delay factor of the most-stressed gate — an
/// upper bound on how much any path can stretch.
pub fn worst_gate_factor(factors: &[f64]) -> f64 {
    factors.iter().copied().fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use agemul_logic::{GateKind, Logic, Technology};
    use agemul_netlist::Netlist;

    use super::*;

    fn fixture() -> (Netlist, WorkloadStats) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let z = n.add_gate(GateKind::Or, &[a, b]).unwrap();
        n.mark_output(y, "y");
        n.mark_output(z, "z");
        let topo = n.topology().unwrap();
        let mut stats = WorkloadStats::new(&n);
        // Uniform two-bit workload: AND high 1/4, OR high 3/4.
        let pats = [
            [Logic::Zero, Logic::Zero],
            [Logic::Zero, Logic::One],
            [Logic::One, Logic::Zero],
            [Logic::One, Logic::One],
        ];
        stats.observe_patterns(&n, &topo, pats).unwrap();
        (n, stats)
    }

    #[test]
    fn stress_matches_output_probability() {
        let (n, stats) = fixture();
        let s = stress_probabilities(&n, &stats);
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!((s[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn factors_cover_all_gates_and_exceed_one() {
        let (n, stats) = fixture();
        let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
        let f = aging_factors(&n, &stats, &model, 7.0);
        assert_eq!(f.len(), n.gate_count());
        assert!(f.iter().all(|&x| x > 1.0));
    }

    #[test]
    fn skewed_duty_ages_slower_than_balanced() {
        // α(S) = Sⁿ with n = 1/6 is very flat, so the balanced gate (both
        // networks stressed half the time) has the worst *average* factor;
        // the skewed 0.25/0.75 pair sits strictly below it.
        let (n, stats) = fixture();
        let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
        let f = aging_factors(&n, &stats, &model, 7.0);
        let balanced = model.delay_factor(7.0, 0.5);
        assert!(f[0] < balanced);
        assert!(f[1] < balanced);
        // And by NBTI/PBTI symmetry the two complementary gates match.
        assert!((f[0] - f[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_years_is_identity() {
        let (n, stats) = fixture();
        let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
        let f = aging_factors(&n, &stats, &model, 0.0);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn worst_factor_is_max() {
        assert_eq!(worst_gate_factor(&[1.1, 1.3, 1.2]), 1.3);
        assert_eq!(worst_gate_factor(&[]), 1.0);
    }
}
