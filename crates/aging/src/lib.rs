//! NBTI/PBTI aging models and per-gate delay degradation.
//!
//! The paper's reliability story rests on bias temperature instability: a
//! pMOS transistor under negative bias (NBTI) — or, on 32 nm high-k/metal
//! gate processes, an nMOS under positive bias (PBTI) — accumulates
//! interface traps that raise its threshold voltage and slow the gate. This
//! crate reproduces the analytic chain the paper uses in place of silicon:
//!
//! 1. [`BtiModel`] — the reaction–diffusion framework of Eqs. (1)–(2):
//!    `ΔVth(t) ≈ α(S) · K_DC · tⁿ`, with `K_DC` assembled from the 32 nm
//!    technology constants ([`agemul_logic::Technology`]) and `α(S) = Sⁿ`
//!    capturing the ac stress/recovery duty cycle (effective stress time
//!    `S·t` under the RD model).
//! 2. The **alpha-power law** translating ΔVth into a gate-delay growth
//!    factor: `delay ∝ (V_DD − V_th)^{−α}`.
//! 3. [`aging_factors`] — per-gate-instance factors for a whole netlist,
//!    using workload-measured signal probabilities: NBTI stresses a gate's
//!    pull-up network while its output is high, PBTI the pull-down while it
//!    is low, and both transition edges matter, so the factor averages the
//!    two. The result plugs straight into
//!    [`agemul_netlist::DelayAssignment::with_factors`].
//! 4. [`electromigration`] — the paper's §V outlook: a simple
//!    current-density wire-aging extension that composes multiplicatively
//!    with BTI.
//!
//! The free constant `A` of Eq. (2) is fixed by [`BtiModel::calibrated`]
//! so that a reference gate (signal probability 0.5) degrades by the
//! paper's observed ≈13 % over seven years (Fig. 7).
//!
//! # Example
//!
//! ```
//! use agemul_aging::BtiModel;
//! use agemul_logic::Technology;
//!
//! let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
//! let f7 = model.delay_factor(7.0, 0.5);
//! assert!((f7 - 1.13).abs() < 1e-9);
//! assert!(model.delay_factor(1.0, 0.5) < f7); // monotone in time
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bti;
pub mod electromigration;
mod stress;
mod variation;

pub use bti::{BtiModel, SECONDS_PER_YEAR};
pub use stress::{aging_factors, stress_probabilities, worst_gate_factor};
pub use variation::VariationModel;
