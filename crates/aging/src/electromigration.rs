//! Electromigration wire-aging extension (paper §V outlook).
//!
//! The paper's conclusion notes that besides BTI, interconnect ages through
//! electromigration: sustained current density displaces metal ions, wires
//! narrow, resistance — and therefore RC delay — grows, and in the limit
//! the wire opens. The paper argues (without experiments) that the proposed
//! variable-latency multipliers tolerate this combined degradation better
//! than fixed-latency designs. This module provides the simple model used
//! by this repository's extension benches to test that claim.
//!
//! We model fractional wire-width loss as proportional to accumulated
//! charge flow — activity × time — with Black's-equation-like behaviour
//! folded into a single rate constant. The per-gate delay factor composes
//! multiplicatively with the BTI factor.

use agemul_netlist::{Netlist, WorkloadStats};

/// A first-order electromigration model.
///
/// `width_loss(t) = rate · activity · years` (clamped), and the wire's
/// resistance — hence its contribution to the gate's delay — scales as
/// `1 / (1 − width_loss)`.
///
/// # Example
///
/// ```
/// use agemul_aging::electromigration::EmModel;
///
/// let em = EmModel::new(0.004);
/// let f = em.delay_factor(7.0, 1.0);
/// assert!(f > 1.0 && f < 1.05);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EmModel {
    /// Fractional width loss per (toggle-per-pattern · year).
    rate_per_activity_year: f64,
}

impl EmModel {
    /// Creates a model with the given width-loss rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "electromigration rate must be finite and non-negative, got {rate}"
        );
        EmModel {
            rate_per_activity_year: rate,
        }
    }

    /// A default rate tuned so a continuously switching wire loses ≈3 % of
    /// its width over seven years — a mild, secondary effect next to BTI,
    /// as the paper's discussion implies.
    pub fn nominal() -> Self {
        EmModel::new(0.03 / 7.0)
    }

    /// Delay growth factor of a wire with the given switching `activity`
    /// (average toggles per pattern) after `years`.
    ///
    /// # Panics
    ///
    /// Panics if `years` or `activity` is negative or not finite.
    pub fn delay_factor(&self, years: f64, activity: f64) -> f64 {
        assert!(
            years.is_finite() && years >= 0.0,
            "years must be finite and non-negative, got {years}"
        );
        assert!(
            activity.is_finite() && activity >= 0.0,
            "activity must be finite and non-negative, got {activity}"
        );
        let loss = (self.rate_per_activity_year * activity * years).min(0.5);
        1.0 / (1.0 - loss)
    }

    /// Per-gate electromigration delay factors for a netlist, driven by the
    /// workload's recorded switching activity. Composes multiplicatively
    /// with [`crate::aging_factors`].
    pub fn wire_factors(&self, netlist: &Netlist, stats: &WorkloadStats, years: f64) -> Vec<f64> {
        (0..netlist.gate_count())
            .map(|i| {
                let activity = stats.gate_activity(agemul_netlist::GateId::from_index(i));
                self.delay_factor(years, activity)
            })
            .collect()
    }
}

impl Default for EmModel {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Composes two per-gate factor vectors multiplicatively.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn compose_factors(bti: &[f64], em: &[f64]) -> Vec<f64> {
    assert_eq!(bti.len(), em.len(), "factor vectors must align");
    bti.iter().zip(em).map(|(&a, &b)| a * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_wires_do_not_age() {
        let em = EmModel::nominal();
        assert_eq!(em.delay_factor(7.0, 0.0), 1.0);
    }

    #[test]
    fn busier_wires_age_faster() {
        let em = EmModel::nominal();
        assert!(em.delay_factor(7.0, 2.0) > em.delay_factor(7.0, 0.5));
    }

    #[test]
    fn loss_saturates() {
        let em = EmModel::new(10.0);
        let f = em.delay_factor(100.0, 10.0);
        assert!((f - 2.0).abs() < 1e-12); // 50 % loss cap → factor 2
    }

    #[test]
    fn nominal_seven_year_target() {
        let em = EmModel::nominal();
        let f = em.delay_factor(7.0, 1.0);
        assert!((f - 1.0 / 0.97).abs() < 1e-9);
    }

    #[test]
    fn composition_is_elementwise() {
        let c = compose_factors(&[1.1, 1.2], &[1.0, 1.5]);
        assert!((c[0] - 1.1).abs() < 1e-12);
        assert!((c[1] - 1.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn composition_checks_length() {
        let _ = compose_factors(&[1.0], &[1.0, 1.0]);
    }
}
