//! Integration: BTI aging applied to real multiplier circuits.

use agemul_aging::electromigration::{compose_factors, EmModel};
use agemul_aging::{aging_factors, stress_probabilities, worst_gate_factor, BtiModel};
use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::{DelayModel, Logic, Technology};
use agemul_netlist::{static_critical_path_ns, DelayAssignment, WorkloadStats};

fn workload_stats(m: &MultiplierCircuit, count: usize, seed: u64) -> WorkloadStats {
    let topo = m.netlist().topology().unwrap();
    let mut stats = WorkloadStats::new(m.netlist());
    let mut state = seed;
    let width = m.width();
    let mask = (1u64 << width) - 1;
    let patterns: Vec<Vec<Logic>> = (0..count)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 7) & mask;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 7) & mask;
            m.encode_inputs(a, b).unwrap()
        })
        .collect();
    stats
        .observe_patterns(m.netlist(), &topo, patterns.iter())
        .unwrap();
    stats
}

#[test]
fn stress_probabilities_are_physical() {
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
    let stats = workload_stats(&m, 400, 3);
    let probs = stress_probabilities(m.netlist(), &stats);
    assert_eq!(probs.len(), m.netlist().gate_count());
    assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    // A random workload must produce diverse duty cycles, not a constant.
    let lo = probs.iter().copied().fold(1.0f64, f64::min);
    let hi = probs.iter().copied().fold(0.0f64, f64::max);
    assert!(hi - lo > 0.3, "stress spread {lo}..{hi} too tight");
}

#[test]
fn static_critical_path_ages_within_gate_bounds() {
    let m = MultiplierCircuit::generate(MultiplierKind::RowBypass, 8).unwrap();
    let stats = workload_stats(&m, 300, 5);
    let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let factors = aging_factors(m.netlist(), &stats, &model, 7.0);

    let delays = DelayModel::nominal();
    let fresh =
        static_critical_path_ns(m.netlist(), &DelayAssignment::uniform(m.netlist(), &delays))
            .unwrap();
    let aged = static_critical_path_ns(
        m.netlist(),
        &DelayAssignment::with_factors(m.netlist(), &delays, &factors).unwrap(),
    )
    .unwrap();

    let growth = aged / fresh;
    let bound = worst_gate_factor(&factors);
    assert!(growth > 1.0, "no aging observed");
    assert!(
        growth <= bound + 1e-9,
        "path growth {growth} exceeds worst gate factor {bound}"
    );
}

#[test]
fn aging_is_monotone_across_years_on_circuit() {
    let m = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
    let stats = workload_stats(&m, 200, 9);
    let model = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let delays = DelayModel::nominal();
    let mut last = 0.0;
    for year in 0..=10 {
        let factors = aging_factors(m.netlist(), &stats, &model, f64::from(year));
        let crit = static_critical_path_ns(
            m.netlist(),
            &DelayAssignment::with_factors(m.netlist(), &delays, &factors).unwrap(),
        )
        .unwrap();
        assert!(crit >= last, "year {year}: {crit} < {last}");
        last = crit;
    }
}

#[test]
fn electromigration_composes_with_bti() {
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 8).unwrap();
    let topo = m.netlist().topology().unwrap();
    // Toggle data for the EM model's activity input.
    let mut stats = workload_stats(&m, 200, 11);
    let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
    let mut sim = agemul_netlist::EventSim::new(m.netlist(), &topo, delays);
    sim.settle(&m.encode_inputs(0, 0).unwrap()).unwrap();
    let mut state = 77u64;
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (state >> 9) & 0xFF;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (state >> 9) & 0xFF;
        sim.step(&m.encode_inputs(a, b).unwrap()).unwrap();
    }
    stats.record_toggles(sim.gate_toggle_counts(), 200).unwrap();

    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    let bti_factors = aging_factors(m.netlist(), &stats, &bti, 7.0);
    let em_factors = EmModel::nominal().wire_factors(m.netlist(), &stats, 7.0);
    let combined = compose_factors(&bti_factors, &em_factors);

    // EM only adds on top of BTI, and only where wires actually switch.
    for ((&c, &b), &e) in combined.iter().zip(&bti_factors).zip(&em_factors) {
        assert!(c >= b - 1e-12);
        assert!((c - b * e).abs() < 1e-12);
    }
    let em_active = em_factors.iter().filter(|&&e| e > 1.0).count();
    assert!(em_active > 0, "no wire aged under a switching workload");
}

#[test]
fn hotter_operation_ages_circuits_faster() {
    let m = MultiplierCircuit::generate(MultiplierKind::Array, 6).unwrap();
    let stats = workload_stats(&m, 150, 13);
    let delays = DelayModel::nominal();
    let crit_at = |temp_k: f64| {
        let tech = Technology::ptm_32nm_hk().at_temperature(temp_k);
        // Same A constant → temperature effect comes straight from Eq. 2.
        let model = BtiModel::new(tech, 5.0e8);
        let factors = aging_factors(m.netlist(), &stats, &model, 7.0);
        static_critical_path_ns(
            m.netlist(),
            &DelayAssignment::with_factors(m.netlist(), &delays, &factors).unwrap(),
        )
        .unwrap()
    };
    assert!(crit_at(398.15) > crit_at(328.15));
}
