//! `ProfileCache` under fleet-scale key churn.
//!
//! A fleet campaign generates *hundreds* of distinct corner fingerprints
//! — one per (node corner × effective age) — all for the same design, so
//! they all hash into the **same shard**. These tests drive that exact
//! churn pattern against a small bounded cache and pin the guarantees the
//! fleet leans on: per-shard counters stay coherent (`hits + misses`
//! accounts for every lookup, all in one shard), eviction pressure stays
//! within the configured bound, and a key that was evicted and rebuilt
//! yields a bit-identical profile — eviction may cost time, never
//! correctness.

use std::sync::Arc;

use agemul::{
    quantize_factors, CoreError, MultiplierDesign, PatternProfile, PatternSet, ProfileCache,
    SimEngine,
};
use agemul_aging::VariationModel;
use agemul_circuits::MultiplierKind;
use agemul_netlist::DelayAssignment;

const CORNERS: usize = 300;
const SHARD_CAPACITY: usize = 32;

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap()
}

/// The delay assignment of corner `seed` — the same variation pipeline a
/// fleet node uses, so each seed is a realistic distinct fingerprint.
fn corner_delays(design: &MultiplierDesign, seed: u64) -> DelayAssignment {
    let variation = VariationModel::new(0.05);
    let factors = quantize_factors(&variation.factors(design.circuit().netlist(), seed));
    design.delay_assignment(Some(&factors)).unwrap()
}

/// A cached profile build that actually simulates (the fleet's miss
/// path), so rebuild-identity is checked against real timing data.
fn build(
    cache: &ProfileCache,
    design: &MultiplierDesign,
    delays: &DelayAssignment,
    pairs: &[(u64, u64)],
) -> Arc<PatternProfile> {
    cache
        .get_or_insert_with(design, delays, pairs, || -> Result<_, CoreError> {
            design.profile_with_delays_supervised(pairs, delays, SimEngine::Level, None)
        })
        .unwrap()
}

/// Hundreds of corner fingerprints for one design land in exactly one
/// shard, and that shard's counters account for every lookup: first pass
/// all misses, second pass over the same keys (unbounded cache) all hits.
#[test]
fn corner_churn_keeps_per_shard_counters_coherent() {
    let design = design();
    let pairs = PatternSet::uniform(8, 12, 7).pairs().to_vec();
    let cache = ProfileCache::new();

    let delays: Vec<DelayAssignment> = (0..CORNERS as u64)
        .map(|seed| corner_delays(&design, seed))
        .collect();
    for d in &delays {
        build(&cache, &design, d, &pairs);
    }
    for d in &delays {
        build(&cache, &design, d, &pairs);
    }

    assert_eq!(
        cache.misses(),
        CORNERS as u64,
        "first pass misses each corner once"
    );
    assert_eq!(
        cache.hits(),
        CORNERS as u64,
        "second pass hits each corner once"
    );
    assert_eq!(cache.evictions(), 0, "unbounded cache never evicts");
    assert_eq!(cache.len(), CORNERS);

    let stats = cache.shard_stats();
    let active: Vec<_> = stats
        .iter()
        .filter(|s| s.hits + s.misses + s.evictions > 0 || s.entries > 0)
        .collect();
    assert_eq!(
        active.len(),
        1,
        "one (kind, width) must churn exactly one shard, got {active:?}"
    );
    let shard = active[0];
    assert_eq!(shard.entries, CORNERS);
    assert_eq!(
        shard.hits,
        cache.hits(),
        "shard rows must sum to the cache totals"
    );
    assert_eq!(shard.misses, cache.misses());
    assert_eq!(
        shard.hits + shard.misses,
        2 * CORNERS as u64,
        "every lookup is either a hit or a miss"
    );
}

/// Under a shard bound far below the churn width, eviction pressure stays
/// within the bound and the counters still reconcile exactly.
#[test]
fn bounded_shard_evicts_down_to_capacity_under_churn() {
    let design = design();
    let pairs = PatternSet::uniform(8, 12, 7).pairs().to_vec();
    let cache = ProfileCache::with_capacity(SHARD_CAPACITY);

    for seed in 0..CORNERS as u64 {
        build(&cache, &design, &corner_delays(&design, seed), &pairs);
    }

    assert_eq!(
        cache.len(),
        SHARD_CAPACITY,
        "shard must sit exactly at its bound"
    );
    assert_eq!(cache.misses(), CORNERS as u64, "all distinct keys miss");
    assert_eq!(cache.hits(), 0);
    assert_eq!(
        cache.evictions(),
        (CORNERS - SHARD_CAPACITY) as u64,
        "every insert past the bound evicts exactly one entry"
    );

    // The most recent SHARD_CAPACITY corners are resident; everything
    // older was evicted. Replaying the resident tail must be pure hits.
    let before = cache.hits();
    for seed in (CORNERS - SHARD_CAPACITY) as u64..CORNERS as u64 {
        build(&cache, &design, &corner_delays(&design, seed), &pairs);
    }
    assert_eq!(
        cache.hits() - before,
        SHARD_CAPACITY as u64,
        "the LRU tail must still be resident"
    );
}

/// An evicted key rebuilt later yields a profile bit-identical to the
/// original build — eviction is transparent to results.
#[test]
fn evicted_corners_rebuild_bit_identically() {
    let design = design();
    let pairs = PatternSet::uniform(8, 12, 7).pairs().to_vec();
    let cache = ProfileCache::with_capacity(SHARD_CAPACITY);

    // First builds, retained outside the cache as the reference.
    let originals: Vec<Arc<PatternProfile>> = (0..CORNERS as u64)
        .map(|seed| build(&cache, &design, &corner_delays(&design, seed), &pairs))
        .collect();

    // Early corners are long evicted: rebuilding them must miss (proving
    // the eviction) and reproduce the exact records.
    let evicted_probe = 0..(SHARD_CAPACITY as u64);
    for seed in evicted_probe {
        let misses_before = cache.misses();
        let rebuilt = build(&cache, &design, &corner_delays(&design, seed), &pairs);
        assert!(
            cache.misses() > misses_before,
            "corner {seed} should have been evicted by the churn"
        );
        let original = &originals[seed as usize];
        assert!(
            !Arc::ptr_eq(original, &rebuilt),
            "a rebuild cannot be the original allocation"
        );
        assert_eq!(
            original.as_ref(),
            rebuilt.as_ref(),
            "corner {seed}: rebuilt profile must be bit-identical"
        );
        let (a, b) = (original.records(), rebuilt.records());
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(ra.delay_ns.to_bits(), rb.delay_ns.to_bits());
        }
    }
}
