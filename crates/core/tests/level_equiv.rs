//! Engine-equivalence acceptance tests on real multipliers.
//!
//! The levelized kernel ([`agemul::SimEngine::Level`]) must be
//! femtosecond-identical to the event-driven reference
//! ([`agemul::SimEngine::Event`]) on the designs the experiments actually
//! run: column- and row-bypassing multipliers, nominal and aged. The
//! random-circuit property tests live in `agemul-netlist`; these tests pin
//! the full profiling pipeline (encode → settle → two-vector steps →
//! records) end to end.

use agemul::{MultiplierDesign, PatternProfile, PatternSet, SimEngine};
use agemul_circuits::MultiplierKind;

/// Asserts two profiles are bit-identical: every record (operands, zeros,
/// measured delay) and the aggregate switching activity.
fn assert_profiles_identical(level: &PatternProfile, event: &PatternProfile, label: &str) {
    assert_eq!(level.len(), event.len(), "{label}: record count");
    for (i, (l, e)) in level.records().iter().zip(event.records()).enumerate() {
        assert_eq!(l, e, "{label}: record {i}");
    }
    assert_eq!(
        level.avg_gate_toggles().to_bits(),
        event.avg_gate_toggles().to_bits(),
        "{label}: switching activity"
    );
    assert_eq!(
        level.max_delay_ns().to_bits(),
        event.max_delay_ns().to_bits(),
        "{label}: max delay"
    );
}

/// A deterministic, non-uniform aging-factor vector covering every gate.
fn aged_factors(design: &MultiplierDesign) -> Vec<f64> {
    let gates = design.circuit().netlist().gate_count();
    (0..gates)
        .map(|i| 1.0 + 0.35 * ((i * 13) % 29) as f64 / 29.0)
        .collect()
}

/// The `just timing-equiv` smoke target: LevelSim vs EventSim bit-identity
/// on the 8×8 column-bypassing multiplier under a uniform workload.
#[test]
fn timing_equiv_smoke_cb8() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 500, 42);
    let level = design
        .profile_with_engine(patterns.pairs(), None, SimEngine::Level)
        .unwrap();
    let event = design
        .profile_with_engine(patterns.pairs(), None, SimEngine::Event)
        .unwrap();
    assert_profiles_identical(&level, &event, "CB8 nominal");
}

#[test]
fn engines_agree_on_bypassing_multipliers_nominal_and_aged() {
    for kind in [MultiplierKind::ColumnBypass, MultiplierKind::RowBypass] {
        let design = MultiplierDesign::new(kind, 8).unwrap();
        let patterns = PatternSet::uniform(8, 250, 7);
        let factors = aged_factors(&design);
        for (label, f) in [("nominal", None), ("aged", Some(factors.as_slice()))] {
            let level = design
                .profile_with_engine(patterns.pairs(), f, SimEngine::Level)
                .unwrap();
            let event = design
                .profile_with_engine(patterns.pairs(), f, SimEngine::Event)
                .unwrap();
            assert_profiles_identical(&level, &event, &format!("{kind:?} {label}"));
        }
    }
}

#[test]
fn engines_agree_on_the_array_multiplier() {
    let design = MultiplierDesign::new(MultiplierKind::Array, 8).unwrap();
    let patterns = PatternSet::uniform(8, 250, 19);
    let level = design
        .profile_with_engine(patterns.pairs(), None, SimEngine::Level)
        .unwrap();
    let event = design
        .profile_with_engine(patterns.pairs(), None, SimEngine::Event)
        .unwrap();
    assert_profiles_identical(&level, &event, "Array nominal");
}

/// `profile_with_delays` (the delay-fault fast path, which skips the
/// functional sweep) must agree with the full `profile` under the same
/// uniform assignment, and with the event-driven reference under an
/// inflated single-gate assignment.
#[test]
fn delay_only_profiling_matches_full_profiling() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 200, 23);

    let uniform = design.delay_assignment(None).unwrap();
    let fast = design
        .profile_with_delays(patterns.pairs(), &uniform)
        .unwrap();
    let full = design.profile(patterns.pairs(), None).unwrap();
    assert_profiles_identical(&fast, &full, "CB8 uniform fast path");

    // Inflate one mid-netlist gate hard enough to reorder sensitized
    // paths; the levelized fast path must still track EventSim through
    // the public profiling loop. The event reference is reproduced via
    // aging factors that encode the same inflation.
    let gates = design.circuit().netlist().gate_count();
    let mut factors = vec![1.0; gates];
    factors[gates / 2] = 8.0;
    let inflated = design.delay_assignment(Some(&factors)).unwrap();
    let fast = design
        .profile_with_delays(patterns.pairs(), &inflated)
        .unwrap();
    let event = design
        .profile_with_engine(patterns.pairs(), Some(&factors), SimEngine::Event)
        .unwrap();
    assert_profiles_identical(&fast, &event, "CB8 inflated fast path");
}
