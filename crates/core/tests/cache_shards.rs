//! Regression suite for the sharded, bounded, poison-recovering
//! `ProfileCache`.
//!
//! These are the long-lived-process guarantees `agemul-serve` leans on:
//! a panicked worker must not wedge every later request that hashes to
//! its shard (poison recovery), and a bounded shard must evict by
//! recency of *use*, never the hot entry (per-shard LRU).

use std::convert::Infallible;
use std::sync::Arc;

use agemul::{MultiplierDesign, PatternProfile, PatternSet, ProfileCache};
use agemul_circuits::MultiplierKind;
use agemul_netlist::{DelayAssignment, GateId};

/// Inserts a placeholder profile for (`design`, `delays`, `pairs`) without
/// simulating; reports whether the lookup missed.
fn probe(
    cache: &ProfileCache,
    design: &MultiplierDesign,
    delays: &DelayAssignment,
    pairs: &[(u64, u64)],
) -> bool {
    let before = cache.misses();
    let result: Result<Arc<PatternProfile>, Infallible> =
        cache.get_or_insert_with(design, delays, pairs, || {
            Ok(PatternProfile::from_records(
                design.kind(),
                design.width(),
                vec![],
            ))
        });
    result.expect("builder is infallible");
    cache.misses() > before
}

/// A delay assignment with gate 0 inflated by `factor` — each distinct
/// factor has a distinct fingerprint, i.e. its own cache key.
fn epoch(design: &MultiplierDesign, factor: f64) -> DelayAssignment {
    let mut delays = design.delay_assignment(None).unwrap();
    delays.inflate(GateId::from_index(0), factor);
    delays
}

/// The headline bugfix: `len`/`profile`/`clear` previously called
/// `.expect("cache mutex poisoned")`, so one panicked worker turned every
/// subsequent lookup into a panic. A poisoned shard must now keep
/// serving: cached entries survive, lookups hit, and fresh inserts land.
#[test]
fn poisoned_shard_still_completes_lookups() {
    let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 20, 1);
    let cache = ProfileCache::new();

    let before = cache.profile(&d, patterns.pairs(), None).unwrap();
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // A helper thread panics while holding this design's shard lock —
    // exactly what a panicking server worker leaves behind.
    cache.poison_shard_for_test(d.kind(), d.width());

    // The poisoned shard still answers: the warm entry hits (same Arc),
    // len/clear walk every shard without panicking, and a brand-new key
    // inserts into the poisoned shard.
    let after = cache.profile(&d, patterns.pairs(), None).unwrap();
    assert!(Arc::ptr_eq(&before, &after));
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(cache.len(), 1);

    let delays = epoch(&d, 2.0);
    assert!(
        probe(&cache, &d, &delays, patterns.pairs()),
        "fresh key must miss and insert into the poisoned shard"
    );
    assert_eq!(cache.len(), 2);
    assert!(!probe(&cache, &d, &delays, patterns.pairs()), "…and hit");

    cache.clear();
    assert!(cache.is_empty());
}

/// Poison must stay local to its shard: designs hashing elsewhere are
/// untouched (they would be even without recovery, but this pins the
/// sharding actually isolating them).
#[test]
fn poison_does_not_leak_across_designs() {
    let poisoned = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let healthy = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 10, 2);
    let cache = ProfileCache::new();

    cache.poison_shard_for_test(poisoned.kind(), poisoned.width());
    for design in [&poisoned, &healthy] {
        cache.profile(design, patterns.pairs(), None).unwrap();
        let again = cache.profile(design, patterns.pairs(), None).unwrap();
        assert_eq!(again.len(), 10);
    }
    assert_eq!((cache.hits(), cache.misses()), (2, 2));
}

/// The capacity bugfix: inserting `capacity + 1` distinct delay epochs
/// must evict exactly the stalest entry — and a "hot" entry that keeps
/// getting used must survive arbitrarily many insertions.
#[test]
fn lru_evicts_the_stalest_entry_never_the_hot_one() {
    let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let pairs = PatternSet::uniform(8, 8, 3).pairs().to_vec();
    let capacity = 4;
    let cache = ProfileCache::with_capacity(capacity);

    // Epoch factors 2.0, 3.0, 4.0, 5.0 fill the shard; 2.0 is the hot
    // entry, 3.0 the stalest.
    let epochs: Vec<DelayAssignment> = (0..capacity).map(|i| epoch(&d, 2.0 + i as f64)).collect();
    for delays in &epochs {
        assert!(probe(&cache, &d, delays, &pairs));
    }
    assert_eq!(cache.len(), capacity);

    // Touch the hot entry so the first-inserted key is *not* the LRU.
    assert!(!probe(&cache, &d, &epochs[0], &pairs), "hot entry must hit");

    // One more distinct fingerprint: the shard is full, so exactly one
    // entry — the stalest (3.0), not the hot one — is evicted.
    let overflow = epoch(&d, 99.0);
    assert!(probe(&cache, &d, &overflow, &pairs));
    assert_eq!(cache.len(), capacity, "bounded shard may not grow");
    assert_eq!(cache.evictions(), 1);

    assert!(!probe(&cache, &d, &epochs[0], &pairs), "hot entry survives");
    assert!(
        !probe(&cache, &d, &epochs[2], &pairs),
        "younger entries survive"
    );
    assert!(!probe(&cache, &d, &epochs[3], &pairs));
    assert!(
        !probe(&cache, &d, &overflow, &pairs),
        "newcomer is resident"
    );
    assert!(
        probe(&cache, &d, &epochs[1], &pairs),
        "the stalest entry (and only it) was evicted"
    );
}

/// Eviction pressure in one design's shard must not disturb another
/// design cached in a different shard.
#[test]
fn eviction_is_per_shard() {
    let churner = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let resident = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let pairs = PatternSet::uniform(8, 8, 4).pairs().to_vec();
    let cache = ProfileCache::with_capacity(2);

    let resident_delays = resident.delay_assignment(None).unwrap();
    assert!(probe(&cache, &resident, &resident_delays, &pairs));

    // Churn far past the churner shard's capacity.
    for i in 0..10 {
        probe(
            &cache,
            &churner,
            &epoch(&churner, 2.0 + f64::from(i)),
            &pairs,
        );
    }
    assert!(cache.evictions() >= 8);

    assert!(
        !probe(&cache, &resident, &resident_delays, &pairs),
        "churn in another shard must not evict this design"
    );
}

/// Hit≡miss coherence holds through eviction: a re-built (previously
/// evicted) entry serves the same records a never-evicted cache would.
#[test]
fn evicted_entries_rebuild_coherently() {
    let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let patterns = PatternSet::uniform(8, 16, 5);
    let factors_a = vec![1.1; d.circuit().netlist().gate_count()];
    let factors_b = vec![1.2; d.circuit().netlist().gate_count()];

    let bounded = ProfileCache::with_capacity(1);
    let first = bounded
        .profile(&d, patterns.pairs(), Some(&factors_a))
        .unwrap();
    // Displaces `first` (capacity 1), then rebuilds it.
    bounded
        .profile(&d, patterns.pairs(), Some(&factors_b))
        .unwrap();
    assert_eq!(bounded.evictions(), 1);
    let rebuilt = bounded
        .profile(&d, patterns.pairs(), Some(&factors_a))
        .unwrap();
    assert!(!Arc::ptr_eq(&first, &rebuilt), "rebuild, not a stale hit");
    assert_eq!(first.records(), rebuilt.records());
    assert_eq!(bounded.misses(), 3);
}
