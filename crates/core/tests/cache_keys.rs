//! `ProfileCache` key-separation probes.
//!
//! The cache key is `(kind, width, delay fingerprint, workload
//! fingerprint)`. A fingerprint collision would silently replay the wrong
//! profile — the cached-run results would look plausible and verify
//! nothing — so these tests drive the cache through *behavior*, not
//! through the private hash values: every perturbed delay assignment or
//! workload must register a fresh miss, and identical inputs must hit.

use std::convert::Infallible;
use std::sync::Arc;

use agemul::{MultiplierDesign, PatternProfile, PatternSet, ProfileCache};
use agemul_circuits::MultiplierKind;
use agemul_netlist::{DelayAssignment, GateId};
use proptest::prelude::*;

/// Inserts a placeholder profile for (`design`, `delays`, `pairs`) and
/// reports whether the lookup missed. The builder never simulates — key
/// separation is entirely observable from the hit/miss counters.
fn probe(
    cache: &ProfileCache,
    design: &MultiplierDesign,
    delays: &DelayAssignment,
    pairs: &[(u64, u64)],
) -> bool {
    let before = cache.misses();
    let result: Result<Arc<PatternProfile>, Infallible> =
        cache.get_or_insert_with(design, delays, pairs, || {
            Ok(PatternProfile::from_records(
                design.kind(),
                design.width(),
                vec![],
            ))
        });
    result.expect("builder is infallible");
    cache.misses() > before
}

/// Every single-gate inflation produces a delay assignment with its own
/// cache entry: no two of the ~600 perturbed assignments alias, and
/// replaying any of them hits.
#[test]
fn per_gate_delay_perturbations_never_alias() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
    let base = design.delay_assignment(None).unwrap();
    let pairs = PatternSet::uniform(8, 16, 1).pairs().to_vec();
    let cache = ProfileCache::new();

    assert!(
        probe(&cache, &design, &base, &pairs),
        "first insert must miss"
    );
    let gates = design.circuit().netlist().gate_count();
    for g in 0..gates {
        let mut perturbed = base.clone();
        perturbed.inflate(GateId::from_index(g), 2.0);
        assert!(
            probe(&cache, &design, &perturbed, &pairs),
            "inflating gate {g} aliased an earlier key"
        );
    }
    assert_eq!(cache.misses(), gates as u64 + 1);
    assert_eq!(cache.hits(), 0);

    // Replays of the base and of one perturbed assignment now hit.
    assert!(!probe(&cache, &design, &base, &pairs));
    let mut perturbed = base.clone();
    perturbed.inflate(GateId::from_index(gates / 2), 2.0);
    assert!(!probe(&cache, &design, &perturbed, &pairs));
    assert_eq!(cache.hits(), 2);
}

/// Deterministic workload-axis probes: the canonical "almost equal"
/// workloads — one bit flipped, two pairs swapped, truncated, extended,
/// reversed — all get their own entries.
#[test]
fn near_identical_workloads_never_alias() {
    let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
    let delays = design.delay_assignment(None).unwrap();
    let base = PatternSet::uniform(8, 24, 7).pairs().to_vec();
    let cache = ProfileCache::new();
    assert!(probe(&cache, &design, &delays, &base));

    let mut variants: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut flipped = base.clone();
    flipped[5].0 ^= 1;
    variants.push(flipped);
    let mut swapped = base.clone();
    swapped.swap(3, 17);
    variants.push(swapped);
    variants.push(base[..base.len() - 1].to_vec());
    let mut extended = base.clone();
    extended.push(base[0]);
    variants.push(extended);
    let mut reversed = base.clone();
    reversed.reverse();
    variants.push(reversed);

    for (i, variant) in variants.iter().enumerate() {
        // Skip a variant that degenerates to the base (e.g. a reverse of
        // a palindromic workload) — uniform random pairs never do.
        assert_ne!(variant, &base, "variant {i} is not a perturbation");
        assert!(
            probe(&cache, &design, &delays, variant),
            "workload variant {i} aliased the base key"
        );
    }
    assert_eq!(cache.misses(), variants.len() as u64 + 1);
    assert!(
        !probe(&cache, &design, &delays, &base),
        "base replay must hit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-bit operand flips at random positions miss against
    /// the unperturbed workload's entry.
    #[test]
    fn random_bit_flips_never_alias(
        seed in any::<u64>(),
        pick in any::<u16>(),
        bit in 0u32..8,
        flip_b in any::<bool>(),
    ) {
        let design = MultiplierDesign::new(MultiplierKind::Array, 8).unwrap();
        let delays = design.delay_assignment(None).unwrap();
        let base = PatternSet::uniform(8, 12, seed).pairs().to_vec();
        let mut mutated = base.clone();
        let slot = pick as usize % mutated.len();
        if flip_b {
            mutated[slot].1 ^= 1 << bit;
        } else {
            mutated[slot].0 ^= 1 << bit;
        }

        let cache = ProfileCache::new();
        prop_assert!(probe(&cache, &design, &delays, &base));
        prop_assert!(probe(&cache, &design, &delays, &mutated));
        prop_assert!(!probe(&cache, &design, &delays, &base));
        prop_assert!(!probe(&cache, &design, &delays, &mutated));
        prop_assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    /// Random hot-spot delay inflations miss against the nominal entry,
    /// and the same inflation replayed hits.
    #[test]
    fn random_delay_inflations_never_alias(
        gate_pick in any::<u16>(),
        factor in 1.01f64..8.0,
    ) {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let base = design.delay_assignment(None).unwrap();
        let pairs = PatternSet::uniform(8, 8, 3).pairs().to_vec();
        let gates = design.circuit().netlist().gate_count();
        let mut inflated = base.clone();
        inflated.inflate(GateId::from_index(gate_pick as usize % gates), factor);

        let cache = ProfileCache::new();
        prop_assert!(probe(&cache, &design, &base, &pairs));
        prop_assert!(probe(&cache, &design, &inflated, &pairs));
        prop_assert!(!probe(&cache, &design, &inflated, &pairs));
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }
}
