//! Scenario tests for the variable-latency engine and AHL dynamics.

use agemul::{
    run_engine, Ahl, AhlConfig, CycleDecision, EngineConfig, MultiplierDesign, PatternProfile,
    PatternRecord, PatternSet, RazorConfig,
};
use agemul_circuits::MultiplierKind;

fn synthetic_profile(records: Vec<PatternRecord>) -> PatternProfile {
    PatternProfile::from_records(MultiplierKind::ColumnBypass, 16, records)
}

fn rec(zeros: u32, delay_ns: f64) -> PatternRecord {
    PatternRecord {
        a: 0,
        b: 0,
        zeros,
        delay_ns,
    }
}

/// A step change in delay mid-stream (sudden degradation): the adaptive
/// engine converges to the stricter block within one window and stays
/// there; errors stop.
#[test]
fn adaptation_converges_after_step_degradation() {
    let mut records = Vec::new();
    // Phase 1: healthy — borderline patterns fit in the cycle.
    for _ in 0..500 {
        records.push(rec(7, 0.85));
    }
    // Phase 2: degradation — the same patterns now miss the 0.9 ns cycle.
    for _ in 0..1500 {
        records.push(rec(7, 0.95));
    }
    let profile = synthetic_profile(records);
    let m = run_engine(&profile, &EngineConfig::adaptive(0.9, 7));
    assert!(m.aged_mode_entered);
    // At most two windows of errors (200 ops × up to 100% error rate)
    // before the stricter block demotes every 7-zero pattern.
    assert!(m.errors <= 200, "errors {}", m.errors);
    // Phase-2 patterns after adaptation run at 2 cycles, never erroring.
    let tail = run_engine(
        &synthetic_profile(vec![rec(7, 0.95); 100]),
        &EngineConfig::traditional(0.9, 8),
    );
    assert_eq!(tail.errors, 0);
}

/// Without adaptation the same stream pays the Razor penalty forever.
#[test]
fn traditional_design_pays_forever() {
    let records = vec![rec(7, 0.95); 2000];
    let profile = synthetic_profile(records);
    let adaptive = run_engine(&profile, &EngineConfig::adaptive(0.9, 7));
    let traditional = run_engine(&profile, &EngineConfig::traditional(0.9, 7));
    assert_eq!(traditional.errors, 2000);
    assert!(adaptive.errors < 150);
    // 4 cycles per op traditional vs ~2 adaptive.
    assert!(traditional.avg_cycles() > 3.9);
    assert!(adaptive.avg_cycles() < 2.2);
}

/// The oscillation hazard of a non-latching aging indicator: mode flips
/// back and forth between windows on a borderline workload.
#[test]
fn non_sticky_indicator_oscillates_on_borderline_load() {
    let mut ahl = Ahl::adaptive(
        7,
        AhlConfig {
            window_ops: 100,
            error_threshold: 10,
            sticky: false,
        },
    );
    // Simulate: patterns error iff judged by the *first* block (7 zeros,
    // delay just over the cycle) — exactly the paper's aged borderline.
    for _ in 0..1000 {
        let would_error = ahl.decide(7) == CycleDecision::OneCycle;
        ahl.record(would_error);
    }
    assert!(ahl.mode_transitions() >= 4, "{}", ahl.mode_transitions());
}

/// A sticky indicator settles after one transition on the same load.
#[test]
fn sticky_indicator_settles() {
    let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
    for _ in 0..1000 {
        let would_error = ahl.decide(7) == CycleDecision::OneCycle;
        ahl.record(would_error);
    }
    assert_eq!(ahl.mode_transitions(), 1);
    assert!(ahl.is_aged_mode());
}

/// Failure injection: a shrunken Razor window lets violations through as
/// silent corruptions, and the AHL — blind to them — never adapts.
#[test]
fn undetected_violations_disable_adaptation() {
    let records = vec![rec(7, 2.5); 500]; // way beyond cycle and window
    let profile = synthetic_profile(records);
    let mut cfg = EngineConfig::adaptive(0.9, 7);
    cfg.razor = RazorConfig { window_factor: 0.2 };
    let m = run_engine(&profile, &cfg);
    assert_eq!(m.errors, 0);
    assert_eq!(m.undetected, 500);
    assert!(!m.aged_mode_entered, "AHL cannot see silent corruption");
}

/// End-to-end profile → engine at an unusual width (20 bits) with real
/// simulation, checking the one-cycle ratio tracks the judging threshold.
#[test]
fn real_profile_one_cycle_ratio_matches_judging() {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 20).unwrap();
    let patterns = PatternSet::uniform(20, 400, 5);
    let profile = design.profile(patterns.pairs(), None).unwrap();
    let skip = 10;
    let expected = profile.one_cycle_ratio(skip);
    // Generous cycle so no errors perturb the classification.
    let m = run_engine(&profile, &EngineConfig::adaptive(5.0, skip));
    assert_eq!(m.errors, 0);
    assert!((m.one_cycle_ratio() - expected).abs() < 1e-12);
}

/// Two-cycle strictness: under absurd aging, even two cycles miss; the
/// strict engine reports it, the default (paper) engine does not.
#[test]
fn strict_two_cycle_mode_exposes_paper_assumption() {
    let records = vec![rec(0, 5.0); 50];
    let profile = synthetic_profile(records);
    let relaxed = run_engine(&profile, &EngineConfig::adaptive(1.0, 7));
    assert_eq!(relaxed.errors, 0);
    let mut cfg = EngineConfig::adaptive(1.0, 7);
    cfg.strict_two_cycle = true;
    let strict = run_engine(&profile, &cfg);
    assert_eq!(strict.errors, 50);
}
