//! Gate-level realization of the AHL's combinational judging path
//! (paper Fig. 12), co-simulated against the behavioural [`Ahl`].

use agemul_circuits::zeros_at_least;
use agemul_logic::{AreaModel, GateKind, Logic};
use agemul_netlist::{Bus, FuncSim, NetId, Netlist, Topology};

use crate::{CoreError, CycleDecision};

/// The AHL's combinational core at gate level: two judging blocks
/// (inverters + popcount tree + constant comparators) and the selection
/// mux driven by the aging indicator.
///
/// The behavioural [`Ahl`] drives all experiments (it is thousands of
/// times faster); this netlist exists to
///
/// * prove the judging hardware is realizable and equivalent — the test
///   suite co-simulates it against [`Ahl::decide`] exhaustively at small
///   widths and randomly at 16/32 bits;
/// * ground the architecture's area accounting ([`crate::area_report`])
///   in real gates rather than estimates.
///
/// [`Ahl`]: crate::Ahl
/// [`Ahl::decide`]: crate::Ahl::decide
///
/// # Example
///
/// ```
/// use agemul::{CycleDecision, GateLevelAhl};
///
/// let ahl = GateLevelAhl::generate(16, 7)?;
/// assert_eq!(ahl.decide(0x00FF, false)?, CycleDecision::OneCycle); // 8 zeros ≥ 7
/// assert_eq!(ahl.decide(0xFFFE, false)?, CycleDecision::TwoCycles); // 1 zero
/// # Ok::<(), agemul::CoreError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GateLevelAhl {
    netlist: Netlist,
    topology: Topology,
    operand: Bus,
    aging_mode: NetId,
    one_cycle: NetId,
    width: usize,
    skip: u32,
}

impl GateLevelAhl {
    /// Builds the judging logic for a `width`-bit operand and base skip
    /// threshold `skip`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero width and
    /// [`CoreError::Netlist`] on construction failure.
    pub fn generate(width: usize, skip: u32) -> Result<Self, CoreError> {
        if width == 0 || width > 64 {
            return Err(CoreError::InvalidConfig {
                reason: format!("AHL operand width {width} outside 1..=64"),
            });
        }
        let mut n = Netlist::new();
        let operand: Bus = (0..width).map(|i| n.add_input(format!("md{i}"))).collect();
        let aging_mode = n.add_input("aging_mode");
        let first = zeros_at_least(&mut n, &operand, u64::from(skip))?;
        let second = zeros_at_least(&mut n, &operand, u64::from(skip) + 1)?;
        let one_cycle = n.add_gate(GateKind::Mux2, &[first, second, aging_mode])?;
        n.mark_output(one_cycle, "one_cycle");
        let topology = n.topology()?;
        Ok(GateLevelAhl {
            netlist: n,
            topology,
            operand,
            aging_mode,
            one_cycle,
            width,
            skip,
        })
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Base skip threshold.
    #[inline]
    pub fn skip(&self) -> u32 {
        self.skip
    }

    /// Transistor count of the combinational judging path.
    pub fn transistor_count(&self, area: &AreaModel) -> u64 {
        self.netlist.transistor_count(area)
    }

    /// Evaluates the hardware judging path for one operand value under the
    /// given aging-indicator state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `operand` overflows the
    /// width.
    pub fn decide(&self, operand: u64, aged: bool) -> Result<CycleDecision, CoreError> {
        if self.width < 64 && operand >> self.width != 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("operand {operand} overflows {} bits", self.width),
            });
        }
        let mut inputs = Vec::with_capacity(self.width + 1);
        for i in 0..self.width {
            inputs.push(Logic::from((operand >> i) & 1 == 1));
        }
        inputs.push(Logic::from(aged));
        let mut sim = FuncSim::new(&self.netlist, &self.topology);
        sim.eval(&inputs)?;
        match sim.value(self.one_cycle).to_bool() {
            Some(true) => Ok(CycleDecision::OneCycle),
            Some(false) => Ok(CycleDecision::TwoCycles),
            None => Err(CoreError::InvalidConfig {
                reason: "judging output undefined".into(),
            }),
        }
    }

    /// The aging-mode input net (for external co-simulation harnesses).
    #[inline]
    pub fn aging_mode_net(&self) -> NetId {
        self.aging_mode
    }

    /// The operand input bus.
    #[inline]
    pub fn operand(&self) -> &Bus {
        &self.operand
    }
}

#[cfg(test)]
mod tests {
    use crate::{count_zeros, Ahl, AhlConfig};

    use super::*;

    #[test]
    fn exhaustive_equivalence_8bit() {
        let hw = GateLevelAhl::generate(8, 4).unwrap();
        for aged in [false, true] {
            // A behavioural AHL forced into the matching mode.
            let mut sw = Ahl::adaptive(4, AhlConfig::paper());
            if aged {
                for _ in 0..100 {
                    sw.record(true);
                }
            }
            assert_eq!(sw.is_aged_mode(), aged);
            for operand in 0..256u64 {
                let zeros = count_zeros(operand, 8);
                assert_eq!(
                    hw.decide(operand, aged).unwrap(),
                    sw.decide(zeros),
                    "operand {operand:#010b}, aged {aged}"
                );
            }
        }
    }

    #[test]
    fn random_equivalence_16bit_paper_config() {
        let hw = GateLevelAhl::generate(16, 7).unwrap();
        let sw = Ahl::adaptive(7, AhlConfig::paper());
        let mut state = 0xFACE_FEED_0123_4567u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let operand = (state >> 15) & 0xFFFF;
            assert_eq!(
                hw.decide(operand, false).unwrap(),
                sw.decide(count_zeros(operand, 16)),
                "{operand:#x}"
            );
        }
    }

    #[test]
    fn aged_mode_is_stricter_in_hardware_too() {
        let hw = GateLevelAhl::generate(16, 7).unwrap();
        // Exactly 7 zeros: one-cycle fresh, two-cycle aged.
        let operand = 0xFF80 >> 7 << 7; // 0xFF80: 9 ones, 7 zeros
        assert_eq!(count_zeros(0xFF80, 16), 7);
        let _ = operand;
        assert_eq!(hw.decide(0xFF80, false).unwrap(), CycleDecision::OneCycle);
        assert_eq!(hw.decide(0xFF80, true).unwrap(), CycleDecision::TwoCycles);
    }

    #[test]
    fn transistor_count_is_positive_and_grows_with_width() {
        let area = AreaModel::standard_cell();
        let small = GateLevelAhl::generate(16, 7)
            .unwrap()
            .transistor_count(&area);
        let large = GateLevelAhl::generate(32, 15)
            .unwrap()
            .transistor_count(&area);
        assert!(small > 0);
        assert!(large > small);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(GateLevelAhl::generate(0, 1).is_err());
        let hw = GateLevelAhl::generate(8, 4).unwrap();
        assert!(hw.decide(256, false).is_err());
    }
}
