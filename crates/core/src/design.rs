//! A multiplier design bound to the calibrated technology.

use agemul_circuits::{MultiplierCircuit, MultiplierKind, Operand};
use agemul_logic::{DelayModel, Logic};
use agemul_netlist::{
    BlockSim, CancelToken, DelayAssignment, EventSim, LevelSim, PatternTiming, Topology,
    WorkloadStats,
};

use crate::{calibrated_delay_model, count_zeros, CoreError, PatternProfile, PatternRecord};

/// Which timing kernel a profiling run drives.
///
/// Both kernels are femtosecond-identical (property-tested in
/// `agemul-netlist`); they differ only in throughput. Everything in this
/// crate defaults to [`Level`](SimEngine::Level) — the explicit selector
/// exists for benchmarks and cross-checks that want the event-driven
/// reference on the same workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimEngine {
    /// Priority-queue event-driven kernel ([`EventSim`]) — the reference.
    Event,
    /// Levelized incremental kernel ([`LevelSim`]) — the fast default.
    #[default]
    Level,
}

/// Batch width for the bit-parallel functional sweeps: how many patterns
/// one [`BlockSim`](agemul_netlist::BlockSim) pass carries.
///
/// The three widths are bit-identical (the wide kernels are per-chunk
/// replicas of the 64-lane one — property-tested in `agemul-netlist` and
/// `agemul-conformance`); they trade register pressure for fewer sweep
/// passes. 64 lanes is the conservative default; 256/512 let the
/// auto-vectorizer issue full-width SIMD loads on AVX2/AVX-512-class
/// cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LaneWidth {
    /// 64 patterns per pass (one `u64` chunk per plane).
    #[default]
    W64,
    /// 256 patterns per pass (4 chunks — auto-vectorizes to 256-bit ops).
    W256,
    /// 512 patterns per pass (8 chunks — auto-vectorizes to 512-bit ops).
    W512,
}

impl LaneWidth {
    /// Every supported width, narrowest first.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::W64, LaneWidth::W256, LaneWidth::W512];

    /// The number of lanes this width carries per pass.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W64 => 64,
            LaneWidth::W256 => 256,
            LaneWidth::W512 => 512,
        }
    }

    /// Parses a lane count (`64`, `256`, `512`).
    pub fn from_lanes(lanes: usize) -> Option<LaneWidth> {
        match lanes {
            64 => Some(LaneWidth::W64),
            256 => Some(LaneWidth::W256),
            512 => Some(LaneWidth::W512),
            _ => None,
        }
    }
}

/// Enum dispatch over the two timing kernels, so the profiling loop is
/// written once. Boxed: the levelized kernel carries its truth tables and
/// arenas inline, and one simulator exists per profiling run.
enum TimingKernel<'a> {
    Event(Box<EventSim<'a>>),
    Level(Box<LevelSim<'a>>),
}

impl TimingKernel<'_> {
    fn settle(&mut self, inputs: &[Logic]) -> Result<(), agemul_netlist::NetlistError> {
        match self {
            TimingKernel::Event(s) => s.settle(inputs),
            TimingKernel::Level(s) => s.settle(inputs),
        }
    }

    fn step(&mut self, inputs: &[Logic]) -> Result<PatternTiming, agemul_netlist::NetlistError> {
        match self {
            TimingKernel::Event(s) => s.step(inputs),
            TimingKernel::Level(s) => s.step(inputs),
        }
    }

    fn gate_toggle_counts(&self) -> &[u64] {
        match self {
            TimingKernel::Event(s) => s.gate_toggle_counts(),
            TimingKernel::Level(s) => s.gate_toggle_counts(),
        }
    }

    fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        match self {
            TimingKernel::Event(s) => s.set_cancel_token(token),
            TimingKernel::Level(s) => s.set_cancel_token(token),
        }
    }
}

/// A generated multiplier plus everything needed to simulate it: validated
/// topology and the workspace-calibrated delay table.
///
/// This is the main entry point of the crate — see the crate-level docs for
/// the full workflow.
///
/// # Example
///
/// ```
/// use agemul::MultiplierDesign;
/// use agemul_circuits::MultiplierKind;
///
/// let d = MultiplierDesign::new(MultiplierKind::Array, 8)?;
/// assert_eq!(d.width(), 8);
/// let crit = d.critical_delay_ns(None)?;
/// assert!(crit > 0.0);
/// # Ok::<(), agemul::CoreError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MultiplierDesign {
    circuit: MultiplierCircuit,
    topology: Topology,
    delay_model: DelayModel,
}

impl MultiplierDesign {
    /// Generates a design with the workspace-calibrated delay model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] for unsupported widths.
    pub fn new(kind: MultiplierKind, width: usize) -> Result<Self, CoreError> {
        Self::with_delay_model(kind, width, calibrated_delay_model().clone())
    }

    /// Generates a design with an explicit delay model (ablation studies).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] for unsupported widths.
    pub fn with_delay_model(
        kind: MultiplierKind,
        width: usize,
        delay_model: DelayModel,
    ) -> Result<Self, CoreError> {
        let circuit = MultiplierCircuit::generate(kind, width)?;
        let topology = circuit.netlist().topology()?;
        Ok(MultiplierDesign {
            circuit,
            topology,
            delay_model,
        })
    }

    /// The underlying circuit.
    #[inline]
    pub fn circuit(&self) -> &MultiplierCircuit {
        &self.circuit
    }

    /// The validated topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The delay model in force.
    #[inline]
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay_model
    }

    /// The architecture kind.
    #[inline]
    pub fn kind(&self) -> MultiplierKind {
        self.circuit.kind()
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.circuit.width()
    }

    /// Builds the per-gate delay assignment, optionally applying per-gate
    /// aging factors (from [`agemul_aging::aging_factors`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] if `factors` does not match the gate
    /// population.
    pub fn delay_assignment(&self, factors: Option<&[f64]>) -> Result<DelayAssignment, CoreError> {
        Ok(match factors {
            None => DelayAssignment::uniform(self.circuit.netlist(), &self.delay_model),
            Some(f) => DelayAssignment::with_factors(self.circuit.netlist(), &self.delay_model, f)?,
        })
    }

    /// The design's critical path delay — the static longest-path bound —
    /// optionally aged.
    ///
    /// This is the cycle period a fixed-latency deployment of this
    /// multiplier must clock at; no input pattern's sensitized delay can
    /// exceed it. For the worst *observed* dynamic delay, see
    /// [`measure_critical_delay`](crate::measure_critical_delay).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] on a malformed factor vector.
    pub fn critical_delay_ns(&self, factors: Option<&[f64]>) -> Result<f64, CoreError> {
        let delays = self.delay_assignment(factors)?;
        Ok(agemul_netlist::static_critical_path_ns(
            self.circuit.netlist(),
            &delays,
        )?)
    }

    /// Profiles a workload: one timed simulation recording each operation's
    /// sensitized delay and judged zero count, plus mean switching
    /// activity. A bit-parallel functional pass first checks every product
    /// against `a × b` (see [`verify_functional`](Self::verify_functional)).
    ///
    /// `factors` optionally ages every gate (see
    /// [`delay_assignment`](Self::delay_assignment)). The simulation starts
    /// from an all-zeros settle, then applies the pairs in order — each
    /// measurement is a genuine two-vector transition, as in the paper's
    /// 65 536-pattern experiments. The timing runs on the levelized
    /// [`LevelSim`] kernel; see [`profile_with_engine`]
    /// (Self::profile_with_engine) to force the event-driven reference.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width,
    /// [`CoreError::Netlist`] on a malformed factor vector, or
    /// [`CoreError::FunctionalMismatch`] if the circuit miscomputes a
    /// product (see [`verify_functional`](Self::verify_functional)).
    pub fn profile(
        &self,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
    ) -> Result<PatternProfile, CoreError> {
        self.profile_with_engine(pairs, factors, SimEngine::Level)
    }

    /// [`profile`](Self::profile) with an explicit timing kernel.
    ///
    /// Both engines produce bit-identical profiles; [`SimEngine::Event`]
    /// exists for benchmarking and cross-checking against the levelized
    /// default.
    ///
    /// # Errors
    ///
    /// Same contract as [`profile`](Self::profile).
    pub fn profile_with_engine(
        &self,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
        engine: SimEngine,
    ) -> Result<PatternProfile, CoreError> {
        self.profile_supervised(pairs, factors, engine, None)
    }

    /// [`profile_with_engine`](Self::profile_with_engine) under a
    /// supervisor: the optional [`CancelToken`] is installed in the timing
    /// kernel (polled inside each step) and additionally checked between
    /// patterns, so even workloads of tiny circuits abandon work promptly
    /// when a deadline expires.
    ///
    /// # Errors
    ///
    /// Same contract as [`profile`](Self::profile), plus
    /// [`CoreError::Netlist`] wrapping
    /// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)
    /// once the token fires.
    pub fn profile_supervised(
        &self,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<PatternProfile, CoreError> {
        // Chaos failpoint `core/profile` (ctx "{kind}x{width}"): the
        // profiling attempt fails with a typed error, modelling a transient
        // kernel fault. Callers (supervised retry, the serve cache) must
        // surface or retry it — never cache it.
        if agemul_chaos::armed() {
            let ctx = format!("{}x{}", self.kind().label(), self.width());
            if let Some(shot) = agemul_chaos::hit("core/profile", &ctx) {
                return Err(CoreError::InvalidConfig {
                    reason: format!("chaos: injected profiling fault ({:?})", shot.kind),
                });
            }
        }
        // Functional-correctness pass: one bit-parallel sweep per 64 pairs
        // guards the timing numbers below against a miscompiled circuit.
        self.verify_functional(pairs)?;
        let delays = self.delay_assignment(factors)?;
        self.profile_timed(pairs, delays, engine, cancel)
    }

    /// Profiles `pairs` under an explicit, already-built delay assignment —
    /// the entry point for delay-fault campaigns and other flows that
    /// perturb individual gate delays.
    ///
    /// Skips the functional-correctness pass: a delay-only perturbation
    /// cannot change any settled product, so the caller (who typically
    /// verified the unperturbed design already) would pay it once per
    /// fault for nothing. Combine with
    /// [`ProfileCache::get_or_insert_with`](crate::ProfileCache::get_or_insert_with)
    /// to memoize repeated assignments.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width.
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover this design's gates (the kernel
    /// constructor's contract).
    pub fn profile_with_delays(
        &self,
        pairs: &[(u64, u64)],
        delays: &DelayAssignment,
    ) -> Result<PatternProfile, CoreError> {
        self.profile_timed(pairs, delays.clone(), SimEngine::Level, None)
    }

    /// [`profile_with_delays`](Self::profile_with_delays) with an explicit
    /// timing kernel and an optional [`CancelToken`] — the supervised entry
    /// point for delay-fault campaigns.
    ///
    /// # Errors
    ///
    /// Same contract as [`profile_with_delays`](Self::profile_with_delays),
    /// plus [`CoreError::Netlist`] wrapping
    /// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)
    /// once the token fires.
    pub fn profile_with_delays_supervised(
        &self,
        pairs: &[(u64, u64)],
        delays: &DelayAssignment,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<PatternProfile, CoreError> {
        self.profile_timed(pairs, delays.clone(), engine, cancel)
    }

    /// The shared timed-profiling loop: settle all-zeros, step each pair,
    /// collect records and mean switching activity. One encode buffer is
    /// reused across the workload.
    fn profile_timed(
        &self,
        pairs: &[(u64, u64)],
        delays: DelayAssignment,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<PatternProfile, CoreError> {
        let mut sim = match engine {
            SimEngine::Event => TimingKernel::Event(Box::new(EventSim::new(
                self.circuit.netlist(),
                &self.topology,
                delays,
            ))),
            SimEngine::Level => TimingKernel::Level(Box::new(LevelSim::new(
                self.circuit.netlist(),
                &self.topology,
                delays,
            ))),
        };
        self.profile_on(&mut sim, pairs, cancel)
    }

    /// The workload half of [`profile_timed`](Self::profile_timed), over an
    /// already-constructed kernel: settle all-zeros, step each pair,
    /// collect records and mean switching activity. Shared verbatim by the
    /// from-scratch path and the retimed [`CornerProfiler`] path, so the
    /// two cannot drift apart.
    fn profile_on(
        &self,
        sim: &mut TimingKernel<'_>,
        pairs: &[(u64, u64)],
        cancel: Option<&CancelToken>,
    ) -> Result<PatternProfile, CoreError> {
        sim.set_cancel_token(cancel.cloned());
        let width = self.width();
        let mut encoded = Vec::with_capacity(2 * width);
        self.circuit.encode_inputs_into(0, 0, &mut encoded)?;
        sim.settle(&encoded)?;

        let judged = self.kind().judged_operand();
        let mut records = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            // Per-pattern poll: small circuits may never cross the kernels'
            // internal poll thresholds, so the workload loop is the
            // guaranteed cancellation point.
            if let Some(token) = cancel {
                token.check()?;
            }
            self.circuit.encode_inputs_into(a, b, &mut encoded)?;
            let timing = sim.step(&encoded)?;
            let judged_value = match judged {
                Operand::Multiplicand => a,
                Operand::Multiplicator => b,
            };
            records.push(PatternRecord {
                a,
                b,
                zeros: count_zeros(judged_value, width),
                delay_ns: timing.delay_ns,
            });
        }
        let toggles: u64 = sim.gate_toggle_counts().iter().sum();
        let avg_toggles = if pairs.is_empty() {
            0.0
        } else {
            toggles as f64 / pairs.len() as f64
        };
        Ok(PatternProfile::new(
            self.kind(),
            width,
            records,
            avg_toggles,
        ))
    }

    /// Builds a reusable [`CornerProfiler`] seeded with `delays` — the
    /// plan-reuse profiling path for corner-batched Monte Carlo campaigns.
    ///
    /// The profiler compiles the levelized kernel **once** (schedule, CSR
    /// fanout, truth-table LUTs, arenas); each subsequent corner swaps
    /// per-gate delays in place via [`LevelSim::retime`] instead of paying
    /// the construction cost again. Profiles are byte-identical to
    /// [`profile_with_delays`](Self::profile_with_delays) for the same
    /// assignment (the workload loop is literally shared, and the retime
    /// contract is property-pinned in `agemul-netlist`).
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover this design's gates, or if any
    /// delay rounds to zero femtoseconds (the levelized kernel's
    /// strict-positivity contract).
    pub fn corner_profiler(&self, delays: &DelayAssignment) -> CornerProfiler<'_> {
        CornerProfiler {
            design: self,
            sim: TimingKernel::Level(Box::new(LevelSim::new(
                self.circuit.netlist(),
                &self.topology,
                delays.clone(),
            ))),
        }
    }

    /// Checks that the gate-level circuit computes `a × b` for every pair,
    /// using one bit-parallel [`BlockSim`] sweep per 64 pairs (~64× cheaper
    /// than a scalar functional simulation of the same workload).
    ///
    /// With the `parallel` feature the pairs are additionally fanned out
    /// across threads in contiguous chunks; the first failing pair in
    /// workload order is still the one reported.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width, or
    /// [`CoreError::FunctionalMismatch`] naming the first offending pair.
    pub fn verify_functional(&self, pairs: &[(u64, u64)]) -> Result<(), CoreError> {
        self.verify_functional_wide(pairs, LaneWidth::default())
    }

    /// [`verify_functional`](Self::verify_functional) with an explicit
    /// batch width: 256/512 lanes carry 4×/8× more patterns per sweep
    /// pass with identical results (the wide kernels are per-chunk
    /// replicas of the 64-lane one).
    ///
    /// # Errors
    ///
    /// Same contract as [`verify_functional`](Self::verify_functional).
    pub fn verify_functional_wide(
        &self,
        pairs: &[(u64, u64)],
        width: LaneWidth,
    ) -> Result<(), CoreError> {
        match width {
            LaneWidth::W64 => self.verify_pairs_fanout::<1>(pairs),
            LaneWidth::W256 => self.verify_pairs_fanout::<4>(pairs),
            LaneWidth::W512 => self.verify_pairs_fanout::<8>(pairs),
        }
    }

    fn verify_pairs_fanout<const W: usize>(&self, pairs: &[(u64, u64)]) -> Result<(), CoreError> {
        #[cfg(feature = "parallel")]
        {
            let threads = agemul_par::thread_count(pairs.len().div_ceil(BlockSim::<W>::LANES));
            if threads > 1 {
                let per = pairs.len().div_ceil(threads);
                let chunks: Vec<&[(u64, u64)]> = pairs.chunks(per.max(1)).collect();
                return agemul_par::par_map(&chunks, |chunk| self.verify_pairs_serial::<W>(chunk))
                    .into_iter()
                    .collect();
            }
        }
        self.verify_pairs_serial::<W>(pairs)
    }

    fn verify_pairs_serial<const W: usize>(&self, pairs: &[(u64, u64)]) -> Result<(), CoreError> {
        let mut sim = BlockSim::<W>::new(self.circuit.netlist(), &self.topology);
        let product = self.circuit.product();
        // One lane-slot buffer set for the whole workload: each chunk
        // re-encodes into the same allocations.
        let lanes = BlockSim::<W>::LANES.min(pairs.len().max(1));
        let mut patterns: Vec<Vec<Logic>> = vec![Vec::with_capacity(2 * self.width()); lanes];
        for chunk in pairs.chunks(BlockSim::<W>::LANES) {
            for (slot, &(a, b)) in patterns.iter_mut().zip(chunk) {
                self.circuit.encode_inputs_into(a, b, slot)?;
            }
            sim.eval_batch(&patterns[..chunk.len()])?;
            for (lane, &(a, b)) in chunk.iter().enumerate() {
                let got = product.decode_with(|net| sim.value(net, lane));
                if got != Some(u128::from(a) * u128::from(b)) {
                    return Err(CoreError::FunctionalMismatch { a, b, got });
                }
            }
        }
        Ok(())
    }

    /// Collects workload statistics (signal probabilities for the aging
    /// model and switching activity for the power model) over `pairs`.
    ///
    /// Signal probabilities come from a bit-parallel functional sweep (64
    /// patterns per pass); toggle counts from a timed [`LevelSim`] run with
    /// nominal delays (toggle-identical to the event-driven reference).
    /// With the `parallel` feature the functional sweep is fanned out over
    /// pattern chunks and merged in workload order — the accumulated
    /// statistics are bit-identical to the serial path. The timed half
    /// stays a single sequential simulation by design: its tri-state hold
    /// semantics make every step depend on the previous pattern's settled
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width.
    pub fn workload_stats(&self, pairs: &[(u64, u64)]) -> Result<WorkloadStats, CoreError> {
        self.workload_stats_wide(pairs, LaneWidth::default())
    }

    /// [`workload_stats`](Self::workload_stats) with an explicit batch
    /// width for the bit-parallel probability sweep. All widths accumulate
    /// bit-identical statistics (the per-net weights are exact multiples
    /// of 0.5, so the wide and chunked sums agree exactly); the timed
    /// toggle pass is width-independent.
    ///
    /// # Errors
    ///
    /// Same contract as [`workload_stats`](Self::workload_stats).
    pub fn workload_stats_wide(
        &self,
        pairs: &[(u64, u64)],
        width: LaneWidth,
    ) -> Result<WorkloadStats, CoreError> {
        let mut stats = WorkloadStats::new(self.circuit.netlist());
        let encoded: Result<Vec<Vec<Logic>>, CoreError> = pairs
            .iter()
            .map(|&(a, b)| self.circuit.encode_inputs(a, b).map_err(CoreError::from))
            .collect();
        let encoded = encoded?;
        match width {
            LaneWidth::W64 => self.observe_probabilities::<1>(&mut stats, &encoded)?,
            LaneWidth::W256 => self.observe_probabilities::<4>(&mut stats, &encoded)?,
            LaneWidth::W512 => self.observe_probabilities::<8>(&mut stats, &encoded)?,
        }

        let delays = self.delay_assignment(None)?;
        let mut sim = LevelSim::new(self.circuit.netlist(), &self.topology, delays);
        let mut zeros = Vec::with_capacity(2 * self.width());
        self.circuit.encode_inputs_into(0, 0, &mut zeros)?;
        sim.settle(&zeros)?;
        // The probability pass already encoded every pattern; the timed
        // pass replays those buffers instead of re-encoding per pair.
        for pattern in &encoded {
            sim.step(pattern)?;
        }
        stats.record_toggles(sim.gate_toggle_counts(), pairs.len() as u64)?;
        Ok(stats)
    }

    /// Accumulates signal probabilities for `encoded` into `stats` —
    /// chunked across threads under the `parallel` feature, serial
    /// otherwise. Identical results either way: partial accumulators are
    /// merged in chunk order and the weights sum exactly (multiples of 0.5).
    fn observe_probabilities<const W: usize>(
        &self,
        stats: &mut WorkloadStats,
        encoded: &[Vec<Logic>],
    ) -> Result<(), CoreError> {
        #[cfg(feature = "parallel")]
        {
            let threads = agemul_par::thread_count(encoded.len() / 256);
            if threads > 1 {
                let per = encoded.len().div_ceil(threads);
                let chunks: Vec<&[Vec<Logic>]> = encoded.chunks(per.max(1)).collect();
                let parts = agemul_par::par_map(&chunks, |chunk| {
                    let mut part = WorkloadStats::new(self.circuit.netlist());
                    part.observe_patterns_wide::<W, _, _>(
                        self.circuit.netlist(),
                        &self.topology,
                        chunk.iter(),
                    )
                    .map(|()| part)
                });
                for part in parts {
                    stats.merge(&part?)?;
                }
                return Ok(());
            }
        }
        stats.observe_patterns_wide::<W, _, _>(
            self.circuit.netlist(),
            &self.topology,
            encoded.iter(),
        )?;
        Ok(())
    }
}

/// A levelized timing kernel compiled once and retimed per Monte Carlo
/// corner — the plan-reuse fast path behind
/// [`MultiplierDesign::corner_profiler`].
///
/// Construction pays the full `LevelSim` compile (levelized schedule, CSR
/// fanout, truth-table LUTs, event arenas, functional init sweep); each
/// [`retime`](Self::retime) afterwards is an in-place delay swap plus an
/// `O(nets)` state restore, which is what makes the per-corner marginal
/// cost an order of magnitude below a from-scratch build. [`profile`]
/// (Self::profile) runs the exact same workload loop as
/// [`MultiplierDesign::profile_with_delays`], so retimed and from-scratch
/// profiles are byte-identical (property-pinned in `agemul-netlist`).
///
/// Like `profile_with_delays`, this path skips functional verification: a
/// delay-only perturbation cannot change any settled product.
pub struct CornerProfiler<'a> {
    design: &'a MultiplierDesign,
    sim: TimingKernel<'a>,
}

impl CornerProfiler<'_> {
    /// Swaps in a new per-gate delay assignment without rebuilding the
    /// kernel. The next [`profile`](Self::profile) behaves exactly as if
    /// the kernel had been constructed fresh with `delays`.
    ///
    /// # Panics
    ///
    /// Panics if `delays` does not cover the design's gates, or if any
    /// delay rounds to zero femtoseconds.
    pub fn retime(&mut self, delays: &DelayAssignment) {
        match &mut self.sim {
            TimingKernel::Level(sim) => sim.retime(delays),
            // corner_profiler only ever builds the Level variant.
            TimingKernel::Event(_) => unreachable!("CornerProfiler is always levelized"),
        }
    }

    /// Profiles `pairs` under the current delay assignment — byte-identical
    /// to [`MultiplierDesign::profile_with_delays`] for the same delays.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width,
    /// or [`CoreError::Netlist`] wrapping
    /// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)
    /// once `cancel` fires.
    pub fn profile(
        &mut self,
        pairs: &[(u64, u64)],
        cancel: Option<&CancelToken>,
    ) -> Result<PatternProfile, CoreError> {
        // Tri-state holds make settled values history-dependent; restoring
        // the construction snapshot keeps back-to-back profiles (with or
        // without an intervening retime) byte-identical to a fresh kernel.
        if let TimingKernel::Level(sim) = &mut self.sim {
            sim.reset();
        }
        self.design.profile_on(&mut self.sim, pairs, cancel)
    }
}

#[cfg(test)]
mod tests {
    use crate::PatternSet;

    use super::*;

    #[test]
    fn profile_records_match_workload() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 50, 1);
        let p = d.profile(patterns.pairs(), None).unwrap();
        assert_eq!(p.len(), 50);
        for (r, &(a, b)) in p.records().iter().zip(patterns.pairs()) {
            assert_eq!((r.a, r.b), (a, b));
            assert_eq!(r.zeros, count_zeros(a, 8)); // judged = multiplicand
            assert!(r.delay_ns >= 0.0);
        }
        assert!(p.max_delay_ns() > 0.0);
        assert!(p.avg_gate_toggles() > 0.0);
    }

    #[test]
    fn row_bypass_judges_multiplicator() {
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let p = d.profile(&[(0xFF, 0x01), (0x01, 0xFF)], None).unwrap();
        assert_eq!(p.records()[0].zeros, 7); // zeros of b = 0x01
        assert_eq!(p.records()[1].zeros, 0); // zeros of b = 0xFF
    }

    #[test]
    fn aged_profile_is_slower() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 40, 2);
        let fresh = d.profile(patterns.pairs(), None).unwrap();
        let factors = vec![1.15; d.circuit().netlist().gate_count()];
        let aged = d.profile(patterns.pairs(), Some(&factors)).unwrap();
        assert!(aged.avg_delay_ns() > fresh.avg_delay_ns());
        assert!(aged.max_delay_ns() > fresh.max_delay_ns());
    }

    #[test]
    fn critical_delay_responds_to_aging() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 8).unwrap();
        let fresh = d.critical_delay_ns(None).unwrap();
        let factors = vec![1.13; d.circuit().netlist().gate_count()];
        let aged = d.critical_delay_ns(Some(&factors)).unwrap();
        assert!((aged / fresh - 1.13).abs() < 0.01, "{fresh} → {aged}");
    }

    #[test]
    fn verify_functional_accepts_all_kinds() {
        for kind in MultiplierKind::ALL {
            let d = MultiplierDesign::new(kind, 8).unwrap();
            let patterns = PatternSet::uniform(8, 200, 5);
            d.verify_functional(patterns.pairs()).unwrap();
            // Corner operands in one partial batch.
            d.verify_functional(&[(0, 0), (0xFF, 0xFF), (0xFF, 1), (1, 0xFF), (0, 0xFF)])
                .unwrap();
        }
    }

    #[test]
    fn verify_functional_rejects_overflowing_operands() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        assert!(matches!(
            d.verify_functional(&[(0x10, 1)]),
            Err(crate::CoreError::Circuit(_))
        ));
    }

    #[test]
    fn cancelled_profile_aborts_with_typed_error() {
        use agemul_netlist::NetlistError;
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 20, 7);
        let token = CancelToken::new();
        token.cancel();
        for engine in [SimEngine::Event, SimEngine::Level] {
            let err = d
                .profile_supervised(patterns.pairs(), None, engine, Some(&token))
                .unwrap_err();
            assert!(
                matches!(err, CoreError::Netlist(NetlistError::Cancelled)),
                "{engine:?}: {err:?}"
            );
        }
        // Without the token the same call succeeds.
        let p = d
            .profile_supervised(patterns.pairs(), None, SimEngine::Level, None)
            .unwrap();
        assert_eq!(p.len(), 20);
    }

    #[test]
    fn stats_cover_probabilities_and_toggles() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let patterns = PatternSet::uniform(4, 64, 3);
        let stats = d.workload_stats(patterns.pairs()).unwrap();
        assert_eq!(stats.pattern_count(), 64);
        assert!(stats.total_toggles() > 0);
    }
}
