//! The variable-latency execution engine (paper Fig. 8's overall flow).

use crate::{
    Ahl, AhlConfig, CycleDecision, DetectOutcome, PatternProfile, RazorBank, RazorConfig,
    RunMetrics,
};

/// Configuration of one engine run.
///
/// Constructors cover the paper's two hold-logic flavours; the remaining
/// fields parameterize the ablation studies.
///
/// # Example
///
/// ```
/// use agemul::EngineConfig;
///
/// let proposed = EngineConfig::adaptive(0.9, 7);
/// let baseline = EngineConfig::traditional(0.9, 7);
/// assert!(proposed.adaptive && !baseline.adaptive);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Clock period, nanoseconds.
    pub cycle_ns: f64,
    /// Base skip threshold (Skip-n).
    pub skip: u32,
    /// Adaptive (proposed, two judging blocks) vs traditional (single
    /// block) hold logic.
    pub adaptive: bool,
    /// Extra cycles charged when the Razor bank flags a one-cycle
    /// operation: one detection cycle plus the two-cycle re-execution
    /// (paper: 3).
    pub error_penalty_cycles: u32,
    /// Aging-indicator parameters.
    pub ahl: AhlConfig,
    /// Razor shadow-window parameters.
    pub razor: RazorConfig,
    /// When `true`, two-cycle operations are *also* checked against
    /// `2 × cycle_ns` (the paper assumes they always fit; this switch
    /// tests that assumption under extreme aging).
    pub strict_two_cycle: bool,
}

impl EngineConfig {
    /// The proposed adaptive architecture (A-VLCB / A-VLRB).
    pub fn adaptive(cycle_ns: f64, skip: u32) -> Self {
        EngineConfig {
            cycle_ns,
            skip,
            adaptive: true,
            error_penalty_cycles: 3,
            ahl: AhlConfig::paper(),
            razor: RazorConfig::paper(),
            strict_two_cycle: false,
        }
    }

    /// The traditional single-judging-block baseline (T-VLCB / T-VLRB).
    pub fn traditional(cycle_ns: f64, skip: u32) -> Self {
        EngineConfig {
            adaptive: false,
            ..Self::adaptive(cycle_ns, skip)
        }
    }
}

/// Replays a profiled workload through the architecture: AHL prediction,
/// clock gating, Razor detection, re-execution — and returns the aggregate
/// metrics.
///
/// Cycle accounting (matching §III of the paper):
///
/// * predicted one-cycle, on time → **1 cycle**;
/// * predicted one-cycle, Razor error → **1 + penalty** cycles (the paper's
///   "three extra cycles: one for the Razor flip-flops and two for
///   re-execution");
/// * predicted two-cycle → **2 cycles** (the clock of the input flip-flops
///   is gated for one cycle; re-applied inputs produce no new transitions,
///   so the settled result is correct by construction).
///
/// # Panics
///
/// Panics if `config.cycle_ns` is not finite and positive.
///
/// # Example
///
/// See the crate-level docs.
pub fn run_engine(profile: &PatternProfile, config: &EngineConfig) -> RunMetrics {
    run_engine_traced(profile, config).0
}

/// Adaptation observability collected alongside [`RunMetrics`] by
/// [`run_engine_traced`] — what the fault campaigns measure about *how* the
/// AHL reacted, not just the aggregate cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTrace {
    /// 1-based operation index at which the aging indicator first engaged
    /// the stricter judging block, or `None` if it never did. The distance
    /// from the first error to this op is the adaptation latency.
    pub aged_at_op: Option<u64>,
    /// Total aged-mode transitions over the run (see
    /// [`Ahl::mode_transitions`]); > 1 only with a non-sticky indicator.
    pub mode_transitions: u64,
}

/// [`run_engine`] with an [`EngineTrace`] alongside the metrics.
///
/// Identical replay semantics — `run_engine` is this function with the
/// trace discarded — so metrics from the two entry points are always
/// bit-identical.
///
/// # Panics
///
/// Panics if `config.cycle_ns` is not finite and positive.
pub fn run_engine_traced(
    profile: &PatternProfile,
    config: &EngineConfig,
) -> (RunMetrics, EngineTrace) {
    assert!(
        config.cycle_ns.is_finite() && config.cycle_ns > 0.0,
        "cycle period must be finite and positive, got {}",
        config.cycle_ns
    );
    let mut ahl = if config.adaptive {
        Ahl::adaptive(config.skip, config.ahl)
    } else {
        Ahl::traditional(config.skip)
    };
    let razor = RazorBank::new(2 * profile.width().max(1), config.razor);

    let mut metrics = RunMetrics {
        operations: 0,
        cycles: 0,
        errors: 0,
        one_cycle_ops: 0,
        two_cycle_ops: 0,
        undetected: 0,
        cycle_ns: config.cycle_ns,
        aged_mode_entered: false,
    };
    let mut trace = EngineTrace::default();

    for record in profile.records() {
        metrics.operations += 1;
        match ahl.decide(record.zeros) {
            CycleDecision::OneCycle => {
                metrics.one_cycle_ops += 1;
                match razor.check(record.delay_ns, config.cycle_ns) {
                    DetectOutcome::Ok => {
                        metrics.cycles += 1;
                        ahl.record(false);
                    }
                    DetectOutcome::Error => {
                        metrics.errors += 1;
                        metrics.cycles += 1 + u64::from(config.error_penalty_cycles);
                        ahl.record(true);
                    }
                    DetectOutcome::Undetected => {
                        // Silent corruption: the operation "completes" in
                        // one cycle with a wrong result. Counted, never
                        // penalized — that is precisely the hazard.
                        metrics.undetected += 1;
                        metrics.cycles += 1;
                        ahl.record(false);
                    }
                }
            }
            CycleDecision::TwoCycles => {
                metrics.two_cycle_ops += 1;
                metrics.cycles += 2;
                if config.strict_two_cycle && record.delay_ns > 2.0 * config.cycle_ns {
                    metrics.errors += 1;
                    metrics.cycles += u64::from(config.error_penalty_cycles);
                    ahl.record(true);
                } else {
                    ahl.record(false);
                }
            }
        }
        metrics.aged_mode_entered |= ahl.is_aged_mode();
        if trace.aged_at_op.is_none() && ahl.is_aged_mode() {
            trace.aged_at_op = Some(metrics.operations);
        }
    }
    trace.mode_transitions = ahl.mode_transitions();
    (metrics, trace)
}

/// Metrics of a fixed-latency deployment: every operation takes one cycle
/// at the (possibly aged) critical-path period. This covers the paper's
/// AM, FLCB, and FLRB baselines.
///
/// # Panics
///
/// Panics if `critical_ns` is not finite and positive.
pub fn run_fixed_latency(operations: u64, critical_ns: f64) -> RunMetrics {
    assert!(
        critical_ns.is_finite() && critical_ns > 0.0,
        "critical path must be finite and positive, got {critical_ns}"
    );
    RunMetrics {
        operations,
        cycles: operations,
        errors: 0,
        one_cycle_ops: operations,
        two_cycle_ops: 0,
        undetected: 0,
        cycle_ns: critical_ns,
        aged_mode_entered: false,
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use crate::PatternRecord;

    use super::*;

    fn profile(records: Vec<PatternRecord>) -> PatternProfile {
        PatternProfile::new(MultiplierKind::ColumnBypass, 16, records, 0.0)
    }

    fn rec(zeros: u32, delay_ns: f64) -> PatternRecord {
        PatternRecord {
            a: 0,
            b: 0,
            zeros,
            delay_ns,
        }
    }

    #[test]
    fn one_cycle_fast_pattern_costs_one() {
        let p = profile(vec![rec(10, 0.5)]);
        let m = run_engine(&p, &EngineConfig::adaptive(0.9, 7));
        assert_eq!(m.cycles, 1);
        assert_eq!(m.errors, 0);
        assert_eq!(m.one_cycle_ops, 1);
    }

    #[test]
    fn slow_one_cycle_pattern_pays_razor_penalty() {
        let p = profile(vec![rec(10, 1.2)]);
        let m = run_engine(&p, &EngineConfig::adaptive(0.9, 7));
        assert_eq!(m.errors, 1);
        assert_eq!(m.cycles, 4); // 1 + 3 penalty
    }

    #[test]
    fn two_cycle_pattern_costs_two() {
        let p = profile(vec![rec(3, 1.5)]);
        let m = run_engine(&p, &EngineConfig::adaptive(0.9, 7));
        assert_eq!(m.two_cycle_ops, 1);
        assert_eq!(m.cycles, 2);
        assert_eq!(m.errors, 0);
    }

    #[test]
    fn adaptive_engine_switches_block_under_error_pressure() {
        // 200 borderline patterns: 8 zeros, delay just above the period.
        // Skip-7 classifies them one-cycle → errors; after one window the
        // indicator trips, Skip-8 still lets 8-zero patterns through…
        // so use 7-zero patterns, which the second block demotes.
        let records: Vec<PatternRecord> = (0..300).map(|_| rec(7, 1.1)).collect();
        let p = profile(records);

        let adaptive = run_engine(&p, &EngineConfig::adaptive(0.9, 7));
        let traditional = run_engine(&p, &EngineConfig::traditional(0.9, 7));

        assert!(adaptive.aged_mode_entered);
        assert!(!traditional.aged_mode_entered);
        // Traditional keeps erroring on every pattern; adaptive stops after
        // the first window.
        assert!(adaptive.errors < traditional.errors);
        assert!(adaptive.avg_latency_ns() < traditional.avg_latency_ns());
    }

    #[test]
    fn cycle_accounting_matches_paper_example() {
        // Fig. 4 flavour: 75 % one-cycle at period 5, 25 % two-cycle →
        // avg latency 0.75·5 + 0.25·10 = 6.25.
        let mut records = Vec::new();
        for i in 0..100 {
            if i % 4 == 0 {
                records.push(rec(0, 8.0)); // two-cycle
            } else {
                records.push(rec(16, 3.0)); // one-cycle, fits in 5
            }
        }
        let m = run_engine(&profile(records), &EngineConfig::adaptive(5.0, 7));
        assert!((m.avg_latency_ns() - 6.25).abs() < 1e-9);
    }

    #[test]
    fn strict_mode_flags_overlong_two_cycle_ops() {
        let p = profile(vec![rec(0, 2.5)]);
        let mut cfg = EngineConfig::adaptive(1.0, 7);
        let relaxed = run_engine(&p, &cfg);
        assert_eq!(relaxed.errors, 0);
        cfg.strict_two_cycle = true;
        let strict = run_engine(&p, &cfg);
        assert_eq!(strict.errors, 1);
        assert_eq!(strict.cycles, 5); // 2 + 3 penalty
    }

    #[test]
    fn undetected_violations_counted_with_shrunk_window() {
        let p = profile(vec![rec(16, 5.0)]);
        let mut cfg = EngineConfig::adaptive(1.0, 7);
        cfg.razor = RazorConfig { window_factor: 0.5 };
        let m = run_engine(&p, &cfg);
        assert_eq!(m.undetected, 1);
        assert_eq!(m.errors, 0);
        assert_eq!(m.cycles, 1);
    }

    /// `run_engine_traced` pins down the adaptation latency: with constant
    /// error pressure from op 1, aged mode engages exactly at the first
    /// window boundary, and the plain entry point returns bit-identical
    /// metrics.
    #[test]
    fn traced_run_reports_adaptation_op_and_matches_plain_run() {
        let records: Vec<PatternRecord> = (0..250).map(|_| rec(7, 1.1)).collect();
        let p = profile(records);
        let cfg = EngineConfig::adaptive(0.9, 7);

        let (metrics, trace) = run_engine_traced(&p, &cfg);
        assert_eq!(trace.aged_at_op, Some(u64::from(cfg.ahl.window_ops)));
        assert_eq!(trace.mode_transitions, 1);
        assert_eq!(metrics, run_engine(&p, &cfg));

        // A clean workload never adapts.
        let calm = profile((0..250).map(|_| rec(10, 0.5)).collect());
        let (calm_metrics, calm_trace) = run_engine_traced(&calm, &cfg);
        assert_eq!(calm_trace.aged_at_op, None);
        assert_eq!(calm_trace.mode_transitions, 0);
        assert!(!calm_metrics.aged_mode_entered);
    }

    #[test]
    fn fixed_latency_baseline() {
        let m = run_fixed_latency(1000, 1.88);
        assert_eq!(m.cycles, 1000);
        assert!((m.avg_latency_ns() - 1.88).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cycle period")]
    fn engine_rejects_bad_period() {
        let p = profile(vec![rec(0, 1.0)]);
        let _ = run_engine(&p, &EngineConfig::adaptive(0.0, 7));
    }
}
