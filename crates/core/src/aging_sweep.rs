//! Incremental year-over-year aging re-profiling.
//!
//! A multi-year aging study profiles the *same* workload under a slowly
//! drifting delay assignment: each year's BTI ΔVth step inflates a subset
//! of the per-gate aging factors by a fraction of a percent. Re-simulating
//! every pattern from scratch at every year repeats almost all of the
//! work — the sensitized cone of a typical pattern misses most of the
//! gates whose delay moved, and most delays barely move at all.
//!
//! [`AgingSweep`] exploits both facts:
//!
//! 1. **Factor quantization** — aging factors are snapped onto the shared
//!    [`AGING_FACTOR_GRID`](crate::AGING_FACTOR_GRID) before a delay
//!    assignment is built, so a ΔVth step too small to cross a grid line
//!    yields an *identical* assignment and the whole year is answered from
//!    the previous year's profile (the same rule makes it a
//!    [`ProfileCache`](crate::ProfileCache) hit).
//! 2. **Dirty-cone pattern skipping** — for a year that does change some
//!    gates, the sweep replays only the patterns whose recorded *touched
//!    set* (the gates the levelized kernel actually visited for that
//!    pattern) intersects the set of changed-delay gates. Every other
//!    pattern's record is reused verbatim.
//!
//! # Why skipping is exact
//!
//! Let pattern `i` start from settled state `S` and let `T` be the set of
//! gates [`LevelSim`] visited while simulating it (a gate is visited iff
//! one of its input nets carried an event). The input events at `t = 0`
//! depend only on `S` and the applied vector, not on any delay. By
//! induction over topological levels, every visited gate sees identical
//! input waveforms and — if its own delay is unchanged — produces an
//! identical output waveform; every unvisited gate produces none either
//! way. So if no gate in `T` changed delay and the pre-state `S` matches
//! the recorded one, the pattern's timing, toggle count, and settled
//! post-state are all bit-identical to the recorded year — including
//! glitches and inertial filtering, which is why the rule keys on the
//! *visited* set rather than any static cone approximation.
//!
//! The pre-state condition is tracked dynamically: the sweep stores each
//! pattern's packed settled state (2 bits/net via
//! [`LevelSim::snapshot_values`]) and, after every replayed pattern,
//! compares the new post-state against the recorded one. On a mismatch it
//! enters *cascade* mode — subsequent patterns are replayed regardless of
//! their touched sets (their recorded pre-state is stale) — and leaves it
//! as soon as a replayed pattern's post-state reconverges. Skipped
//! patterns keep their recorded state; before the next replay the kernel
//! is rewound with [`LevelSim::restore_values`].
//!
//! The result is byte-identical to a from-scratch
//! [`MultiplierDesign::profile`] of the same (quantized) factors — the
//! property `just incremental-equiv` locks in — at a fraction of the
//! simulated work, which [`SweepCounters`] quantifies.

use std::sync::Arc;

use agemul_logic::Logic;
use agemul_netlist::LevelSim;

use crate::{
    count_zeros, quantize_factors, CoreError, MultiplierDesign, PatternProfile, PatternRecord,
};

/// Work accounting for an [`AgingSweep`]: how much simulation the
/// incremental path actually performed versus reused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepCounters {
    /// Years profiled (one per [`AgingSweep::profile_year`] call).
    pub years: u64,
    /// Years answered by a full from-scratch profile (the first year, or
    /// any call before state exists).
    pub full_profiles: u64,
    /// Years answered entirely from the previous year's profile because
    /// the quantized factor vectors were identical.
    pub identical_years: u64,
    /// Patterns replayed because their touched set intersected a
    /// changed-delay cone.
    pub cone_resims: u64,
    /// Patterns replayed because a preceding replay diverged the settled
    /// trajectory (cascade mode).
    pub cascade_resims: u64,
    /// Pattern records reused verbatim from the previous year.
    pub patterns_reused: u64,
}

impl SweepCounters {
    /// Total patterns replayed through the timing kernel across all
    /// incremental years (cone + cascade).
    pub fn patterns_resimulated(&self) -> u64 {
        self.cone_resims + self.cascade_resims
    }
}

/// Per-year state carried between [`AgingSweep::profile_year`] calls.
struct SweepState {
    /// Quantized factor vector of the profiled year (`None` = fresh).
    quantized: Option<Vec<f64>>,
    profile: Arc<PatternProfile>,
    /// `snapshots[0]` is the post-settle state; `snapshots[i + 1]` the
    /// settled state after pattern `i`. Packed 2 bits/net.
    snapshots: Vec<Vec<u64>>,
    /// `touched[0]` is the settle's visited-gate set; `touched[i + 1]`
    /// pattern `i`'s. Ascending gate indices.
    touched: Vec<Vec<u32>>,
    /// Per-pattern gate-output toggles, so the workload mean reconstructs
    /// from the exact integer sum regardless of which patterns replayed.
    toggles: Vec<u64>,
}

/// Incremental multi-year profiling driver over one design + workload.
///
/// # Example
///
/// ```no_run
/// use agemul::{AgingSweep, MultiplierDesign, PatternSet};
/// use agemul_circuits::MultiplierKind;
///
/// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 1_500, 7);
/// let mut sweep = AgingSweep::new(&design, patterns.pairs())?;
/// for year in 0..=7 {
///     let factors: Vec<f64> = /* agemul_aging::aging_factors(...) */
///     # vec![1.0 + 0.01 * year as f64; design.circuit().netlist().gate_count()];
///     let profile = sweep.profile_year(Some(&factors))?;
///     println!("year {year}: avg {:.3} ns", profile.avg_delay_ns());
/// }
/// println!("replayed {} patterns", sweep.counters().patterns_resimulated());
/// # Ok::<(), agemul::CoreError>(())
/// ```
pub struct AgingSweep<'a> {
    design: &'a MultiplierDesign,
    pairs: Vec<(u64, u64)>,
    /// Pre-encoded input vectors, one per pair (encoding is
    /// delay-independent, so it is paid once for the whole sweep).
    encoded: Vec<Vec<Logic>>,
    /// The all-zeros settle vector.
    zeros: Vec<Logic>,
    state: Option<SweepState>,
    counters: SweepCounters,
}

impl<'a> AgingSweep<'a> {
    /// Prepares a sweep over `pairs`: verifies the circuit functionally
    /// (once — products are delay-independent) and pre-encodes every
    /// input vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width,
    /// or [`CoreError::FunctionalMismatch`] if the circuit miscomputes a
    /// product.
    pub fn new(design: &'a MultiplierDesign, pairs: &[(u64, u64)]) -> Result<Self, CoreError> {
        Self::with_lanes(design, pairs, crate::LaneWidth::default())
    }

    /// [`new`](Self::new) with an explicit batch width for the one-time
    /// functional verification sweep.
    ///
    /// # Errors
    ///
    /// Same contract as [`new`](Self::new).
    pub fn with_lanes(
        design: &'a MultiplierDesign,
        pairs: &[(u64, u64)],
        lanes: crate::LaneWidth,
    ) -> Result<Self, CoreError> {
        design.verify_functional_wide(pairs, lanes)?;
        let encoded: Result<Vec<Vec<Logic>>, CoreError> = pairs
            .iter()
            .map(|&(a, b)| {
                design
                    .circuit()
                    .encode_inputs(a, b)
                    .map_err(CoreError::from)
            })
            .collect();
        let mut zeros = Vec::with_capacity(2 * design.width());
        design.circuit().encode_inputs_into(0, 0, &mut zeros)?;
        Ok(AgingSweep {
            design,
            pairs: pairs.to_vec(),
            encoded: encoded?,
            zeros,
            state: None,
            counters: SweepCounters::default(),
        })
    }

    /// The accumulated work counters.
    #[inline]
    pub fn counters(&self) -> SweepCounters {
        self.counters
    }

    /// Profiles the workload under `factors` (quantized onto the shared
    /// grid; `None` = fresh delays), reusing every pattern whose sensitized
    /// cone provably avoided the gates that changed since the previous
    /// call. The returned profile is byte-identical to
    /// [`MultiplierDesign::profile`] of the same quantized factors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] on a malformed factor vector.
    pub fn profile_year(
        &mut self,
        factors: Option<&[f64]>,
    ) -> Result<Arc<PatternProfile>, CoreError> {
        let quantized = factors.map(quantize_factors);
        self.counters.years += 1;

        if let Some(prev) = &self.state {
            if prev.quantized == quantized {
                self.counters.identical_years += 1;
                self.counters.patterns_reused += self.pairs.len() as u64;
                return Ok(prev.profile.clone());
            }
        }

        let delays = self.design.delay_assignment(quantized.as_deref())?;
        let gate_count = self.design.circuit().netlist().gate_count();
        match self.state.take() {
            None => {
                self.counters.full_profiles += 1;
                self.run_full(quantized, delays)
            }
            Some(prev) => {
                // Per-gate diff of the quantized factor vectors; a `None`
                // side reads as the uniform factor 1.0.
                let at = |q: &Option<Vec<f64>>, g: usize| q.as_ref().map_or(1.0, |v| v[g]);
                let changed: Vec<bool> = (0..gate_count)
                    .map(|g| at(&prev.quantized, g) != at(&quantized, g))
                    .collect();
                self.run_incremental(prev, quantized, delays, &changed)
            }
        }
    }

    /// From-scratch year: simulate every pattern, recording the per-pattern
    /// state the incremental path needs (touched sets, packed snapshots,
    /// toggle counts).
    fn run_full(
        &mut self,
        quantized: Option<Vec<f64>>,
        delays: agemul_netlist::DelayAssignment,
    ) -> Result<Arc<PatternProfile>, CoreError> {
        let n = self.pairs.len();
        let mut sim = LevelSim::new(
            self.design.circuit().netlist(),
            self.design.topology(),
            delays,
        );
        let mut snapshots = Vec::with_capacity(n + 1);
        let mut touched = Vec::with_capacity(n + 1);
        let mut toggles = Vec::with_capacity(n);
        let mut records = Vec::with_capacity(n);

        sim.settle(&self.zeros)?;
        touched.push(collect_touched(&sim));
        snapshots.push(sim.snapshot_values());

        for (i, &(a, b)) in self.pairs.iter().enumerate() {
            let timing = sim.step(&self.encoded[i])?;
            touched.push(collect_touched(&sim));
            snapshots.push(sim.snapshot_values());
            toggles.push(timing.gate_toggles);
            records.push(self.record(a, b, timing.delay_ns));
        }

        Ok(self.commit(quantized, records, snapshots, touched, toggles))
    }

    /// Incremental year: replay only dirty-cone (and cascaded) patterns,
    /// splicing everything else from the recorded state.
    fn run_incremental(
        &mut self,
        prev: SweepState,
        quantized: Option<Vec<f64>>,
        delays: agemul_netlist::DelayAssignment,
        changed: &[bool],
    ) -> Result<Arc<PatternProfile>, CoreError> {
        let n = self.pairs.len();
        let mut sim = LevelSim::new(
            self.design.circuit().netlist(),
            self.design.topology(),
            delays,
        );
        let SweepState {
            mut snapshots,
            mut touched,
            mut toggles,
            profile: prev_profile,
            ..
        } = prev;
        let prev_records = prev_profile.records();
        let mut records = Vec::with_capacity(n);

        let hits = |set: &[u32]| set.iter().any(|&g| changed[g as usize]);

        // Whether the settled trajectory under the new delays still matches
        // the recorded one (reuse is only sound while it does).
        let mut in_sync;
        // Snapshot index whose state the kernel currently holds: `Some(i)`
        // = the post-state of snapshot `i`; `None` = the freshly
        // initialized pre-settle state.
        let mut sim_at: Option<usize> = None;

        // The initial settle is "pattern −1": its pre-state (functional
        // re-initialization) is delay-independent, so only its own touched
        // set gates whether it must be replayed.
        if hits(&touched[0]) {
            sim.settle(&self.zeros)?;
            let snap = sim.snapshot_values();
            in_sync = snap == snapshots[0];
            touched[0] = collect_touched(&sim);
            snapshots[0] = snap;
            sim_at = Some(0);
        } else {
            in_sync = true;
        }

        for (i, &(a, b)) in self.pairs.iter().enumerate() {
            if in_sync && !hits(&touched[i + 1]) {
                self.counters.patterns_reused += 1;
                records.push(prev_records[i]);
                continue;
            }
            if in_sync {
                self.counters.cone_resims += 1;
            } else {
                self.counters.cascade_resims += 1;
            }
            if sim_at != Some(i) {
                sim.restore_values(&snapshots[i]);
            }
            let timing = sim.step(&self.encoded[i])?;
            let snap = sim.snapshot_values();
            in_sync = snap == snapshots[i + 1];
            touched[i + 1] = collect_touched(&sim);
            snapshots[i + 1] = snap;
            toggles[i] = timing.gate_toggles;
            records.push(self.record(a, b, timing.delay_ns));
            sim_at = Some(i + 1);
        }

        Ok(self.commit(quantized, records, snapshots, touched, toggles))
    }

    fn record(&self, a: u64, b: u64, delay_ns: f64) -> PatternRecord {
        let judged = match self.design.kind().judged_operand() {
            agemul_circuits::Operand::Multiplicand => a,
            agemul_circuits::Operand::Multiplicator => b,
        };
        PatternRecord {
            a,
            b,
            zeros: count_zeros(judged, self.design.width()),
            delay_ns,
        }
    }

    /// Folds the year's results into a [`PatternProfile`] (the toggle mean
    /// is computed from the exact integer sum, so replayed and reused
    /// patterns combine byte-identically to a from-scratch run) and stores
    /// the state for the next year.
    fn commit(
        &mut self,
        quantized: Option<Vec<f64>>,
        records: Vec<PatternRecord>,
        snapshots: Vec<Vec<u64>>,
        touched: Vec<Vec<u32>>,
        toggles: Vec<u64>,
    ) -> Arc<PatternProfile> {
        let avg_toggles = if records.is_empty() {
            0.0
        } else {
            toggles.iter().sum::<u64>() as f64 / records.len() as f64
        };
        let profile = Arc::new(PatternProfile::new(
            self.design.kind(),
            self.design.width(),
            records,
            avg_toggles,
        ));
        self.state = Some(SweepState {
            quantized,
            profile: profile.clone(),
            snapshots,
            touched,
            toggles,
        });
        profile
    }
}

/// The gates the kernel visited in its most recent step, ascending.
fn collect_touched(sim: &LevelSim<'_>) -> Vec<u32> {
    let mut v = Vec::new();
    sim.for_each_touched_gate(|g| v.push(g as u32));
    v
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use super::*;
    use crate::PatternSet;

    /// Drifting years on a small design: every year's profile must be
    /// byte-identical to a from-scratch profile of the same quantized
    /// factors. The workload repeats each pair twice back to back, so the
    /// second application is a no-transition pattern with an *empty*
    /// touched set — reusable even when every gate in the design ages.
    #[test]
    fn incremental_years_match_from_scratch() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let gates = d.circuit().netlist().gate_count();
        let base = PatternSet::uniform(8, 30, 9);
        let pairs: Vec<(u64, u64)> = base.pairs().iter().flat_map(|&p| [p, p]).collect();
        let mut sweep = AgingSweep::new(&d, &pairs).unwrap();

        for year in 0..=4u32 {
            // Dense drift: every third gate ages fast, the rest slowly —
            // the hostile case where most sensitized cones go dirty.
            let factors: Vec<f64> = (0..gates)
                .map(|g| 1.0 + (0.012 + 0.004 * ((g % 3) as f64)) * f64::from(year))
                .collect();
            let inc = sweep.profile_year(Some(&factors)).unwrap();
            let scratch = d
                .profile(&pairs, Some(&quantize_factors(&factors)))
                .unwrap();
            assert_eq!(inc.records(), scratch.records(), "year {year}");
            assert_eq!(
                inc.avg_gate_toggles().to_bits(),
                scratch.avg_gate_toggles().to_bits(),
                "year {year}"
            );
        }
        let c = sweep.counters();
        assert_eq!(c.full_profiles, 1);
        // The 4 incremental years each reuse at least the 30 repeated
        // (no-transition) patterns.
        assert!(c.patterns_reused >= 4 * 30, "{c:?}");
        assert!(c.cone_resims > 0, "{c:?}");
    }

    /// A sub-grid ΔVth step reuses the entire previous year.
    #[test]
    fn sub_threshold_year_is_fully_reused() {
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let gates = d.circuit().netlist().gate_count();
        let patterns = PatternSet::uniform(8, 25, 3);
        let mut sweep = AgingSweep::new(&d, patterns.pairs()).unwrap();

        let base = vec![1.05; gates];
        let nudged: Vec<f64> = base
            .iter()
            .map(|f| f + 0.1 / crate::AGING_FACTOR_GRID)
            .collect();
        let y0 = sweep.profile_year(Some(&base)).unwrap();
        let y1 = sweep.profile_year(Some(&nudged)).unwrap();
        assert!(Arc::ptr_eq(&y0, &y1));
        let c = sweep.counters();
        assert_eq!(c.identical_years, 1);
        assert_eq!(c.patterns_resimulated(), 0);
    }

    /// `None` factors and explicit uniform-1.0 factors describe the same
    /// delays; stepping between them replays nothing.
    #[test]
    fn none_and_unit_factors_are_one_year() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let gates = d.circuit().netlist().gate_count();
        let patterns = PatternSet::uniform(4, 20, 1);
        let mut sweep = AgingSweep::new(&d, patterns.pairs()).unwrap();
        sweep.profile_year(None).unwrap();
        sweep.profile_year(Some(&vec![1.0; gates])).unwrap();
        assert_eq!(sweep.counters().patterns_resimulated(), 0);
    }
}
